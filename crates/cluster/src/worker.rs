//! Per-shard worker pools with a batched mailbox.
//!
//! Clients submit work to a shard asynchronously: a job lands in the
//! shard's mailbox, one of the shard's worker threads drains a batch and
//! executes the jobs against the shard [`Database`], and the result comes
//! back through a [`Ticket`]. The 2PC coordinator submits its `Prepare`
//! phase through the same mailbox (prepares of one global transaction run
//! on their shards in parallel); decisions apply inline on the
//! coordinator's thread so they never queue behind blocking prepares.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tebaldi_cc::{CcError, CcResult};
use tebaldi_core::{Database, ParticipantVote, PreparedTxn, ProcedureCall, Txn};
use tebaldi_storage::Value;

/// The body of a shard-local transaction (or transaction part). `FnMut`
/// so the worker can retry aborted attempts of plain executions; prepare
/// parts run exactly once per vote.
pub type ShardOp = Box<dyn FnMut(&mut Txn<'_>) -> CcResult<Value> + Send>;

/// A participant's phase-one vote class, as reported back to the
/// coordinator alongside the part's result value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// The part wrote nothing: it committed and released at phase one and
    /// must be excluded from the decision.
    ReadOnly,
    /// The part is parked in the shard's in-doubt table holding its locks
    /// until the decision arrives.
    ReadWrite,
}

/// One-shot result channel for an asynchronously submitted job.
pub struct Ticket<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> Ticket<T> {
    /// Blocks until the shard worker delivers the result.
    pub fn wait(self) -> CcResult<T> {
        self.rx
            .recv()
            .map_err(|_| CcError::Internal("shard worker dropped the reply channel".to_string()))
    }

    /// Blocks until the shard worker delivers the result or the timeout
    /// elapses. A timeout means the shard is wedged (or hopelessly
    /// backlogged); the coordinator treats it as a "no" vote so one stuck
    /// shard cannot hang a multi-shard transaction forever.
    pub fn wait_timeout(self, timeout: Duration) -> CcResult<T> {
        self.rx.recv_timeout(timeout).map_err(|err| match err {
            mpsc::RecvTimeoutError::Timeout => {
                CcError::Internal("shard did not answer within the prepare timeout".to_string())
            }
            mpsc::RecvTimeoutError::Disconnected => {
                CcError::Internal("shard worker dropped the reply channel".to_string())
            }
        })
    }
}

pub(crate) enum Job {
    /// Closed-loop execution with engine-side retry.
    Execute {
        call: ProcedureCall,
        op: ShardOp,
        max_attempts: usize,
        reply: mpsc::Sender<CcResult<Value>>,
    },
    /// 2PC phase one: run the shard part up to the prepared state and park
    /// it in the in-doubt table keyed by the cluster-global id (read-write
    /// votes) or commit it outright (read-only votes).
    Prepare {
        global: u64,
        call: ProcedureCall,
        op: ShardOp,
        reply: mpsc::Sender<CcResult<(Value, Vote)>>,
    },
    Shutdown,
}

/// How long an orphaned abort decision (the coordinator gave up on a
/// prepare that had not answered yet) is remembered so the late prepare
/// can be aborted when it finally lands. Generous: timeouts are rare and
/// the entries are tiny.
const ORPHAN_DECISION_TTL: Duration = Duration::from_secs(30);

/// How many jobs a worker drains from the mailbox per wakeup. Batching
/// amortizes the channel synchronization under load without adding latency
/// when the mailbox is shallow.
const DRAIN_BATCH: usize = 16;

/// The worker pool of one shard.
pub struct ShardWorkers {
    db: Arc<Database>,
    tx: mpsc::Sender<Job>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    in_doubt: Arc<Mutex<HashMap<u64, PreparedTxn>>>,
    /// Abort decisions that arrived before their prepare finished (the
    /// coordinator timed the vote out). The late prepare consults this and
    /// aborts instead of parking, so no prepared transaction can leak its
    /// locks. Global id → when the decision arrived (for TTL pruning).
    orphan_aborts: Mutex<HashMap<u64, Instant>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stopping: std::sync::atomic::AtomicBool,
    workers: usize,
}

impl ShardWorkers {
    /// Spawns `workers` threads serving `db`'s mailbox.
    pub fn spawn(shard_index: usize, db: Arc<Database>, workers: usize) -> Arc<Self> {
        let (tx, rx) = mpsc::channel();
        let pool = Arc::new(ShardWorkers {
            db,
            tx,
            rx: Arc::new(Mutex::new(rx)),
            in_doubt: Arc::new(Mutex::new(HashMap::new())),
            orphan_aborts: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            stopping: std::sync::atomic::AtomicBool::new(false),
            workers: workers.max(1),
        });
        let mut handles = pool.handles.lock();
        for worker in 0..pool.workers {
            let pool_ref = Arc::clone(&pool);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tebaldi-shard-{shard_index}-worker-{worker}"))
                    .spawn(move || pool_ref.run())
                    .expect("spawn shard worker"),
            );
        }
        drop(handles);
        pool
    }

    /// The shard database served by this pool.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Number of prepared transactions currently awaiting a decision.
    pub fn in_doubt_count(&self) -> usize {
        self.in_doubt.lock().len()
    }

    fn submit(&self, job: Job) {
        // Send can only fail after shutdown; jobs are then dropped, which
        // resolves their tickets with an Internal error.
        let _ = self.tx.send(job);
    }

    /// Asynchronously executes a single-shard transaction with retry.
    pub fn submit_execute(
        &self,
        call: ProcedureCall,
        op: ShardOp,
        max_attempts: usize,
    ) -> Ticket<CcResult<Value>> {
        let (reply, rx) = mpsc::channel();
        self.submit(Job::Execute {
            call,
            op,
            max_attempts,
            reply,
        });
        Ticket { rx }
    }

    /// Asks the shard to prepare its part of global transaction `global`.
    pub fn submit_prepare(
        &self,
        global: u64,
        call: ProcedureCall,
        op: ShardOp,
    ) -> Ticket<CcResult<(Value, Vote)>> {
        let (reply, rx) = mpsc::channel();
        self.submit(Job::Prepare {
            global,
            call,
            op,
            reply,
        });
        Ticket { rx }
    }

    /// Applies the coordinator's decision for `global` inline on the
    /// calling thread. Decisions never queue behind prepares in the
    /// mailbox: a queued decision would stretch the window in which the
    /// prepared transaction holds its locks and convoy the whole shard.
    ///
    /// An abort decision that finds nothing parked is remembered: the
    /// coordinator may have timed the vote out while the prepare was still
    /// running, and the late prepare must abort instead of parking forever.
    pub fn decide(&self, global: u64, commit: bool) {
        // Lock order (in_doubt, then orphan_aborts) matches the prepare
        // handler's parking path, so a decision and a late-finishing
        // prepare serialize: exactly one of them wins the global id.
        let prepared = {
            let mut in_doubt = self.in_doubt.lock();
            let prepared = in_doubt.remove(&global);
            if prepared.is_none() && !commit {
                let mut orphans = self.orphan_aborts.lock();
                let now = Instant::now();
                orphans.retain(|_, arrived| now.duration_since(*arrived) < ORPHAN_DECISION_TTL);
                orphans.insert(global, now);
            }
            prepared
        };
        if let Some(prepared) = prepared {
            if commit {
                prepared.commit();
            } else {
                prepared.abort();
            }
        }
    }

    /// Stops every worker and joins them. Parked prepared transactions are
    /// aborted by presumption when the pool drops its in-doubt table.
    pub fn shutdown(&self) {
        self.stopping
            .store(true, std::sync::atomic::Ordering::SeqCst);
        // One token is enough: each exiting worker forwards it so the next
        // blocked worker wakes too (a worker may batch-drain several jobs,
        // so per-worker tokens would not be reliable).
        self.submit(Job::Shutdown);
        let mut handles = self.handles.lock();
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn run(&self) {
        let mut batch: Vec<Job> = Vec::with_capacity(DRAIN_BATCH);
        loop {
            if self.stopping.load(std::sync::atomic::Ordering::SeqCst) {
                // Forward the wakeup token before exiting.
                let _ = self.tx.send(Job::Shutdown);
                return;
            }
            batch.clear();
            {
                // Block for the first job, then opportunistically drain a
                // batch while the mailbox lock is held. A 2PC prepare ends
                // the batch: prepares can block on locks for a full wait
                // timeout, and jobs trapped behind one in a private batch
                // would stall while sibling workers sit idle (head-of-line
                // blocking that stretches the prepared-lock window).
                let rx = self.rx.lock();
                match rx.recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => return,
                }
                while batch.len() < DRAIN_BATCH
                    && !matches!(batch.last(), Some(Job::Prepare { .. }))
                {
                    match rx.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                }
            }
            for job in batch.drain(..) {
                if !self.handle(job) {
                    // Shutdown token: wake the next worker and exit.
                    let _ = self.tx.send(Job::Shutdown);
                    return;
                }
            }
        }
    }

    fn handle(&self, job: Job) -> bool {
        match job {
            Job::Execute {
                call,
                mut op,
                max_attempts,
                reply,
            } => {
                let result = self
                    .db
                    .execute_with_retry(&call, max_attempts.max(1), |txn| op(txn))
                    .map(|(value, _aborts)| value);
                let _ = reply.send(result);
            }
            Job::Prepare {
                global,
                call,
                mut op,
                reply,
            } => {
                // The coordinator may already have aborted this global
                // (vote timeout): don't waste the execution.
                if self.orphan_aborts.lock().remove(&global).is_some() {
                    let _ = reply.send(Err(CcError::Internal(
                        "coordinator aborted the transaction before its prepare ran".to_string(),
                    )));
                    return true;
                }
                let result = self.db.prepare(&call, global, |txn| op(txn));
                let result = result.and_then(|(value, vote)| match vote {
                    ParticipantVote::ReadOnly => Ok((value, Vote::ReadOnly)),
                    ParticipantVote::ReadWrite(prepared) => {
                        // Re-check under the in-doubt lock: a timed-out
                        // vote's abort decision may have raced in while the
                        // part was validating.
                        let mut in_doubt = self.in_doubt.lock();
                        if self.orphan_aborts.lock().remove(&global).is_some() {
                            drop(in_doubt);
                            prepared.abort();
                            Err(CcError::Internal(
                                "coordinator aborted the transaction during its prepare"
                                    .to_string(),
                            ))
                        } else {
                            in_doubt.insert(global, prepared);
                            Ok((value, Vote::ReadWrite))
                        }
                    }
                });
                let _ = reply.send(result);
            }
            Job::Shutdown => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_core::DbConfig;
    use tebaldi_storage::{Key, TableId, TxnTypeId};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);

    fn db() -> Arc<Database> {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        Arc::new(
            Database::builder(DbConfig::for_tests())
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn mailbox_executes_jobs() {
        let pool = ShardWorkers::spawn(0, db(), 2);
        pool.db().load(Key::simple(TABLE, 1), Value::Int(0));
        let tickets: Vec<_> = (0..32)
            .map(|_| {
                pool.submit_execute(
                    ProcedureCall::new(TY),
                    Box::new(|txn| txn.increment(Key::simple(TABLE, 1), 0, 1).map(Value::Int)),
                    20,
                )
            })
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap().unwrap();
        }
        let sum = pool
            .db()
            .execute(&ProcedureCall::new(TY), |txn| {
                txn.get(Key::simple(TABLE, 1))
            })
            .unwrap();
        assert_eq!(sum, Some(Value::Int(32)));
        pool.shutdown();
    }

    #[test]
    fn prepare_then_decide_roundtrip() {
        let pool = ShardWorkers::spawn(0, db(), 1);
        let key = Key::simple(TABLE, 9);
        pool.submit_prepare(
            7,
            ProcedureCall::new(TY),
            Box::new(move |txn| txn.put(key, Value::Int(5)).map(|()| Value::Null)),
        )
        .wait()
        .unwrap()
        .unwrap();
        assert_eq!(pool.in_doubt_count(), 1);
        pool.decide(7, true);
        assert_eq!(pool.in_doubt_count(), 0);
        let read = pool
            .db()
            .execute(&ProcedureCall::new(TY), |txn| txn.get(key))
            .unwrap();
        assert_eq!(read, Some(Value::Int(5)));
        pool.shutdown();
    }
}
