//! Per-shard worker pools with a batched mailbox, speaking the
//! serializable shard-RPC API.
//!
//! Clients submit [`ShardRequest`]s to a shard asynchronously: a job lands
//! in the shard's mailbox, one of the shard's worker threads drains a batch
//! and resolves each request's [`ProcId`] against the shard's
//! [`ProcRegistry`], runs the registered body against the shard
//! [`Database`], and the result comes back through the job's reply sink
//! (a [`Ticket`] in process, a connection outbox over TCP). The 2PC
//! coordinator submits its `Prepare` phase through the same mailbox
//! (prepares of one global transaction run on their shards in parallel);
//! decisions apply inline on the delivering thread so they never queue
//! behind blocking prepares.

use crate::api::{ShardRequest, ShardResponse, ShardResult, ShardStatsReply};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tebaldi_cc::{CcError, CcResult};
use tebaldi_core::{Database, ParticipantVote, PreparedTxn, ProcId, ProcRegistry, ProcedureCall};

/// A participant's phase-one vote class, as reported back to the
/// coordinator alongside the part's result value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// The part wrote nothing: it committed and released at phase one and
    /// must be excluded from the decision.
    ReadOnly,
    /// The part is parked in the shard's in-doubt table holding its locks
    /// until the decision arrives.
    ReadWrite,
}

/// One-shot result channel for an asynchronously submitted job.
pub struct Ticket<T> {
    inner: TicketInner<T>,
}

enum TicketInner<T> {
    /// Resolved synchronously — no channel behind it. The in-process
    /// transport answers decisions and admin ops this way on the hottest
    /// coordinator path, so the synchronous case must not allocate.
    Ready(T),
    Pending(mpsc::Receiver<T>),
}

impl<T> Ticket<T> {
    /// A ticket that is already resolved (requests a transport handled
    /// synchronously, e.g. in-process decisions).
    pub fn ready(value: T) -> Self {
        Ticket {
            inner: TicketInner::Ready(value),
        }
    }

    /// A pending ticket plus the sender that resolves it.
    pub fn pending() -> (mpsc::Sender<T>, Self) {
        let (tx, rx) = mpsc::channel();
        (
            tx,
            Ticket {
                inner: TicketInner::Pending(rx),
            },
        )
    }

    /// Blocks until the shard delivers the result.
    pub fn wait(self) -> CcResult<T> {
        match self.inner {
            TicketInner::Ready(value) => Ok(value),
            TicketInner::Pending(rx) => rx
                .recv()
                .map_err(|_| CcError::Internal("shard dropped the reply channel".to_string())),
        }
    }

    /// Blocks until the shard delivers the result or the timeout elapses.
    /// A timeout means the shard is wedged (or hopelessly backlogged); the
    /// coordinator treats it as a "no" vote so one stuck shard cannot hang
    /// a multi-shard transaction forever.
    pub fn wait_timeout(self, timeout: Duration) -> CcResult<T> {
        match self.inner {
            TicketInner::Ready(value) => Ok(value),
            TicketInner::Pending(rx) => rx.recv_timeout(timeout).map_err(|err| match err {
                mpsc::RecvTimeoutError::Timeout => {
                    CcError::Internal("shard did not answer within the timeout".to_string())
                }
                mpsc::RecvTimeoutError::Disconnected => {
                    CcError::Internal("shard dropped the reply channel".to_string())
                }
            }),
        }
    }
}

/// Where a finished job's result goes. In process this resolves a
/// [`Ticket`]; on the TCP server it forwards into the connection's outbox
/// tagged with the wire request id.
pub type ReplySink = Box<dyn FnOnce(ShardResult) + Send>;

pub(crate) enum Job {
    Run {
        request: ShardRequest,
        reply: ReplySink,
    },
    Shutdown,
}

/// How long an orphaned abort decision (the coordinator gave up on a
/// prepare that had not answered yet) is remembered so the late prepare
/// can be aborted when it finally lands. Generous: timeouts are rare and
/// the entries are tiny.
const ORPHAN_DECISION_TTL: Duration = Duration::from_secs(30);

/// How many jobs a worker drains from the mailbox per wakeup. Batching
/// amortizes the channel synchronization under load without adding latency
/// when the mailbox is shallow.
const DRAIN_BATCH: usize = 16;

/// The worker pool of one shard.
pub struct ShardWorkers {
    db: Arc<Database>,
    registry: Arc<ProcRegistry>,
    tx: mpsc::Sender<Job>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    in_doubt: Arc<Mutex<HashMap<u64, PreparedTxn>>>,
    /// Abort decisions that arrived before their prepare finished (the
    /// coordinator timed the vote out). The late prepare consults this and
    /// aborts instead of parking, so no prepared transaction can leak its
    /// locks. Global id → when the decision arrived (for TTL pruning).
    orphan_aborts: Mutex<HashMap<u64, Instant>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stopping: std::sync::atomic::AtomicBool,
    workers: usize,
}

impl ShardWorkers {
    /// Spawns `workers` threads serving `db`'s mailbox, resolving procedure
    /// ids against `registry`.
    pub fn spawn(
        shard_index: usize,
        db: Arc<Database>,
        workers: usize,
        registry: Arc<ProcRegistry>,
    ) -> Arc<Self> {
        let (tx, rx) = mpsc::channel();
        let pool = Arc::new(ShardWorkers {
            db,
            registry,
            tx,
            rx: Arc::new(Mutex::new(rx)),
            in_doubt: Arc::new(Mutex::new(HashMap::new())),
            orphan_aborts: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            stopping: std::sync::atomic::AtomicBool::new(false),
            workers: workers.max(1),
        });
        let mut handles = pool.handles.lock();
        for worker in 0..pool.workers {
            let pool_ref = Arc::clone(&pool);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tebaldi-shard-{shard_index}-worker-{worker}"))
                    .spawn(move || pool_ref.run())
                    .expect("spawn shard worker"),
            );
        }
        drop(handles);
        pool
    }

    /// The shard database served by this pool.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The procedure registry requests are resolved against.
    pub fn registry(&self) -> &Arc<ProcRegistry> {
        &self.registry
    }

    /// Number of prepared transactions currently awaiting a decision.
    pub fn in_doubt_count(&self) -> usize {
        self.in_doubt.lock().len()
    }

    fn submit(&self, job: Job) {
        // Send can only fail after shutdown; jobs are then dropped, which
        // resolves their tickets with an Internal error.
        let _ = self.tx.send(job);
    }

    /// Queues a body-running request ([`Execute`](ShardRequest::Execute) or
    /// [`Prepare`](ShardRequest::Prepare)) on the shard's worker pool. Any
    /// other request is handled inline (decisions and admin ops must never
    /// queue behind blocking prepares).
    pub fn submit_request(&self, request: ShardRequest, reply: ReplySink) {
        if request.runs_body() {
            self.submit(Job::Run { request, reply });
        } else {
            reply(self.handle_inline(request));
        }
    }

    /// Handles a request synchronously on the calling thread. This is the
    /// single entry point behind both transports: the in-process fast path
    /// calls it directly, the TCP server calls it from its connection
    /// threads (body-running requests via the mailbox, everything else
    /// inline).
    pub fn handle_inline(&self, request: ShardRequest) -> ShardResult {
        match request {
            ShardRequest::Execute {
                proc,
                call,
                args,
                max_attempts,
            } => self.execute_now(proc, &call, &args, max_attempts),
            ShardRequest::Prepare {
                global,
                proc,
                call,
                args,
            } => self.prepare_now(global, proc, &call, &args),
            ShardRequest::Commit { global } | ShardRequest::CommitOnePhase { global } => {
                self.decide(global, true);
                Ok(ShardResponse::Decided)
            }
            ShardRequest::Abort { global } => {
                self.decide(global, false);
                Ok(ShardResponse::Decided)
            }
            ShardRequest::Stats => {
                let snapshot = self.db.stats();
                Ok(ShardResponse::Stats(ShardStatsReply {
                    committed: snapshot.committed,
                    aborted: snapshot.aborted,
                    flushes: self.db.durability().stats().flushes,
                    in_doubt: self.in_doubt_count() as u64,
                }))
            }
            ShardRequest::Flush => {
                self.db.durability().seal_current_epoch();
                Ok(ShardResponse::Flushed)
            }
        }
    }

    fn resolve(&self, proc: ProcId) -> CcResult<Arc<dyn tebaldi_core::ShardProcedure>> {
        self.registry
            .get(proc)
            .ok_or_else(|| CcError::Internal(format!("no shard procedure registered for {proc}")))
    }

    /// Closed-loop execution with engine-side retry, on the calling thread.
    pub fn execute_now(
        &self,
        proc: ProcId,
        call: &ProcedureCall,
        args: &[u8],
        max_attempts: u32,
    ) -> ShardResult {
        let body = self.resolve(proc)?;
        self.db
            .execute_with_retry(call, max_attempts.max(1) as usize, |txn| {
                body.run(txn, args)
            })
            .map(|(value, aborts)| ShardResponse::Executed {
                value,
                aborts: aborts as u32,
            })
    }

    /// 2PC phase one on the calling thread: run the registered body up to
    /// the prepared state and park it in the in-doubt table keyed by the
    /// cluster-global id (read-write votes) or commit it outright
    /// (read-only votes).
    pub fn prepare_now(
        &self,
        global: u64,
        proc: ProcId,
        call: &ProcedureCall,
        args: &[u8],
    ) -> ShardResult {
        let body = self.resolve(proc)?;
        // The coordinator may already have aborted this global (vote
        // timeout): don't waste the execution.
        if self.orphan_aborts.lock().remove(&global).is_some() {
            return Err(CcError::Internal(
                "coordinator aborted the transaction before its prepare ran".to_string(),
            ));
        }
        let result = self.db.prepare(call, global, |txn| body.run(txn, args));
        result.and_then(|(value, vote)| match vote {
            ParticipantVote::ReadOnly => Ok(ShardResponse::Prepared {
                value,
                vote: Vote::ReadOnly,
            }),
            ParticipantVote::ReadWrite(prepared) => {
                // Re-check under the in-doubt lock: a timed-out vote's
                // abort decision may have raced in while the part was
                // validating.
                let mut in_doubt = self.in_doubt.lock();
                if self.orphan_aborts.lock().remove(&global).is_some() {
                    drop(in_doubt);
                    prepared.abort();
                    Err(CcError::Internal(
                        "coordinator aborted the transaction during its prepare".to_string(),
                    ))
                } else {
                    in_doubt.insert(global, prepared);
                    Ok(ShardResponse::Prepared {
                        value,
                        vote: Vote::ReadWrite,
                    })
                }
            }
        })
    }

    /// Applies the coordinator's decision for `global` inline on the
    /// calling thread. Decisions never queue behind prepares in the
    /// mailbox: a queued decision would stretch the window in which the
    /// prepared transaction holds its locks and convoy the whole shard.
    ///
    /// An abort decision that finds nothing parked is remembered: the
    /// coordinator may have timed the vote out while the prepare was still
    /// running, and the late prepare must abort instead of parking forever.
    pub fn decide(&self, global: u64, commit: bool) {
        // Lock order (in_doubt, then orphan_aborts) matches the prepare
        // handler's parking path, so a decision and a late-finishing
        // prepare serialize: exactly one of them wins the global id.
        let prepared = {
            let mut in_doubt = self.in_doubt.lock();
            let prepared = in_doubt.remove(&global);
            if prepared.is_none() && !commit {
                let mut orphans = self.orphan_aborts.lock();
                let now = Instant::now();
                orphans.retain(|_, arrived| now.duration_since(*arrived) < ORPHAN_DECISION_TTL);
                orphans.insert(global, now);
            }
            prepared
        };
        if let Some(prepared) = prepared {
            if commit {
                prepared.commit();
            } else {
                prepared.abort();
            }
        }
    }

    /// Stops every worker and joins them. Parked prepared transactions are
    /// aborted by presumption when the pool drops its in-doubt table.
    pub fn shutdown(&self) {
        self.stopping
            .store(true, std::sync::atomic::Ordering::SeqCst);
        // One token is enough: each exiting worker forwards it so the next
        // blocked worker wakes too (a worker may batch-drain several jobs,
        // so per-worker tokens would not be reliable).
        self.submit(Job::Shutdown);
        let mut handles = self.handles.lock();
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn run(&self) {
        let mut batch: Vec<Job> = Vec::with_capacity(DRAIN_BATCH);
        loop {
            if self.stopping.load(std::sync::atomic::Ordering::SeqCst) {
                // Forward the wakeup token before exiting.
                let _ = self.tx.send(Job::Shutdown);
                return;
            }
            batch.clear();
            {
                // Block for the first job, then opportunistically drain a
                // batch while the mailbox lock is held. A 2PC prepare ends
                // the batch: prepares can block on locks for a full wait
                // timeout, and jobs trapped behind one in a private batch
                // would stall while sibling workers sit idle (head-of-line
                // blocking that stretches the prepared-lock window).
                let rx = self.rx.lock();
                match rx.recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => return,
                }
                while batch.len() < DRAIN_BATCH
                    && !matches!(
                        batch.last(),
                        Some(Job::Run {
                            request: ShardRequest::Prepare { .. },
                            ..
                        })
                    )
                {
                    match rx.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                }
            }
            for job in batch.drain(..) {
                match job {
                    Job::Run { request, reply } => reply(self.handle_inline(request)),
                    Job::Shutdown => {
                        // Shutdown token: wake the next worker and exit.
                        let _ = self.tx.send(Job::Shutdown);
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_core::DbConfig;
    use tebaldi_storage::codec::{ByteReader, ByteWriter};
    use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);
    const BUMP: ProcId = ProcId(1);
    const PUT5: ProcId = ProcId(2);

    fn registry() -> Arc<ProcRegistry> {
        let mut reg = ProcRegistry::new();
        // bump(key_id): increment field 0 by 1.
        reg.register_fn(BUMP, |txn, args| {
            let mut r = ByteReader::new(args);
            let id = r.u64().map_err(|e| CcError::Internal(e.to_string()))?;
            txn.increment(Key::simple(TABLE, id), 0, 1).map(Value::Int)
        });
        // put5(key_id): write Int(5).
        reg.register_fn(PUT5, |txn, args| {
            let mut r = ByteReader::new(args);
            let id = r.u64().map_err(|e| CcError::Internal(e.to_string()))?;
            txn.put(Key::simple(TABLE, id), Value::Int(5))
                .map(|()| Value::Null)
        });
        Arc::new(reg)
    }

    fn args(id: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(id);
        w.into_bytes()
    }

    fn db() -> Arc<Database> {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        Arc::new(
            Database::builder(DbConfig::for_tests())
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn mailbox_executes_data_requests() {
        let pool = ShardWorkers::spawn(0, db(), 2, registry());
        pool.db().load(Key::simple(TABLE, 1), Value::Int(0));
        let tickets: Vec<_> = (0..32)
            .map(|_| {
                let (tx, ticket) = Ticket::pending();
                pool.submit_request(
                    ShardRequest::Execute {
                        proc: BUMP,
                        call: ProcedureCall::new(TY),
                        args: args(1),
                        max_attempts: 20,
                    },
                    Box::new(move |result| {
                        let _ = tx.send(result);
                    }),
                );
                ticket
            })
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap().unwrap();
        }
        let sum = pool
            .db()
            .execute(&ProcedureCall::new(TY), |txn| {
                txn.get(Key::simple(TABLE, 1))
            })
            .unwrap();
        assert_eq!(sum, Some(Value::Int(32)));
        pool.shutdown();
    }

    #[test]
    fn prepare_then_decide_roundtrip() {
        let pool = ShardWorkers::spawn(0, db(), 1, registry());
        let (value, vote) = pool
            .prepare_now(7, PUT5, &ProcedureCall::new(TY), &args(9))
            .unwrap()
            .into_prepared()
            .unwrap();
        assert_eq!(value, Value::Null);
        assert_eq!(vote, Vote::ReadWrite);
        assert_eq!(pool.in_doubt_count(), 1);
        pool.decide(7, true);
        assert_eq!(pool.in_doubt_count(), 0);
        let read = pool
            .db()
            .execute(&ProcedureCall::new(TY), |txn| {
                txn.get(Key::simple(TABLE, 9))
            })
            .unwrap();
        assert_eq!(read, Some(Value::Int(5)));
        pool.shutdown();
    }

    #[test]
    fn unknown_procedure_is_a_clean_error() {
        let pool = ShardWorkers::spawn(0, db(), 1, registry());
        let err = pool
            .execute_now(ProcId(999), &ProcedureCall::new(TY), &[], 1)
            .unwrap_err();
        assert!(matches!(err, CcError::Internal(_)));
        pool.shutdown();
    }

    #[test]
    fn stats_and_flush_admin_requests() {
        let pool = ShardWorkers::spawn(0, db(), 1, registry());
        pool.db().load(Key::simple(TABLE, 1), Value::Int(0));
        pool.execute_now(BUMP, &ProcedureCall::new(TY), &args(1), 5)
            .unwrap();
        match pool.handle_inline(ShardRequest::Stats).unwrap() {
            ShardResponse::Stats(stats) => {
                assert_eq!(stats.committed, 1);
                assert_eq!(stats.in_doubt, 0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(
            pool.handle_inline(ShardRequest::Flush).unwrap(),
            ShardResponse::Flushed
        );
        pool.shutdown();
    }
}
