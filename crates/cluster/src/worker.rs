//! Per-shard worker pools with a pipelined submission queue and a
//! hardening completion loop, speaking the serializable shard-RPC API.
//!
//! Clients submit [`ShardRequest`]s to a shard asynchronously: a job lands
//! in the shard's submission queue, one of the shard's worker threads pops
//! it and resolves the request's [`ProcId`] against the shard's
//! [`ProcRegistry`], runs the registered body against the shard
//! [`Database`], and the result comes back through the job's reply sink
//! (a [`Ticket`] in process, a connection outbox over TCP).
//!
//! ## The prepare pipeline
//!
//! A 2PC prepare has two halves with very different costs: *executing* the
//! body (CPU + lock waits) and *hardening* the yes-vote (waiting for the
//! `Prepare` WAL record's device flush). The legacy engine ran both on the
//! worker thread, so one in-flight prepare pinned one worker for its whole
//! latency and the number of overlapping prepares was bounded by the pool
//! size — scheduling, not hardware. With pipelining enabled
//! (`max_inflight > workers`), a worker instead:
//!
//! 1. pops the next submission (admission is bounded by the in-flight
//!    window — backpressure, not an unbounded queue),
//! 2. runs the body and **appends** the prepare record into the
//!    group-commit funnel without waiting for the flush
//!    ([`Database::prepare_deferred`]),
//! 3. hands the continuation (prepared transaction + funnel sequence +
//!    reply sink) to the shard's *completion loop* and immediately starts
//!    the next body.
//!
//! The completion loop drains whole batches of continuations, waits for the
//! highest funnel sequence once (one coalesced device flush hardens the
//! whole batch), parks each prepared transaction in the in-doubt table, and
//! only then acknowledges the yes-votes. One worker thereby multiplexes
//! many in-flight prepares; the prepared-lock window is bounded by the
//! flush latency, not by queueing behind other transactions' flushes.
//!
//! With `max_inflight <= workers` the pipeline is disabled and every
//! request runs start-to-finish on its worker — exactly the pre-pipelining
//! engine, kept as the measured baseline (`max_inflight_per_shard = 1`).
//!
//! The 2PC coordinator submits its `Prepare` phase through the same queue
//! (prepares of one global transaction run on their shards in parallel);
//! decisions apply inline on the delivering thread so they never queue
//! behind blocking prepares.

use crate::api::{ShardRequest, ShardResponse, ShardResult, ShardStatsReply};
use crate::replication::ShardReplication;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tebaldi_cc::{CcError, CcResult};
use tebaldi_core::{Database, ParticipantVote, PreparedTxn, ProcId, ProcRegistry, ProcedureCall};
use tebaldi_obs::{self as obs, Counter, Histogram, MaxGauge, TraceCtx};
use tebaldi_storage::{SnapshotRead, Value};

/// A participant's phase-one vote class, as reported back to the
/// coordinator alongside the part's result value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// The part wrote nothing: it committed and released at phase one and
    /// must be excluded from the decision.
    ReadOnly,
    /// The part is parked in the shard's in-doubt table holding its locks
    /// until the decision arrives.
    ReadWrite,
}

/// One-shot result channel for an asynchronously submitted job.
pub struct Ticket<T> {
    inner: TicketInner<T>,
}

enum TicketInner<T> {
    /// Resolved synchronously — no channel behind it. The in-process
    /// transport answers decisions and admin ops this way on the hottest
    /// coordinator path, so the synchronous case must not allocate.
    Ready(T),
    Pending(mpsc::Receiver<T>),
}

impl<T> Ticket<T> {
    /// A ticket that is already resolved (requests a transport handled
    /// synchronously, e.g. in-process decisions).
    pub fn ready(value: T) -> Self {
        Ticket {
            inner: TicketInner::Ready(value),
        }
    }

    /// A pending ticket plus the sender that resolves it.
    pub fn pending() -> (mpsc::Sender<T>, Self) {
        let (tx, rx) = mpsc::channel();
        (
            tx,
            Ticket {
                inner: TicketInner::Pending(rx),
            },
        )
    }

    /// Blocks until the shard delivers the result.
    pub fn wait(self) -> CcResult<T> {
        match self.inner {
            TicketInner::Ready(value) => Ok(value),
            TicketInner::Pending(rx) => rx
                .recv()
                .map_err(|_| CcError::Internal("shard dropped the reply channel".to_string())),
        }
    }

    /// Blocks until the shard delivers the result or the timeout elapses.
    /// A timeout means the shard is wedged (or hopelessly backlogged); the
    /// coordinator treats it as a "no" vote so one stuck shard cannot hang
    /// a multi-shard transaction forever.
    pub fn wait_timeout(self, timeout: Duration) -> CcResult<T> {
        match self.inner {
            TicketInner::Ready(value) => Ok(value),
            TicketInner::Pending(rx) => rx.recv_timeout(timeout).map_err(|err| match err {
                mpsc::RecvTimeoutError::Timeout => {
                    CcError::Internal("shard did not answer within the timeout".to_string())
                }
                mpsc::RecvTimeoutError::Disconnected => {
                    CcError::Internal("shard dropped the reply channel".to_string())
                }
            }),
        }
    }
}

/// Where a finished job's result goes. In process this resolves a
/// [`Ticket`]; on the TCP server it forwards into the connection's outbox
/// tagged with the wire request id.
pub type ReplySink = Box<dyn FnOnce(ShardResult) + Send>;

/// A body-running request waiting in the submission queue.
struct Submission {
    request: ShardRequest,
    reply: ReplySink,
    enqueued_at: Instant,
}

/// A request whose body finished but whose durability records are not yet
/// flushed: the continuation the worker hands to the completion loop.
struct PendingCompletion {
    /// Group-commit funnel sequence of the appended records.
    seq: u64,
    kind: CompletionKind,
    reply: ReplySink,
    body_done_at: Instant,
    /// Trace context of the originating request (for the hardening span).
    trace: TraceCtx,
}

enum CompletionKind {
    /// A 2PC prepare awaiting its yes-vote hardening; parked in the
    /// in-doubt table once durable, then acknowledged. Boxed: a parked
    /// prepared transaction is much larger than an execute continuation,
    /// and the completion queue holds many of either.
    Prepare {
        global: u64,
        value: tebaldi_storage::Value,
        prepared: Box<PreparedTxn>,
    },
    /// A finished request whose acknowledgement waits on durability only:
    /// a committed execute (its own commit records), or a read-only
    /// result gated by the read barrier (deferred commits it may have
    /// read from). Versions are already visible and locks released.
    Reply(ShardResponse),
}

/// Shared pipeline state: the submission queue workers pop from and the
/// completion queue the hardening loop drains. One mutex guards both — the
/// queues are touched for microseconds and the simplicity is worth more
/// than a second lock.
struct PipeState {
    queue: VecDeque<Submission>,
    completions: VecDeque<PendingCompletion>,
    /// Body-running requests admitted and not yet fully completed
    /// (executing on a worker or parked awaiting hardening).
    inflight: usize,
    stopping: bool,
}

/// Aggregate pipeline counters of one shard (totals; divide by the counts
/// for means). Snapshot via [`ShardWorkers::pipeline_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Body-running requests that passed through the submission queue.
    pub queued: u64,
    /// Total nanoseconds those requests waited in the queue before a
    /// worker picked them up (the *execute-wait* share of the prepare
    /// latency).
    pub queue_wait_ns: u64,
    /// Prepares whose hardening was deferred to the completion loop.
    pub hardened: u64,
    /// Total nanoseconds between a deferred prepare's body completion and
    /// its durable acknowledgement (the *hardening* share).
    pub hardening_ns: u64,
    /// Peak number of simultaneously in-flight bodies (executing or
    /// awaiting hardening) observed on this shard.
    pub max_depth: u64,
}

/// How long an orphaned abort decision (the coordinator gave up on a
/// prepare that had not answered yet) is remembered so the late prepare
/// can be aborted when it finally lands. Generous: timeouts are rare and
/// the entries are tiny.
const ORPHAN_DECISION_TTL: Duration = Duration::from_secs(30);

/// How long an applied Commit/Abort decision is remembered so replayed or
/// duplicated decision frames (hostile network, coordinator retry) are
/// recognized as no-ops instead of being re-applied. Without this memory a
/// replayed Abort would plant an orphan-abort tombstone for a global that
/// was already decided. Matches the orphan TTL: both bound how long the
/// network may replay a frame.
const DECISION_MEMORY_TTL: Duration = Duration::from_secs(30);

/// Recently applied decisions (global id → committed?), remembered so a
/// replayed frame is recognized. Two generations rotated every
/// [`DECISION_MEMORY_TTL`] give O(1) amortized insert/lookup/expiry (a
/// per-decision TTL scan would be O(n) on every decision under bench
/// load): an entry survives between one and two TTLs, which only errs on
/// the safe side (remembering longer).
struct DecisionMemory {
    current: HashMap<u64, bool>,
    previous: HashMap<u64, bool>,
    rotated_at: Instant,
}

impl DecisionMemory {
    fn new() -> Self {
        DecisionMemory {
            current: HashMap::new(),
            previous: HashMap::new(),
            rotated_at: Instant::now(),
        }
    }

    /// Records `commit` for `global` unless a decision is already
    /// remembered; returns the remembered outcome in that case.
    fn record(&mut self, global: u64, commit: bool) -> Option<bool> {
        let now = Instant::now();
        if now.duration_since(self.rotated_at) >= DECISION_MEMORY_TTL {
            self.previous = std::mem::take(&mut self.current);
            self.rotated_at = now;
        }
        if let Some(&prior) = self
            .current
            .get(&global)
            .or_else(|| self.previous.get(&global))
        {
            return Some(prior);
        }
        self.current.insert(global, commit);
        None
    }
}

/// Maps an abort reason onto a span status tag: the mechanism that aborted
/// the transaction where one is known, the error class otherwise.
pub(crate) fn error_status(err: &CcError) -> &'static str {
    match err {
        CcError::Timeout { mechanism, .. } | CcError::Conflict { mechanism, .. } => mechanism,
        CcError::DependencyAborted => "dependency",
        CcError::Requested => "requested",
        CcError::Internal(_) => "internal",
        CcError::Unreachable { .. } => "unreachable",
    }
}

/// The worker pool of one shard.
pub struct ShardWorkers {
    db: Arc<Database>,
    registry: Arc<ProcRegistry>,
    state: Mutex<PipeState>,
    /// Wakes workers: queue non-empty (within the admission window) or
    /// stopping.
    work_cv: Condvar,
    /// Wakes the completion loop: completions non-empty or stopping.
    done_cv: Condvar,
    in_doubt: Arc<Mutex<HashMap<u64, PreparedTxn>>>,
    /// Abort decisions that arrived before their prepare finished (the
    /// coordinator timed the vote out). The late prepare consults this and
    /// aborts instead of parking, so no prepared transaction can leak its
    /// locks. Global id → when the decision arrived (for TTL pruning).
    orphan_aborts: Mutex<HashMap<u64, Instant>>,
    /// Recently applied decisions, kept for at least
    /// [`DECISION_MEMORY_TTL`] so duplicated/replayed decision frames are
    /// absorbed idempotently rather than re-applied.
    decided: Mutex<DecisionMemory>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stopping: std::sync::atomic::AtomicBool,
    workers: usize,
    /// Upper bound on in-flight bodies. Values <= `workers` disable the
    /// deferred-hardening pipeline (each worker then completes one request
    /// start-to-finish: the measured pre-pipelining baseline).
    max_inflight: usize,
    /// This shard's index, tagged onto trace spans.
    shard: i32,
    /// Pipeline counters, registered in the shard database's metrics
    /// registry under `pipeline.*` so one snapshot carries them alongside
    /// the engine's own metrics.
    queued: Arc<Counter>,
    queue_wait_ns: Arc<Counter>,
    hardened: Arc<Counter>,
    hardening_ns: Arc<Counter>,
    max_depth: Arc<MaxGauge>,
    /// Duplicated/replayed decision frames absorbed (same outcome again).
    dup_decisions: Arc<Counter>,
    /// Replayed decisions that contradicted the remembered outcome —
    /// counted and dropped, the first decision wins.
    conflict_decisions: Arc<Counter>,
    /// Primary-side replication for this shard, when configured: the
    /// quorum gate the ack paths call before a hardened batch (or a
    /// synchronous prepare/execute) is acknowledged.
    replication: Mutex<Option<Arc<ShardReplication>>>,
    /// `replication.*` counters surfaced through [`ShardRequest::Stats`].
    /// Shared by name with [`ShardReplication`]'s registrations in the
    /// same shard registry (and bumped by promotion), so the reply needs
    /// no replication handle.
    follower_reads: Arc<Counter>,
    failovers: Arc<Counter>,
    replica_ack_timeouts: Arc<Counter>,
    /// `snapshot.*` instruments for the zero-2PC HLC read path: requests
    /// served, total nanoseconds spent waiting out in-flight writers, and
    /// the per-request service latency distribution.
    snapshot_reads: Arc<Counter>,
    snapshot_read_wait_ns: Arc<Counter>,
    snapshot_read_latency: Arc<Histogram>,
}

impl ShardWorkers {
    /// Spawns `workers` threads serving `db`'s submission queue with the
    /// pipeline disabled (`max_inflight = 1`): every request runs
    /// start-to-finish on its worker, the pre-pipelining behavior.
    pub fn spawn(
        shard_index: usize,
        db: Arc<Database>,
        workers: usize,
        registry: Arc<ProcRegistry>,
    ) -> Arc<Self> {
        ShardWorkers::spawn_with_window(shard_index, db, workers, registry, 1)
    }

    /// Spawns `workers` threads serving `db`'s submission queue, resolving
    /// procedure ids against `registry`, with up to `max_inflight`
    /// body-running requests in flight at once. When `max_inflight`
    /// exceeds the worker count, a completion loop is started and workers
    /// pipeline prepares through it (deferred hardening).
    pub fn spawn_with_window(
        shard_index: usize,
        db: Arc<Database>,
        workers: usize,
        registry: Arc<ProcRegistry>,
        max_inflight: usize,
    ) -> Arc<Self> {
        let workers = workers.max(1);
        let metrics = Arc::clone(db.metrics());
        let pool = Arc::new(ShardWorkers {
            db,
            registry,
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                completions: VecDeque::new(),
                inflight: 0,
                stopping: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            in_doubt: Arc::new(Mutex::new(HashMap::new())),
            orphan_aborts: Mutex::new(HashMap::new()),
            decided: Mutex::new(DecisionMemory::new()),
            handles: Mutex::new(Vec::new()),
            stopping: std::sync::atomic::AtomicBool::new(false),
            workers,
            max_inflight: max_inflight.max(1),
            shard: shard_index as i32,
            queued: metrics.counter("pipeline.queued"),
            queue_wait_ns: metrics.counter("pipeline.queue_wait_ns"),
            hardened: metrics.counter("pipeline.hardened"),
            hardening_ns: metrics.counter("pipeline.hardening_ns"),
            max_depth: metrics.max_gauge("pipeline.max_depth"),
            dup_decisions: metrics.counter("decisions.duplicate"),
            conflict_decisions: metrics.counter("decisions.conflict"),
            replication: Mutex::new(None),
            follower_reads: metrics.counter("replication.follower_reads"),
            failovers: metrics.counter("replication.failovers"),
            replica_ack_timeouts: metrics.counter("replication.acks_timed_out"),
            snapshot_reads: metrics.counter("snapshot.reads"),
            snapshot_read_wait_ns: metrics.counter("snapshot.read_wait_ns"),
            snapshot_read_latency: metrics.histogram("snapshot.read_ns"),
        });
        let mut handles = pool.handles.lock();
        for worker in 0..pool.workers {
            let pool_ref = Arc::clone(&pool);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tebaldi-shard-{shard_index}-worker-{worker}"))
                    .spawn(move || pool_ref.run())
                    .expect("spawn shard worker"),
            );
        }
        if pool.pipelined() {
            let pool_ref = Arc::clone(&pool);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tebaldi-shard-{shard_index}-completer"))
                    .spawn(move || pool_ref.run_completer())
                    .expect("spawn shard completer"),
            );
        }
        drop(handles);
        pool
    }

    /// The shard database served by this pool.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The procedure registry requests are resolved against.
    pub fn registry(&self) -> &Arc<ProcRegistry> {
        &self.registry
    }

    /// Number of prepared transactions currently awaiting a decision.
    pub fn in_doubt_count(&self) -> usize {
        self.in_doubt.lock().len()
    }

    /// Installs the shard's replication group: from here on every
    /// durability wait on the ack paths also waits out the replica
    /// quorum (bounded by the configured ack timeout).
    pub fn set_replication(&self, replication: Arc<ShardReplication>) {
        *self.replication.lock() = Some(replication);
    }

    /// This shard's replication group, if configured.
    pub fn replication(&self) -> Option<Arc<ShardReplication>> {
        self.replication.lock().clone()
    }

    /// The quorum gate: a no-op without replication; otherwise blocks
    /// until a quorum of replicas acked everything durable here, or the
    /// ack timeout degrades the batch to local-only durability (the
    /// timeout is counted, the caller proceeds either way).
    /// Returns `false` only when a quorum was required and the ack
    /// timeout expired first. Commit acks proceed degraded on `false`
    /// (local durability, counted for the operator); read-write prepare
    /// votes must NOT — a yes-vote on a record the replicas never saw
    /// could commit a cross-shard transaction whose part dies with this
    /// primary.
    fn replication_sync(&self) -> bool {
        let replication = self.replication.lock().clone();
        match replication {
            Some(replication) => replication.sync(),
            None => true,
        }
    }

    /// True when deferred hardening is active: the in-flight window allows
    /// more bodies than there are workers, so overlapping them needs the
    /// completion loop.
    pub fn pipelined(&self) -> bool {
        self.max_inflight > self.workers
    }

    /// The configured in-flight window.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Snapshot of the pipeline counters.
    pub fn pipeline_stats(&self) -> PipelineStats {
        PipelineStats {
            queued: self.queued.get(),
            queue_wait_ns: self.queue_wait_ns.get(),
            hardened: self.hardened.get(),
            hardening_ns: self.hardening_ns.get(),
            max_depth: self.max_depth.get(),
        }
    }

    /// Queues a body-running request ([`Execute`](ShardRequest::Execute) or
    /// [`Prepare`](ShardRequest::Prepare)) on the shard's worker pool. Any
    /// other request is handled inline (decisions and admin ops must never
    /// queue behind blocking prepares).
    pub fn submit_request(&self, request: ShardRequest, reply: ReplySink) {
        if request.runs_body() {
            let mut state = self.state.lock();
            if state.stopping {
                // Dropping the sink resolves the caller's ticket with a
                // clean disconnect error.
                return;
            }
            state.queue.push_back(Submission {
                request,
                reply,
                enqueued_at: Instant::now(),
            });
            self.work_cv.notify_one();
        } else {
            reply(self.handle_inline(request));
        }
    }

    /// Handles a request synchronously on the calling thread. This is the
    /// single entry point behind both transports: the in-process fast path
    /// calls it directly, the TCP server calls it from its connection
    /// threads (body-running requests via the submission queue, everything
    /// else inline).
    pub fn handle_inline(&self, request: ShardRequest) -> ShardResult {
        match request {
            ShardRequest::Execute {
                proc,
                call,
                args,
                max_attempts,
                ..
            } => self.execute_now(proc, &call, &args, max_attempts),
            ShardRequest::Prepare {
                global,
                proc,
                call,
                args,
                ..
            } => self.prepare_now(global, proc, &call, &args),
            ShardRequest::Commit { global, hlc } | ShardRequest::CommitOnePhase { global, hlc } => {
                self.decide_stamped(global, true, hlc);
                Ok(ShardResponse::Decided)
            }
            ShardRequest::Abort { global } => {
                self.decide_stamped(global, false, 0);
                Ok(ShardResponse::Decided)
            }
            ShardRequest::SnapshotRead {
                snapshot,
                wait_ms,
                keys,
            } => self.snapshot_read_now(snapshot, wait_ms, &keys),
            ShardRequest::Stats => {
                let snapshot = self.db.stats();
                let pipeline = self.pipeline_stats();
                Ok(ShardResponse::Stats(ShardStatsReply {
                    committed: snapshot.committed,
                    aborted: snapshot.aborted,
                    flushes: self.db.durability().stats().flushes,
                    in_doubt: self.in_doubt_count() as u64,
                    queue_wait_ns: pipeline
                        .queue_wait_ns
                        .checked_div(pipeline.queued)
                        .unwrap_or(0),
                    pipeline_depth: pipeline.max_depth,
                    follower_reads: self.follower_reads.get(),
                    failovers: self.failovers.get(),
                    replica_acks_timed_out: self.replica_ack_timeouts.get(),
                    snapshot_reads: self.snapshot_reads.get(),
                    snapshot_read_wait_ns: self.snapshot_read_wait_ns.get(),
                }))
            }
            ShardRequest::Flush => {
                self.db.durability().seal_current_epoch();
                Ok(ShardResponse::Flushed)
            }
            ShardRequest::Metrics => Ok(ShardResponse::Metrics(Box::new(
                self.db.metrics().snapshot(),
            ))),
        }
    }

    fn resolve(&self, proc: ProcId) -> CcResult<Arc<dyn tebaldi_core::ShardProcedure>> {
        self.registry
            .get(proc)
            .ok_or_else(|| CcError::Internal(format!("no shard procedure registered for {proc}")))
    }

    /// Closed-loop execution with engine-side retry, on the calling thread.
    pub fn execute_now(
        &self,
        proc: ProcId,
        call: &ProcedureCall,
        args: &[u8],
        max_attempts: u32,
    ) -> ShardResult {
        let body = self.resolve(proc)?;
        let result = self
            .db
            .execute_with_retry(call, max_attempts.max(1) as usize, |txn| {
                body.run(txn, args)
            })
            .map(|(value, aborts)| ShardResponse::Executed {
                value,
                aborts: aborts as u32,
            });
        // The inline path must honor the read barrier too: with the
        // pipeline active on this shard, this execute may have read a
        // deferred commit whose flush is still pending, and a read-only
        // transaction appends nothing of its own to wait on. (A writing
        // transaction's own synchronous flush already hardened everything
        // appended before it, making this a no-op; with no deferred
        // commits outstanding the barrier is `None` and costs one load.)
        if result.is_ok() {
            if let Some(seq) = self.db.durability().read_barrier() {
                self.db.wait_hardened(seq);
            }
            // Quorum gate: what this ack makes visible must survive the
            // loss of the primary's device.
            self.replication_sync();
        }
        result
    }

    /// 2PC phase one on the calling thread: run the registered body up to
    /// the prepared state and park it in the in-doubt table keyed by the
    /// cluster-global id (read-write votes) or commit it outright
    /// (read-only votes). The synchronous (unpipelined) path.
    pub fn prepare_now(
        &self,
        global: u64,
        proc: ProcId,
        call: &ProcedureCall,
        args: &[u8],
    ) -> ShardResult {
        let body = self.resolve(proc)?;
        // The coordinator may already have aborted this global (vote
        // timeout): don't waste the execution.
        if self.orphan_aborts.lock().remove(&global).is_some() {
            return Err(CcError::Internal(
                "coordinator aborted the transaction before its prepare ran".to_string(),
            ));
        }
        let result = self.db.prepare(call, global, |txn| body.run(txn, args));
        result.and_then(|(value, vote)| match vote {
            ParticipantVote::ReadOnly => Ok(ShardResponse::Prepared {
                value,
                vote: Vote::ReadOnly,
                hlc: self.db.hlc().now(),
            }),
            ParticipantVote::ReadWrite(prepared) => {
                // The yes-vote promises commit-on-demand even across the
                // loss of this primary: the prepare record must reach the
                // replica quorum before the vote goes out. A gate timeout
                // aborts the part instead of voting degraded.
                if self.replication_sync() {
                    self.park_prepared(global, value, prepared)
                } else {
                    prepared.abort();
                    Err(CcError::Internal(
                        "prepare not quorum-replicated within the ack timeout".to_string(),
                    ))
                }
            }
        })
    }

    /// Parks a hardened read-write prepare in the in-doubt table, unless
    /// the coordinator already aborted the global while the part was
    /// validating or hardening (the orphan-abort race).
    fn park_prepared(
        &self,
        global: u64,
        value: tebaldi_storage::Value,
        prepared: PreparedTxn,
    ) -> ShardResult {
        // Re-check under the in-doubt lock: a timed-out vote's abort
        // decision may have raced in while the part was validating (or,
        // pipelined, while its record was waiting for the flush).
        let mut in_doubt = self.in_doubt.lock();
        if self.orphan_aborts.lock().remove(&global).is_some() {
            drop(in_doubt);
            prepared.abort();
            Err(CcError::Internal(
                "coordinator aborted the transaction during its prepare".to_string(),
            ))
        } else {
            in_doubt.insert(global, prepared);
            // The vote clock is drawn after the prepare hardened and its
            // versions were installed: any decision stamp `d` the
            // coordinator derives from this clock therefore satisfies
            // "d <= h implies the prepared version was already on the
            // chain when a snapshot reader at h traversed it" — the
            // atomic-visibility argument of cross-shard snapshot reads.
            Ok(ShardResponse::Prepared {
                value,
                vote: Vote::ReadWrite,
                hlc: self.db.hlc().now(),
            })
        }
    }

    /// The pipelined prepare: run the body, append the prepare record
    /// without waiting for its flush, and hand the continuation to the
    /// completion loop. Returns `None` when the continuation was parked
    /// (the reply is now owned by the completion loop) or `Some(result)`
    /// when the request finished synchronously (error, read-only vote, or
    /// nothing to harden).
    fn prepare_pipelined(
        &self,
        global: u64,
        proc: ProcId,
        call: &ProcedureCall,
        args: &[u8],
        trace: TraceCtx,
        reply: ReplySink,
    ) -> Option<(ShardResult, ReplySink)> {
        let body = match self.resolve(proc) {
            Ok(body) => body,
            Err(err) => return Some((Err(err), reply)),
        };
        if self.orphan_aborts.lock().remove(&global).is_some() {
            return Some((
                Err(CcError::Internal(
                    "coordinator aborted the transaction before its prepare ran".to_string(),
                )),
                reply,
            ));
        }
        match self
            .db
            .prepare_deferred(call, global, |txn| body.run(txn, args))
        {
            Err(err) => Some((Err(err), reply)),
            Ok((value, ParticipantVote::ReadOnly, barrier)) => {
                let response = ShardResponse::Prepared {
                    value,
                    vote: Vote::ReadOnly,
                    hlc: self.db.hlc().now(),
                };
                match barrier {
                    // The read-only result may reflect a published
                    // deferred commit that is not durable yet: its
                    // acknowledgement waits out the read barrier.
                    Some(seq) => {
                        self.park_completion(PendingCompletion {
                            seq,
                            kind: CompletionKind::Reply(response),
                            reply,
                            body_done_at: Instant::now(),
                            trace,
                        });
                        None
                    }
                    None => Some((Ok(response), reply)),
                }
            }
            Ok((value, ParticipantVote::ReadWrite(prepared), None)) => {
                // Nothing to defer (durability off, or legacy uncoalesced
                // flushing already hardened synchronously): finish inline.
                Some((self.park_prepared(global, value, prepared), reply))
            }
            Ok((value, ParticipantVote::ReadWrite(prepared), Some(seq))) => {
                self.park_completion(PendingCompletion {
                    seq,
                    kind: CompletionKind::Prepare {
                        global,
                        value,
                        prepared: Box::new(prepared),
                    },
                    reply,
                    body_done_at: Instant::now(),
                    trace,
                });
                None
            }
        }
    }

    /// The pipelined execute: run the body with retry, and when the final
    /// commit's durability wait was deferred, hand the acknowledgement to
    /// the completion loop (versions are already visible, locks released).
    fn execute_pipelined(
        &self,
        proc: ProcId,
        call: &ProcedureCall,
        args: &[u8],
        max_attempts: u32,
        trace: TraceCtx,
        reply: ReplySink,
    ) -> Option<(ShardResult, ReplySink)> {
        let body = match self.resolve(proc) {
            Ok(body) => body,
            Err(err) => return Some((Err(err), reply)),
        };
        match self
            .db
            .execute_with_retry_deferred(call, max_attempts.max(1) as usize, |txn| {
                body.run(txn, args)
            }) {
            Err(err) => Some((Err(err), reply)),
            Ok((value, aborts, None)) => Some((
                Ok(ShardResponse::Executed {
                    value,
                    aborts: aborts as u32,
                }),
                reply,
            )),
            Ok((value, aborts, Some(seq))) => {
                self.park_completion(PendingCompletion {
                    seq,
                    kind: CompletionKind::Reply(ShardResponse::Executed {
                        value,
                        aborts: aborts as u32,
                    }),
                    reply,
                    body_done_at: Instant::now(),
                    trace,
                });
                None
            }
        }
    }

    /// Parks a continuation for the completion loop. A `Reply` completion
    /// (committed execute or barrier-gated read ack) holds no locks and
    /// runs no body — only its acknowledgement is pending — so it releases
    /// its in-flight window slot here instead of throttling new admissions
    /// until the flush; a `Prepare` completion keeps its slot until the
    /// yes-vote is hardened (that hardening *is* the pipeline stage the
    /// window bounds).
    fn park_completion(&self, completion: PendingCompletion) {
        let release_slot = matches!(completion.kind, CompletionKind::Reply(_));
        let mut state = self.state.lock();
        state.completions.push_back(completion);
        if release_slot {
            state.inflight -= 1;
            self.work_cv.notify_all();
        }
        drop(state);
        self.done_cv.notify_one();
    }

    /// Applies the coordinator's decision for `global` inline on the
    /// calling thread. Decisions never queue behind prepares in the
    /// submission queue: a queued decision would stretch the window in
    /// which the prepared transaction holds its locks and convoy the whole
    /// shard.
    ///
    /// An abort decision that finds nothing parked is remembered: the
    /// coordinator may have timed the vote out while the prepare was still
    /// running (or hardening), and the late prepare must abort instead of
    /// parking forever.
    pub fn decide(&self, global: u64, commit: bool) {
        self.decide_stamped(global, commit, 0);
    }

    /// [`decide`](ShardWorkers::decide) carrying the coordinator's HLC
    /// decision stamp: a commit stamps its versions with exactly `hlc`
    /// (after merging it into the shard clock), which is what makes the
    /// cross-shard commit atomically visible to snapshot reads.
    pub fn decide_stamped(&self, global: u64, commit: bool, hlc: u64) {
        // Replay guard first: a duplicated or replayed decision frame must
        // be absorbed without side effects. In particular a replayed Abort
        // for an already-decided global must not plant a fresh orphan
        // tombstone (which could later kill an unrelated prepare that
        // reuses the id), and a contradictory replay must not override the
        // outcome already applied.
        match self.decided.lock().record(global, commit) {
            Some(prior) if prior == commit => {
                self.dup_decisions.inc();
                return;
            }
            Some(_) => {
                self.conflict_decisions.inc();
                return;
            }
            None => {}
        }
        // Lock order (in_doubt, then orphan_aborts) matches the prepare
        // handler's parking path, so a decision and a late-finishing
        // prepare serialize: exactly one of them wins the global id.
        let prepared = {
            let mut in_doubt = self.in_doubt.lock();
            let prepared = in_doubt.remove(&global);
            if prepared.is_none() && !commit {
                let mut orphans = self.orphan_aborts.lock();
                let now = Instant::now();
                orphans.retain(|_, arrived| now.duration_since(*arrived) < ORPHAN_DECISION_TTL);
                orphans.insert(global, now);
            }
            prepared
        };
        if let Some(prepared) = prepared {
            if commit {
                prepared.commit_stamped(hlc);
            } else {
                prepared.abort();
            }
        }
    }

    /// The global ids of every prepared transaction currently parked in
    /// the in-doubt table. Failover uses this to re-resolve entries whose
    /// decisions raced with a promotion.
    pub fn in_doubt_globals(&self) -> Vec<u64> {
        self.in_doubt.lock().keys().copied().collect()
    }

    /// Serves a multi-key read at the global HLC snapshot `snapshot` — the
    /// zero-2PC, zero-lock read path. Merges the snapshot into the shard
    /// clock *first* (from here on every local commit stamps above it, so
    /// the snapshot's visible set is frozen), then reads each key from the
    /// newest committed version stamped `<= snapshot`, waiting out (up to
    /// `wait_ms` in total) any in-flight writer whose outcome is still
    /// unknown. Writes nothing: no prepare record, no decision-log entry,
    /// no vote.
    pub fn snapshot_read_now(
        &self,
        snapshot: u64,
        wait_ms: u64,
        keys: &[tebaldi_storage::Key],
    ) -> ShardResult {
        let started = Instant::now();
        // Observe-first is the linchpin: after this merge, any commit this
        // shard stamps is `> snapshot`, so a version we find missing now
        // can never later appear below the snapshot.
        self.db.hlc().observe(snapshot);
        let deadline = started + Duration::from_millis(wait_ms);
        let store = Arc::clone(self.db.store());
        let mut values = Vec::with_capacity(keys.len());
        let mut wait_ns = 0u64;
        for key in keys {
            loop {
                match store.read_snapshot_hlc(key, snapshot) {
                    SnapshotRead::Value(value) => {
                        values.push(value.unwrap_or(Value::Null));
                        break;
                    }
                    SnapshotRead::Blocked => {
                        // An uncommitted writer overlaps the snapshot: its
                        // decision stamp may land below `snapshot`, so the
                        // read cannot skip it — wait for the decision.
                        if Instant::now() >= deadline {
                            self.snapshot_reads.inc();
                            self.snapshot_read_wait_ns.add(wait_ns);
                            return Err(CcError::Timeout {
                                mechanism: "snapshot",
                                what: "an in-flight writer overlapping the snapshot",
                            });
                        }
                        let wait_start = Instant::now();
                        std::thread::sleep(Duration::from_micros(50));
                        wait_ns += wait_start.elapsed().as_nanos() as u64;
                    }
                }
            }
        }
        self.snapshot_reads.inc();
        self.snapshot_read_wait_ns.add(wait_ns);
        self.snapshot_read_latency
            .record(started.elapsed().as_nanos() as u64);
        Ok(ShardResponse::Snapshot {
            values,
            hlc: self.db.hlc().last(),
        })
    }

    /// Stops every worker and the completion loop (after it drains and
    /// hardens any still-pending continuations) and joins them. Parked
    /// prepared transactions are aborted by presumption when the pool drops
    /// its in-doubt table.
    pub fn shutdown(&self) {
        if self
            .stopping
            .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            return;
        }
        {
            let mut state = self.state.lock();
            state.stopping = true;
            // Queued-but-unstarted jobs are dropped; their reply sinks
            // resolve the waiting tickets with a clean disconnect error.
            state.queue.clear();
            self.work_cv.notify_all();
        }
        let mut handles = self.handles.lock();
        // Join workers first: after they exit, no new continuations can
        // appear, so the completion loop can drain to empty and stop. The
        // completer (if any) is the last handle.
        for handle in handles.drain(..) {
            self.done_cv.notify_all();
            let _ = handle.join();
        }
    }

    /// Worker loop: pop a submission (respecting the in-flight window),
    /// execute it, and either finish it inline or park its continuation.
    fn run(&self) {
        loop {
            // Unpipelined (window <= workers), admission needs no explicit
            // gate: each worker holds exactly one request start-to-finish,
            // so the worker count itself is the bound — the pre-pipelining
            // behavior, exactly.
            let admission = if self.pipelined() {
                self.max_inflight
            } else {
                usize::MAX
            };
            let submission = {
                let mut state = self.state.lock();
                loop {
                    if state.stopping {
                        return;
                    }
                    if state.inflight < admission {
                        if let Some(submission) = state.queue.pop_front() {
                            state.inflight += 1;
                            self.max_depth.observe(state.inflight as u64);
                            break submission;
                        }
                    }
                    self.work_cv.wait(&mut state);
                }
            };
            let waited_ns = submission.enqueued_at.elapsed().as_nanos() as u64;
            self.queued.inc();
            self.queue_wait_ns.add(waited_ns);
            let trace = submission.request.trace();
            if trace.is_sampled() {
                let end = obs::now_ns();
                obs::record_span(
                    trace,
                    "shard.queue_wait",
                    self.shard,
                    end.saturating_sub(waited_ns),
                    end,
                    "ok",
                );
            }
            let exec_start = trace.is_sampled().then(obs::now_ns);
            let Submission { request, reply, .. } = submission;
            let finished = match request {
                ShardRequest::Prepare {
                    global,
                    proc,
                    call,
                    args,
                    trace,
                } if self.pipelined() => {
                    self.prepare_pipelined(global, proc, &call, &args, trace, reply)
                }
                ShardRequest::Execute {
                    proc,
                    call,
                    args,
                    max_attempts,
                    trace,
                } if self.pipelined() => {
                    self.execute_pipelined(proc, &call, &args, max_attempts, trace, reply)
                }
                other => Some((self.handle_inline(other), reply)),
            };
            if let Some(start) = exec_start {
                let status = match &finished {
                    Some((Err(err), _)) => error_status(err),
                    _ => "ok",
                };
                obs::record_span(
                    trace,
                    "shard.execute",
                    self.shard,
                    start,
                    obs::now_ns(),
                    status,
                );
            }
            if let Some((result, reply)) = finished {
                reply(result);
                self.finish_inflight(1);
            }
        }
    }

    /// Decrements the in-flight count and wakes waiting workers (and the
    /// completion loop, whose shutdown condition watches the in-flight
    /// count).
    fn finish_inflight(&self, n: usize) {
        let mut state = self.state.lock();
        state.inflight -= n;
        drop(state);
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Completion loop: drain every parked continuation, wait once for the
    /// highest funnel sequence (one coalesced flush hardens the whole
    /// batch), then acknowledge each one — parking prepares in the
    /// in-doubt table, releasing executes to their clients.
    fn run_completer(&self) {
        loop {
            let batch: Vec<PendingCompletion> = {
                let mut state = self.state.lock();
                while state.completions.is_empty() {
                    // Exit only once no body is still executing: a worker
                    // mid-body at shutdown may yet park a continuation,
                    // and its caller's reply must not be orphaned.
                    if state.stopping && state.inflight == 0 {
                        return;
                    }
                    // Bounded wait: the exit predicate reads two fields
                    // updated under separate notifications, so re-check on
                    // a timer rather than trusting every path to notify —
                    // a missed wakeup then costs 50ms, not a hung
                    // shutdown.
                    let _ = self.done_cv.wait_for(&mut state, Duration::from_millis(50));
                }
                state.completions.drain(..).collect()
            };
            let highest = batch.iter().map(|c| c.seq).max().unwrap_or(0);
            self.db.wait_hardened(highest);
            // The quorum gate rides the coalesced-flush path: one wait
            // for the whole hardened batch, not one per transaction.
            let quorum_ok = if highest > 0 {
                self.replication_sync()
            } else {
                true
            };
            // Only `Prepare` completions still hold a window slot (`Reply`
            // completions released theirs when they were parked).
            let slots = batch
                .iter()
                .filter(|c| matches!(c.kind, CompletionKind::Prepare { .. }))
                .count();
            for completion in batch {
                let result = match completion.kind {
                    CompletionKind::Prepare {
                        global,
                        value,
                        prepared,
                    } => {
                        // Only prepares count in the hardening metrics:
                        // they are what the queue-wait/hardening
                        // decomposition of the prepared-lock window is
                        // about (executes and read acks released their
                        // locks before parking).
                        let hardening = completion.body_done_at.elapsed().as_nanos() as u64;
                        self.hardened.inc();
                        self.hardening_ns.add(hardening);
                        if completion.trace.is_sampled() {
                            let end = obs::now_ns();
                            obs::record_span(
                                completion.trace,
                                "shard.harden",
                                self.shard,
                                end.saturating_sub(hardening),
                                end,
                                "ok",
                            );
                        }
                        if quorum_ok {
                            self.park_prepared(global, value, *prepared)
                        } else {
                            // Same rule as the synchronous vote path: an
                            // unreplicated prepare aborts rather than
                            // promising a commit the backups cannot honor.
                            // Commit acks (Reply) proceed degraded.
                            prepared.abort();
                            Err(CcError::Internal(
                                "prepare not quorum-replicated within the ack timeout".to_string(),
                            ))
                        }
                    }
                    CompletionKind::Reply(response) => Ok(response),
                };
                (completion.reply)(result);
            }
            self.finish_inflight(slots);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_core::DbConfig;
    use tebaldi_storage::codec::{ByteReader, ByteWriter};
    use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);
    const BUMP: ProcId = ProcId(1);
    const PUT5: ProcId = ProcId(2);
    const GET: ProcId = ProcId(3);

    fn registry() -> Arc<ProcRegistry> {
        let mut reg = ProcRegistry::new();
        // bump(key_id): increment field 0 by 1.
        reg.register_fn(BUMP, |txn, args| {
            let mut r = ByteReader::new(args);
            let id = r.u64().map_err(|e| CcError::Internal(e.to_string()))?;
            txn.increment(Key::simple(TABLE, id), 0, 1).map(Value::Int)
        });
        // put5(key_id): write Int(5).
        reg.register_fn(PUT5, |txn, args| {
            let mut r = ByteReader::new(args);
            let id = r.u64().map_err(|e| CcError::Internal(e.to_string()))?;
            txn.put(Key::simple(TABLE, id), Value::Int(5))
                .map(|()| Value::Null)
        });
        // get(key_id): read-only.
        reg.register_fn(GET, |txn, args| {
            let mut r = ByteReader::new(args);
            let id = r.u64().map_err(|e| CcError::Internal(e.to_string()))?;
            Ok(txn.get(Key::simple(TABLE, id))?.unwrap_or(Value::Null))
        });
        Arc::new(reg)
    }

    fn args(id: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(id);
        w.into_bytes()
    }

    fn db_with_config(config: DbConfig) -> Arc<Database> {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        Arc::new(
            Database::builder(config)
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .build()
                .unwrap(),
        )
    }

    fn db() -> Arc<Database> {
        db_with_config(DbConfig::for_tests())
    }

    #[test]
    fn mailbox_executes_data_requests() {
        let pool = ShardWorkers::spawn(0, db(), 2, registry());
        pool.db().load(Key::simple(TABLE, 1), Value::Int(0));
        let tickets: Vec<_> = (0..32)
            .map(|_| {
                let (tx, ticket) = Ticket::pending();
                pool.submit_request(
                    ShardRequest::Execute {
                        proc: BUMP,
                        call: ProcedureCall::new(TY),
                        args: args(1),
                        max_attempts: 20,
                        trace: TraceCtx::NONE,
                    },
                    Box::new(move |result| {
                        let _ = tx.send(result);
                    }),
                );
                ticket
            })
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap().unwrap();
        }
        let sum = pool
            .db()
            .execute(&ProcedureCall::new(TY), |txn| {
                txn.get(Key::simple(TABLE, 1))
            })
            .unwrap();
        assert_eq!(sum, Some(Value::Int(32)));
        let stats = pool.pipeline_stats();
        assert_eq!(stats.queued, 32);
        assert!(stats.max_depth >= 1 && stats.max_depth <= 2);
        pool.shutdown();
    }

    #[test]
    fn prepare_then_decide_roundtrip() {
        let pool = ShardWorkers::spawn(0, db(), 1, registry());
        let (value, vote, vote_hlc) = pool
            .prepare_now(7, PUT5, &ProcedureCall::new(TY), &args(9))
            .unwrap()
            .into_prepared()
            .unwrap();
        assert!(vote_hlc > 0, "a read-write vote carries its vote clock");
        assert_eq!(value, Value::Null);
        assert_eq!(vote, Vote::ReadWrite);
        assert_eq!(pool.in_doubt_count(), 1);
        pool.decide(7, true);
        assert_eq!(pool.in_doubt_count(), 0);
        let read = pool
            .db()
            .execute(&ProcedureCall::new(TY), |txn| {
                txn.get(Key::simple(TABLE, 9))
            })
            .unwrap();
        assert_eq!(read, Some(Value::Int(5)));
        pool.shutdown();
    }

    #[test]
    fn replayed_decisions_are_absorbed_idempotently() {
        let pool = ShardWorkers::spawn(0, db(), 1, registry());
        pool.prepare_now(7, PUT5, &ProcedureCall::new(TY), &args(9))
            .unwrap()
            .into_prepared()
            .unwrap();
        pool.decide(7, true);
        // A duplicated Commit frame and a contradictory Abort replay are
        // both absorbed: the committed write stays and no orphan tombstone
        // is planted.
        pool.decide(7, true);
        pool.decide(7, false);
        let metrics = Arc::clone(pool.db().metrics());
        assert_eq!(metrics.counter("decisions.duplicate").get(), 1);
        assert_eq!(metrics.counter("decisions.conflict").get(), 1);
        let read = pool
            .db()
            .execute(&ProcedureCall::new(TY), |txn| {
                txn.get(Key::simple(TABLE, 9))
            })
            .unwrap();
        assert_eq!(read, Some(Value::Int(5)));
        // The replayed Abort planted no orphan: a prepare reusing the id
        // parks normally instead of being killed on arrival.
        pool.prepare_now(7, PUT5, &ProcedureCall::new(TY), &args(10))
            .unwrap()
            .into_prepared()
            .unwrap();
        assert_eq!(pool.in_doubt_count(), 1);
        pool.shutdown();
    }

    #[test]
    fn pipelined_prepares_overlap_and_harden_before_acking() {
        // Sync durability on a flush device with real latency: the only way
        // many prepares finish fast is the pipeline (append now, one
        // coalesced flush per completion batch).
        let mut config = DbConfig::for_tests();
        config.durability = tebaldi_core::DurabilityMode::Synchronous;
        let device: Arc<dyn tebaldi_storage::wal::LogDevice> = Arc::new(
            tebaldi_storage::wal::MemLogDevice::with_flush_latency(Duration::from_millis(2)),
        );
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        let db = Arc::new(
            Database::builder(config)
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .log_device(Arc::clone(&device))
                .build()
                .unwrap(),
        );
        let pool = ShardWorkers::spawn_with_window(0, db, 1, registry(), 16);
        assert!(pool.pipelined());
        let n = 8u64;
        let tickets: Vec<_> = (0..n)
            .map(|i| {
                let (tx, ticket) = Ticket::pending();
                pool.submit_request(
                    ShardRequest::Prepare {
                        global: 100 + i,
                        proc: PUT5,
                        call: ProcedureCall::new(TY),
                        args: args(1000 + i),
                        trace: TraceCtx::NONE,
                    },
                    Box::new(move |result| {
                        let _ = tx.send(result);
                    }),
                );
                ticket
            })
            .collect();
        for ticket in tickets {
            let (_, vote, _) = ticket.wait().unwrap().unwrap().into_prepared().unwrap();
            assert_eq!(vote, Vote::ReadWrite);
        }
        assert_eq!(pool.in_doubt_count(), n as usize);
        // The yes-votes were only acknowledged once their records were
        // durable: every prepare record is already on the device.
        let prepares = device
            .read_back()
            .iter()
            .filter(|r| matches!(r, tebaldi_storage::wal::LogRecord::Prepare { .. }))
            .count();
        assert_eq!(prepares, n as usize);
        let stats = pool.pipeline_stats();
        assert_eq!(stats.hardened, n, "every prepare went through the pipeline");
        assert!(
            stats.max_depth > 1,
            "a single worker must overlap in-flight prepares, depth={}",
            stats.max_depth
        );
        for i in 0..n {
            pool.decide(100 + i, true);
        }
        assert_eq!(pool.in_doubt_count(), 0);
        pool.shutdown();
    }

    #[test]
    fn read_only_ack_waits_for_deferred_commits_it_may_have_read() {
        // A deferred commit publishes before its flush; a read-only
        // request scheduled right after it reads the new value. Its
        // acknowledgement must not beat the writer's commit record to
        // durability — or a crash could lose data an acknowledged read
        // already reflected.
        let mut config = DbConfig::for_tests();
        config.durability = tebaldi_core::DurabilityMode::Synchronous;
        let device: Arc<dyn tebaldi_storage::wal::LogDevice> = Arc::new(
            tebaldi_storage::wal::MemLogDevice::with_flush_latency(Duration::from_millis(20)),
        );
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        let db = Arc::new(
            Database::builder(config)
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .log_device(Arc::clone(&device))
                .build()
                .unwrap(),
        );
        db.load(Key::simple(TABLE, 1), Value::Int(0));
        let pool = ShardWorkers::spawn_with_window(0, db, 1, registry(), 16);
        let submit = |proc: ProcId| {
            let (tx, ticket) = Ticket::pending();
            pool.submit_request(
                ShardRequest::Execute {
                    proc,
                    call: ProcedureCall::new(TY),
                    args: args(1),
                    max_attempts: 10,
                    trace: TraceCtx::NONE,
                },
                Box::new(move |result| {
                    let _ = tx.send(result);
                }),
            );
            ticket
        };
        let write_ticket = submit(BUMP);
        let read_ticket = submit(GET);
        let (value, _) = read_ticket
            .wait()
            .unwrap()
            .unwrap()
            .into_executed()
            .unwrap();
        assert_eq!(value, Value::Int(1), "the read saw the published write");
        // The read was acknowledged: the write's commit record must
        // already be durable (read_back returns only flushed records).
        assert!(
            device
                .read_back()
                .iter()
                .any(|r| matches!(r, tebaldi_storage::wal::LogRecord::Commit { .. })),
            "read-only ack must wait out the read barrier"
        );
        write_ticket.wait().unwrap().unwrap();
        pool.shutdown();
    }

    #[test]
    fn window_bounds_inflight_bodies() {
        let pool = ShardWorkers::spawn_with_window(0, db(), 2, registry(), 4);
        pool.db().load(Key::simple(TABLE, 1), Value::Int(0));
        let tickets: Vec<_> = (0..64)
            .map(|_| {
                let (tx, ticket) = Ticket::pending();
                pool.submit_request(
                    ShardRequest::Execute {
                        proc: BUMP,
                        call: ProcedureCall::new(TY),
                        args: args(1),
                        max_attempts: 20,
                        trace: TraceCtx::NONE,
                    },
                    Box::new(move |result| {
                        let _ = tx.send(result);
                    }),
                );
                ticket
            })
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap().unwrap();
        }
        assert!(
            pool.pipeline_stats().max_depth <= 4,
            "admission must respect the in-flight window"
        );
        pool.shutdown();
    }

    #[test]
    fn unknown_procedure_is_a_clean_error() {
        let pool = ShardWorkers::spawn(0, db(), 1, registry());
        let err = pool
            .execute_now(ProcId(999), &ProcedureCall::new(TY), &[], 1)
            .unwrap_err();
        assert!(matches!(err, CcError::Internal(_)));
        pool.shutdown();
    }

    #[test]
    fn stats_and_flush_admin_requests() {
        let pool = ShardWorkers::spawn(0, db(), 1, registry());
        pool.db().load(Key::simple(TABLE, 1), Value::Int(0));
        pool.execute_now(BUMP, &ProcedureCall::new(TY), &args(1), 5)
            .unwrap();
        match pool.handle_inline(ShardRequest::Stats).unwrap() {
            ShardResponse::Stats(stats) => {
                assert_eq!(stats.committed, 1);
                assert_eq!(stats.in_doubt, 0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(
            pool.handle_inline(ShardRequest::Flush).unwrap(),
            ShardResponse::Flushed
        );
        pool.shutdown();
    }
}
