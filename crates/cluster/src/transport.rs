//! Pluggable shard transports.
//!
//! The cluster never talks to a shard directly: every operation is a
//! [`ShardRequest`] handed to a [`ShardTransport`]. Two implementations
//! ship:
//!
//! * [`InProcessTransport`] — the zero-copy fast path over the shard
//!   worker mailboxes. `Execute` calls run inline on the calling thread
//!   (exactly the pre-transport behavior of `Cluster::execute_single`),
//!   decisions apply inline, asynchronous submissions go through the
//!   batched mailbox. Nothing is serialized, so `messages_sent` and
//!   `bytes_on_wire` stay zero.
//! * [`crate::tcp::TcpTransport`] — length-prefixed frames over
//!   loopback/network sockets, one multiplexed connection per shard, with
//!   a per-shard server loop (`crate::tcp::TcpShardServer`) in front of
//!   the same worker pools.
//!
//! Everything above the trait — `Cluster::execute_multi`, the 2PC
//! coordinator, both cluster workloads — is transport-agnostic.

use crate::api::{ShardRequest, ShardResult};
use crate::worker::{ShardWorkers, Ticket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tebaldi_cc::{CcError, CcResult};

/// Which transport a [`crate::ClusterConfig`] selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Shard worker mailboxes in the coordinator's address space.
    InProcess,
    /// Length-prefixed frames over TCP loopback sockets, one server loop
    /// per shard.
    Tcp,
}

/// Wire-traffic counters. The in-process transport reports zeros; the TCP
/// transport counts every framed message and the bytes in both directions,
/// so the transport cost of 2PC is regression-trackable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Request messages sent to shards.
    pub messages_sent: u64,
    /// Frame bytes moved in either direction (requests + replies).
    pub bytes_on_wire: u64,
    /// Successful re-dials after a lost connection (zero for in-process;
    /// a nonzero value means the cluster survived connection churn).
    pub reconnects: u64,
}

/// A connection to the cluster's shards.
pub trait ShardTransport: Send + Sync {
    /// Number of reachable shards.
    fn shard_count(&self) -> usize;

    /// Sends `request` to `shard` and returns a ticket for the reply.
    /// Body-running requests execute asynchronously; decisions and admin
    /// ops may resolve synchronously (the returned ticket is then already
    /// ready).
    fn submit(&self, shard: usize, request: ShardRequest) -> Ticket<ShardResult>;

    /// Synchronous request/reply. Transports may execute inline on the
    /// calling thread (the in-process fast path does, for `Execute`).
    fn call(&self, shard: usize, request: ShardRequest) -> ShardResult {
        match self.submit(shard, request).wait() {
            Ok(result) => result,
            Err(err) => Err(err),
        }
    }

    /// Whether [`ShardTransport::call`] runs the request inline on the
    /// calling thread (no mailbox hop, cannot stall on a lost reply).
    /// Latency-sensitive lock-free paths — snapshot reads — use this to
    /// skip the ticket machinery; the default is conservative because the
    /// generic `call` waits unboundedly on a submitted ticket, which a
    /// fault-injecting or wire transport may never resolve.
    fn call_is_inline(&self) -> bool {
        false
    }

    /// Wire-traffic counters (zeros for in-process).
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Whether [`ShardTransport::repoint`] can succeed — checked before a
    /// failover stops the old primary, so an unsupporting transport fails
    /// the promotion closed instead of half-way.
    fn supports_repoint(&self) -> bool {
        false
    }

    /// Redirects `shard`'s traffic to a new endpoint (failover installing
    /// a promoted backup). Returns `false` when the transport cannot
    /// repoint — the in-process transport holds direct worker handles, so
    /// only addressed transports (TCP) support promotion.
    fn repoint(&self, _shard: usize, _addr: std::net::SocketAddr) -> bool {
        false
    }

    /// Tears the transport down (closes sockets, joins I/O threads).
    /// Idempotent; called before the shard worker pools stop.
    fn shutdown(&self) {}
}

/// Builds a transport over already-spawned shard worker pools. The
/// [`crate::ClusterBuilder`] applies this after it has created the shards;
/// tests inject custom factories to wrap or replace the default transports
/// (e.g. to delay decision acks).
pub type TransportFactory =
    Box<dyn FnOnce(&[Arc<ShardWorkers>]) -> Result<Arc<dyn ShardTransport>, String>>;

/// The in-process transport: requests are enum values handed straight to
/// the shard worker pools, no serialization.
pub struct InProcessTransport {
    shards: Vec<Arc<ShardWorkers>>,
    /// Requests delivered (not serialized, so no bytes are counted; kept
    /// internally for debugging, reported as zero wire messages).
    delivered: AtomicU64,
}

impl InProcessTransport {
    /// Wraps the given worker pools.
    pub fn new(shards: Vec<Arc<ShardWorkers>>) -> Self {
        InProcessTransport {
            shards,
            delivered: AtomicU64::new(0),
        }
    }

    /// Requests delivered so far (diagnostics; not a wire-traffic number).
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    fn shard(&self, shard: usize) -> CcResult<&Arc<ShardWorkers>> {
        self.shards.get(shard).ok_or_else(|| {
            CcError::Internal(format!(
                "request targets shard {shard}, but the transport reaches {}",
                self.shards.len()
            ))
        })
    }
}

impl ShardTransport for InProcessTransport {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn submit(&self, shard: usize, request: ShardRequest) -> Ticket<ShardResult> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        let workers = match self.shard(shard) {
            Ok(workers) => workers,
            Err(err) => return Ticket::ready(Err(err)),
        };
        if request.runs_body() {
            let (tx, ticket) = Ticket::pending();
            workers.submit_request(
                request,
                Box::new(move |result| {
                    let _ = tx.send(result);
                }),
            );
            ticket
        } else {
            // Decisions and admin ops apply inline on the calling thread:
            // queuing a decision behind mailbox work would stretch the
            // prepared-lock window.
            Ticket::ready(workers.handle_inline(request))
        }
    }

    fn call(&self, shard: usize, request: ShardRequest) -> ShardResult {
        // Zero-copy fast path: run the request inline on the calling
        // thread (single-shard executions bypass the mailbox hop exactly
        // as they did before the transport existed).
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.shard(shard)?.handle_inline(request)
    }

    fn call_is_inline(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ShardResponse;
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_core::{Database, DbConfig, ProcId, ProcRegistry, ProcedureCall};
    use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);
    const BUMP: ProcId = ProcId(1);

    fn pool() -> Arc<ShardWorkers> {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        let db = Arc::new(
            Database::builder(DbConfig::for_tests())
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .build()
                .unwrap(),
        );
        db.load(Key::simple(TABLE, 1), Value::Int(0));
        let mut reg = ProcRegistry::new();
        reg.register_fn(BUMP, |txn, _args| {
            txn.increment(Key::simple(TABLE, 1), 0, 1).map(Value::Int)
        });
        ShardWorkers::spawn(0, db, 2, Arc::new(reg))
    }

    #[test]
    fn in_process_calls_and_submits() {
        let workers = pool();
        let transport = InProcessTransport::new(vec![Arc::clone(&workers)]);
        let execute = || ShardRequest::Execute {
            proc: BUMP,
            call: ProcedureCall::new(TY),
            args: Vec::new(),
            max_attempts: 10,
            trace: tebaldi_obs::TraceCtx::NONE,
        };
        // Inline call.
        let (value, _) = transport
            .call(0, execute())
            .unwrap()
            .into_executed()
            .unwrap();
        assert_eq!(value, Value::Int(1));
        // Mailbox submission.
        let ticket = transport.submit(0, execute());
        let (value, _) = ticket.wait().unwrap().unwrap().into_executed().unwrap();
        assert_eq!(value, Value::Int(2));
        // Admin ops resolve synchronously.
        let ticket = transport.submit(0, ShardRequest::Stats);
        assert!(matches!(
            ticket.wait().unwrap().unwrap(),
            ShardResponse::Stats(_)
        ));
        // Out-of-range shard is a clean error.
        assert!(transport.call(9, ShardRequest::Stats).is_err());
        assert_eq!(transport.stats(), TransportStats::default());
        workers.shutdown();
    }
}
