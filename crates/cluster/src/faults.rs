//! Deterministic, seed-driven fault injection for any [`ShardTransport`].
//!
//! [`FaultyTransport`] wraps an inner transport and injects per-shard
//! drop, delay (which reorders messages relative to their peers),
//! duplication, and full-partition faults from a reproducible schedule: a
//! [`FaultPlan`] seeds one RNG lane per shard, so a fixed seed and a
//! deterministic submission order replay the exact same fault sequence —
//! the property the chaos suite builds on (a failing seed is a
//! reproducible bug report).
//!
//! The faults are chosen to stay inside the failure model the 2PC
//! machinery claims to survive:
//!
//! * **Dropped request** — the frame never reaches the shard. Surfaces as
//!   [`CcError::Unreachable`] with `maybe_delivered = false`, exactly what
//!   the TCP transport reports for a failed send.
//! * **Dropped reply** — the shard processes the request but the answer is
//!   lost (`maybe_delivered = true`). For a prepare this means a shard may
//!   hold a prepared transaction the coordinator counts as a "no" vote;
//!   for a decision it means the decision applied but was never
//!   acknowledged.
//! * **Delay** — the request is held for a bounded interval before being
//!   forwarded, reordering it against every message submitted meanwhile.
//! * **Duplicated decision** — a Commit/Abort frame is delivered twice
//!   (network retransmission), exercising shard-side decision idempotency.
//!   Only decisions are duplicated: duplicating a body-running request
//!   would genuinely run it twice, which no transport layer can make safe.
//! * **Partition** — a window of consecutive messages to one shard is
//!   dropped wholesale, as if the link went away and came back.
//!
//! Admin requests (`Stats`, `Metrics`, `Flush`) pass through untouched so
//! tests can always observe the cluster they are torturing.
//!
//! Every injected fault increments a `transport.faults.*` counter in the
//! metrics registry the transport was built with.

use crate::api::{ShardRequest, ShardResult};
use crate::transport::{ShardTransport, TransportStats};
use crate::worker::Ticket;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use tebaldi_cc::CcError;
use tebaldi_obs::{Counter, MetricsRegistry};

/// A reproducible fault schedule. All probabilities are per message in
/// `[0, 1]`; `0` disables that fault class.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seeds the per-shard RNG lanes (lane `s` uses `seed + s`).
    pub seed: u64,
    /// Probability a request frame is dropped before reaching the shard.
    pub drop_request: f64,
    /// Probability the shard's reply is dropped after it processed the
    /// request.
    pub drop_reply: f64,
    /// Probability a request is held for a random interval before being
    /// forwarded (reordering it against concurrent messages).
    pub delay: f64,
    /// Inclusive bounds, in milliseconds, of the injected delay.
    pub delay_ms: (u64, u64),
    /// Probability a decision frame (Commit/Abort) is delivered twice.
    pub duplicate_decision: f64,
    /// Probability a full-partition window opens at a message boundary.
    pub partition: f64,
    /// Inclusive bounds on how many consecutive messages one partition
    /// window swallows.
    pub partition_len: (u64, u64),
    /// Probability one shipped log batch on a primary→replica link is
    /// dropped (the shipper retries from the replica's acknowledged LSN, so
    /// a drop costs latency — replica lag — never divergence).
    pub drop_log_frame: f64,
    /// Probability a shipped log batch is held before the send.
    pub delay_log: f64,
    /// Inclusive bounds, in milliseconds, of the injected log delay.
    pub delay_log_ms: (u64, u64),
    /// Probability a replica-link partition window opens at a batch
    /// boundary: a run of consecutive ship attempts is swallowed, as if the
    /// log stream's link went away and came back.
    pub partition_log: f64,
    /// Inclusive bounds on how many consecutive ship attempts one
    /// replica-link partition window swallows.
    pub partition_log_len: (u64, u64),
}

impl FaultPlan {
    /// A plan that injects nothing (wiring tests).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.0,
            drop_reply: 0.0,
            delay: 0.0,
            delay_ms: (0, 0),
            duplicate_decision: 0.0,
            partition: 0.0,
            partition_len: (0, 0),
            drop_log_frame: 0.0,
            delay_log: 0.0,
            delay_log_ms: (0, 0),
            partition_log: 0.0,
            partition_log_len: (0, 0),
        }
    }

    /// The chaos-suite default: every fault class armed at rates high
    /// enough that a few hundred transactions hit each one, with delays
    /// short enough to stay under the coordinator's prepare timeout.
    pub fn hostile(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.05,
            drop_reply: 0.05,
            delay: 0.10,
            delay_ms: (1, 10),
            duplicate_decision: 0.20,
            partition: 0.01,
            partition_len: (2, 8),
            drop_log_frame: 0.10,
            delay_log: 0.15,
            delay_log_ms: (1, 5),
            partition_log: 0.02,
            partition_log_len: (2, 6),
        }
    }

    /// Builds the deterministic fault lane for one primary→replica log
    /// stream. The lane seed mixes the shard and replica indices into the
    /// plan seed on a different stride than the transport lanes
    /// (`seed + shard`), so the log stream's fault sequence is independent
    /// of the request traffic while staying replayable from the same seed.
    pub fn replica_lane(&self, shard: usize, replica: usize) -> ReplicaLinkLane {
        let salt = 0x5265_706c_6963_6173u64 // "Replicas"
            .wrapping_add((shard as u64) << 8)
            .wrapping_add(replica as u64);
        ReplicaLinkLane {
            plan: self.clone(),
            rng: StdRng::seed_from_u64(self.seed.wrapping_add(salt)),
            partition_remaining: 0,
        }
    }
}

/// What a replica-link lane decided for one shipped log batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogLinkVerdict {
    /// Ship the batch now.
    Deliver,
    /// Hold the batch for the given interval, then ship it.
    Delay(Duration),
    /// Swallow this ship attempt (lost frame). The shipper retries from
    /// the replica's acknowledged LSN, so the cost is lag, not divergence.
    Drop,
    /// Swallow this attempt as part of an open partition window.
    Partitioned,
}

/// The deterministic fault lane of one primary→replica log stream: the
/// replica-link half of a [`FaultPlan`]. Owned by the shipper thread, so no
/// locking — the per-link fault sequence replays from the plan seed alone.
pub struct ReplicaLinkLane {
    plan: FaultPlan,
    rng: StdRng,
    /// Ship attempts the currently open partition window still swallows.
    partition_remaining: u64,
}

impl ReplicaLinkLane {
    /// Draws the fate of the next shipped log batch.
    pub fn judge(&mut self) -> LogLinkVerdict {
        if self.partition_remaining > 0 {
            self.partition_remaining -= 1;
            return LogLinkVerdict::Partitioned;
        }
        if self.plan.partition_log > 0.0 && self.rng.gen_bool(self.plan.partition_log) {
            let (lo, hi) = self.plan.partition_log_len;
            let window = self.rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
            self.partition_remaining = window.saturating_sub(1);
            return LogLinkVerdict::Partitioned;
        }
        if self.plan.drop_log_frame > 0.0 && self.rng.gen_bool(self.plan.drop_log_frame) {
            return LogLinkVerdict::Drop;
        }
        if self.plan.delay_log > 0.0 && self.rng.gen_bool(self.plan.delay_log) {
            let (lo, hi) = self.plan.delay_log_ms;
            return LogLinkVerdict::Delay(Duration::from_millis(
                self.rng.gen_range(lo..=hi.max(lo)),
            ));
        }
        LogLinkVerdict::Deliver
    }
}

/// One shard's fault lane: its RNG plus the partition state machine.
struct Lane {
    rng: StdRng,
    /// Messages the currently open partition window still swallows.
    partition_remaining: u64,
}

/// What the lane decided for one message.
struct Verdict {
    drop_request: bool,
    partitioned: bool,
    drop_reply: bool,
    duplicate: bool,
    delay: Option<Duration>,
}

/// A [`ShardTransport`] decorator injecting faults per [`FaultPlan`].
pub struct FaultyTransport {
    inner: Arc<dyn ShardTransport>,
    plan: FaultPlan,
    lanes: Vec<Mutex<Lane>>,
    dropped_requests: Arc<Counter>,
    dropped_replies: Arc<Counter>,
    delayed: Arc<Counter>,
    duplicated: Arc<Counter>,
    partitioned: Arc<Counter>,
}

impl FaultyTransport {
    /// Wraps `inner`, drawing fault decisions from `plan` and counting
    /// every injection under `transport.faults.*` in `metrics`.
    pub fn new(
        inner: Arc<dyn ShardTransport>,
        plan: FaultPlan,
        metrics: &MetricsRegistry,
    ) -> FaultyTransport {
        let lanes = (0..inner.shard_count())
            .map(|shard| {
                Mutex::new(Lane {
                    rng: StdRng::seed_from_u64(plan.seed.wrapping_add(shard as u64)),
                    partition_remaining: 0,
                })
            })
            .collect();
        FaultyTransport {
            inner,
            plan,
            lanes,
            dropped_requests: metrics.counter("transport.faults.dropped_requests"),
            dropped_replies: metrics.counter("transport.faults.dropped_replies"),
            delayed: metrics.counter("transport.faults.delayed"),
            duplicated: metrics.counter("transport.faults.duplicated"),
            partitioned: metrics.counter("transport.faults.partitioned"),
        }
    }

    /// Draws this message's fate from its shard lane. One lane lock per
    /// message keeps the per-shard fault sequence deterministic for a
    /// deterministic submission order.
    fn judge(&self, shard: usize, decision: bool) -> Verdict {
        let plan = &self.plan;
        let mut lane = self.lanes[shard].lock();
        // The partition state machine first: an open window swallows the
        // message outright, and a closed one may open here.
        if lane.partition_remaining > 0 {
            lane.partition_remaining -= 1;
            return Verdict {
                drop_request: true,
                partitioned: true,
                drop_reply: false,
                duplicate: false,
                delay: None,
            };
        }
        if plan.partition > 0.0 && lane.rng.gen_bool(plan.partition) {
            let (lo, hi) = plan.partition_len;
            let window = lane.rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
            // This message is the window's first casualty.
            lane.partition_remaining = window.saturating_sub(1);
            return Verdict {
                drop_request: true,
                partitioned: true,
                drop_reply: false,
                duplicate: false,
                delay: None,
            };
        }
        let drop_request = plan.drop_request > 0.0 && lane.rng.gen_bool(plan.drop_request);
        let drop_reply =
            !drop_request && plan.drop_reply > 0.0 && lane.rng.gen_bool(plan.drop_reply);
        let duplicate =
            decision && plan.duplicate_decision > 0.0 && lane.rng.gen_bool(plan.duplicate_decision);
        let delay = (plan.delay > 0.0 && lane.rng.gen_bool(plan.delay)).then(|| {
            let (lo, hi) = plan.delay_ms;
            Duration::from_millis(lane.rng.gen_range(lo..=hi.max(lo)))
        });
        Verdict {
            drop_request,
            partitioned: false,
            drop_reply,
            duplicate,
            delay,
        }
    }
}

/// The error a victim of request loss observes: identical to what the TCP
/// transport reports for a failed send.
fn never_delivered(shard: usize) -> Ticket<ShardResult> {
    Ticket::ready(Err(CcError::unreachable(
        format!("shard {shard} (injected fault)"),
        false,
    )))
}

impl ShardTransport for FaultyTransport {
    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn supports_repoint(&self) -> bool {
        self.inner.supports_repoint()
    }

    fn repoint(&self, shard: usize, addr: std::net::SocketAddr) -> bool {
        // Failover control traffic, like admin ops, is exempt from faults.
        self.inner.repoint(shard, addr)
    }

    fn submit(&self, shard: usize, request: ShardRequest) -> Ticket<ShardResult> {
        let decision = request.is_decision();
        if !decision && !request.runs_body() {
            // Admin traffic is exempt: observability of the cluster under
            // torture must stay reliable.
            return self.inner.submit(shard, request);
        }
        if shard >= self.lanes.len() {
            return self.inner.submit(shard, request);
        }
        let verdict = self.judge(shard, decision);
        if verdict.drop_request {
            if verdict.partitioned {
                self.partitioned.inc();
            } else {
                self.dropped_requests.inc();
            }
            return never_delivered(shard);
        }
        if verdict.duplicate {
            // Deliver the decision twice, keeping only the first reply —
            // a retransmission. Safe only because decisions are idempotent
            // shard-side (which is exactly what this fault proves).
            self.duplicated.inc();
            let _ = self.inner.submit(shard, request.clone());
        }
        match verdict.delay {
            None => {
                if verdict.drop_reply {
                    self.dropped_replies.inc();
                    // The shard processes the request; its answer is lost.
                    // A reaper thread consumes the real reply so windowed
                    // transports get their in-flight slot back.
                    let inner_ticket = self.inner.submit(shard, request);
                    std::thread::spawn(move || {
                        let _ = inner_ticket.wait();
                    });
                    Ticket::ready(Err(CcError::unreachable(
                        format!("shard {shard} (reply dropped)"),
                        true,
                    )))
                } else {
                    self.inner.submit(shard, request)
                }
            }
            Some(delay) => {
                self.delayed.inc();
                let inner = Arc::clone(&self.inner);
                let drop_reply = verdict.drop_reply;
                if drop_reply {
                    self.dropped_replies.inc();
                }
                let (tx, ticket) = Ticket::pending();
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    let result = inner.call(shard, request);
                    let reply = if drop_reply {
                        Err(CcError::unreachable(
                            format!("shard {shard} (reply dropped)"),
                            true,
                        ))
                    } else {
                        result
                    };
                    let _ = tx.send(reply);
                });
                ticket
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing_and_hostile_plan_replays() {
        // Pure lane-math test: identical seeds draw identical verdicts.
        let plan = FaultPlan::hostile(42);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| rng.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(plan.seed), draw(plan.seed));
        assert_ne!(draw(plan.seed), draw(plan.seed + 1));
        let quiet = FaultPlan::quiet(7);
        assert_eq!(quiet.drop_request, 0.0);
        assert_eq!(quiet.partition, 0.0);
        assert_eq!(quiet.drop_log_frame, 0.0);
        assert_eq!(quiet.partition_log, 0.0);
    }

    #[test]
    fn replica_lanes_replay_and_stay_independent() {
        let plan = FaultPlan::hostile(42);
        let draw = |shard: usize, replica: usize| {
            let mut lane = plan.replica_lane(shard, replica);
            (0..256).map(|_| lane.judge()).collect::<Vec<_>>()
        };
        // Same link → same schedule; different links → different schedules.
        assert_eq!(draw(0, 0), draw(0, 0));
        assert_ne!(draw(0, 0), draw(0, 1));
        assert_ne!(draw(0, 0), draw(1, 0));
        // Hostile rates actually fire every verdict class over 256 draws.
        let verdicts = draw(2, 0);
        assert!(verdicts.iter().any(|v| matches!(v, LogLinkVerdict::Drop)));
        assert!(verdicts
            .iter()
            .any(|v| matches!(v, LogLinkVerdict::Delay(_))));
        assert!(verdicts
            .iter()
            .any(|v| matches!(v, LogLinkVerdict::Partitioned)));
        // A quiet lane delivers everything.
        let mut quiet = FaultPlan::quiet(7).replica_lane(0, 0);
        assert!((0..64).all(|_| quiet.judge() == LogLinkVerdict::Deliver));
    }
}
