//! Deterministic, seed-driven fault injection for any [`ShardTransport`].
//!
//! [`FaultyTransport`] wraps an inner transport and injects per-shard
//! drop, delay (which reorders messages relative to their peers),
//! duplication, and full-partition faults from a reproducible schedule: a
//! [`FaultPlan`] seeds one RNG lane per shard, so a fixed seed and a
//! deterministic submission order replay the exact same fault sequence —
//! the property the chaos suite builds on (a failing seed is a
//! reproducible bug report).
//!
//! The faults are chosen to stay inside the failure model the 2PC
//! machinery claims to survive:
//!
//! * **Dropped request** — the frame never reaches the shard. Surfaces as
//!   [`CcError::Unreachable`] with `maybe_delivered = false`, exactly what
//!   the TCP transport reports for a failed send.
//! * **Dropped reply** — the shard processes the request but the answer is
//!   lost (`maybe_delivered = true`). For a prepare this means a shard may
//!   hold a prepared transaction the coordinator counts as a "no" vote;
//!   for a decision it means the decision applied but was never
//!   acknowledged.
//! * **Delay** — the request is held for a bounded interval before being
//!   forwarded, reordering it against every message submitted meanwhile.
//! * **Duplicated decision** — a Commit/Abort frame is delivered twice
//!   (network retransmission), exercising shard-side decision idempotency.
//!   Only decisions are duplicated: duplicating a body-running request
//!   would genuinely run it twice, which no transport layer can make safe.
//! * **Partition** — a window of consecutive messages to one shard is
//!   dropped wholesale, as if the link went away and came back.
//!
//! Admin requests (`Stats`, `Metrics`, `Flush`) pass through untouched so
//! tests can always observe the cluster they are torturing.
//!
//! Every injected fault increments a `transport.faults.*` counter in the
//! metrics registry the transport was built with.

use crate::api::{ShardRequest, ShardResult};
use crate::transport::{ShardTransport, TransportStats};
use crate::worker::Ticket;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use tebaldi_cc::CcError;
use tebaldi_obs::{Counter, MetricsRegistry};

/// A reproducible fault schedule. All probabilities are per message in
/// `[0, 1]`; `0` disables that fault class.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seeds the per-shard RNG lanes (lane `s` uses `seed + s`).
    pub seed: u64,
    /// Probability a request frame is dropped before reaching the shard.
    pub drop_request: f64,
    /// Probability the shard's reply is dropped after it processed the
    /// request.
    pub drop_reply: f64,
    /// Probability a request is held for a random interval before being
    /// forwarded (reordering it against concurrent messages).
    pub delay: f64,
    /// Inclusive bounds, in milliseconds, of the injected delay.
    pub delay_ms: (u64, u64),
    /// Probability a decision frame (Commit/Abort) is delivered twice.
    pub duplicate_decision: f64,
    /// Probability a full-partition window opens at a message boundary.
    pub partition: f64,
    /// Inclusive bounds on how many consecutive messages one partition
    /// window swallows.
    pub partition_len: (u64, u64),
}

impl FaultPlan {
    /// A plan that injects nothing (wiring tests).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.0,
            drop_reply: 0.0,
            delay: 0.0,
            delay_ms: (0, 0),
            duplicate_decision: 0.0,
            partition: 0.0,
            partition_len: (0, 0),
        }
    }

    /// The chaos-suite default: every fault class armed at rates high
    /// enough that a few hundred transactions hit each one, with delays
    /// short enough to stay under the coordinator's prepare timeout.
    pub fn hostile(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.05,
            drop_reply: 0.05,
            delay: 0.10,
            delay_ms: (1, 10),
            duplicate_decision: 0.20,
            partition: 0.01,
            partition_len: (2, 8),
        }
    }
}

/// One shard's fault lane: its RNG plus the partition state machine.
struct Lane {
    rng: StdRng,
    /// Messages the currently open partition window still swallows.
    partition_remaining: u64,
}

/// What the lane decided for one message.
struct Verdict {
    drop_request: bool,
    partitioned: bool,
    drop_reply: bool,
    duplicate: bool,
    delay: Option<Duration>,
}

/// A [`ShardTransport`] decorator injecting faults per [`FaultPlan`].
pub struct FaultyTransport {
    inner: Arc<dyn ShardTransport>,
    plan: FaultPlan,
    lanes: Vec<Mutex<Lane>>,
    dropped_requests: Arc<Counter>,
    dropped_replies: Arc<Counter>,
    delayed: Arc<Counter>,
    duplicated: Arc<Counter>,
    partitioned: Arc<Counter>,
}

impl FaultyTransport {
    /// Wraps `inner`, drawing fault decisions from `plan` and counting
    /// every injection under `transport.faults.*` in `metrics`.
    pub fn new(
        inner: Arc<dyn ShardTransport>,
        plan: FaultPlan,
        metrics: &MetricsRegistry,
    ) -> FaultyTransport {
        let lanes = (0..inner.shard_count())
            .map(|shard| {
                Mutex::new(Lane {
                    rng: StdRng::seed_from_u64(plan.seed.wrapping_add(shard as u64)),
                    partition_remaining: 0,
                })
            })
            .collect();
        FaultyTransport {
            inner,
            plan,
            lanes,
            dropped_requests: metrics.counter("transport.faults.dropped_requests"),
            dropped_replies: metrics.counter("transport.faults.dropped_replies"),
            delayed: metrics.counter("transport.faults.delayed"),
            duplicated: metrics.counter("transport.faults.duplicated"),
            partitioned: metrics.counter("transport.faults.partitioned"),
        }
    }

    /// Draws this message's fate from its shard lane. One lane lock per
    /// message keeps the per-shard fault sequence deterministic for a
    /// deterministic submission order.
    fn judge(&self, shard: usize, decision: bool) -> Verdict {
        let plan = &self.plan;
        let mut lane = self.lanes[shard].lock();
        // The partition state machine first: an open window swallows the
        // message outright, and a closed one may open here.
        if lane.partition_remaining > 0 {
            lane.partition_remaining -= 1;
            return Verdict {
                drop_request: true,
                partitioned: true,
                drop_reply: false,
                duplicate: false,
                delay: None,
            };
        }
        if plan.partition > 0.0 && lane.rng.gen_bool(plan.partition) {
            let (lo, hi) = plan.partition_len;
            let window = lane.rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
            // This message is the window's first casualty.
            lane.partition_remaining = window.saturating_sub(1);
            return Verdict {
                drop_request: true,
                partitioned: true,
                drop_reply: false,
                duplicate: false,
                delay: None,
            };
        }
        let drop_request = plan.drop_request > 0.0 && lane.rng.gen_bool(plan.drop_request);
        let drop_reply =
            !drop_request && plan.drop_reply > 0.0 && lane.rng.gen_bool(plan.drop_reply);
        let duplicate =
            decision && plan.duplicate_decision > 0.0 && lane.rng.gen_bool(plan.duplicate_decision);
        let delay = (plan.delay > 0.0 && lane.rng.gen_bool(plan.delay)).then(|| {
            let (lo, hi) = plan.delay_ms;
            Duration::from_millis(lane.rng.gen_range(lo..=hi.max(lo)))
        });
        Verdict {
            drop_request,
            partitioned: false,
            drop_reply,
            duplicate,
            delay,
        }
    }
}

/// The error a victim of request loss observes: identical to what the TCP
/// transport reports for a failed send.
fn never_delivered(shard: usize) -> Ticket<ShardResult> {
    Ticket::ready(Err(CcError::unreachable(
        format!("shard {shard} (injected fault)"),
        false,
    )))
}

impl ShardTransport for FaultyTransport {
    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn submit(&self, shard: usize, request: ShardRequest) -> Ticket<ShardResult> {
        let decision = request.is_decision();
        if !decision && !request.runs_body() {
            // Admin traffic is exempt: observability of the cluster under
            // torture must stay reliable.
            return self.inner.submit(shard, request);
        }
        if shard >= self.lanes.len() {
            return self.inner.submit(shard, request);
        }
        let verdict = self.judge(shard, decision);
        if verdict.drop_request {
            if verdict.partitioned {
                self.partitioned.inc();
            } else {
                self.dropped_requests.inc();
            }
            return never_delivered(shard);
        }
        if verdict.duplicate {
            // Deliver the decision twice, keeping only the first reply —
            // a retransmission. Safe only because decisions are idempotent
            // shard-side (which is exactly what this fault proves).
            self.duplicated.inc();
            let _ = self.inner.submit(shard, request.clone());
        }
        match verdict.delay {
            None => {
                if verdict.drop_reply {
                    self.dropped_replies.inc();
                    // The shard processes the request; its answer is lost.
                    // A reaper thread consumes the real reply so windowed
                    // transports get their in-flight slot back.
                    let inner_ticket = self.inner.submit(shard, request);
                    std::thread::spawn(move || {
                        let _ = inner_ticket.wait();
                    });
                    Ticket::ready(Err(CcError::unreachable(
                        format!("shard {shard} (reply dropped)"),
                        true,
                    )))
                } else {
                    self.inner.submit(shard, request)
                }
            }
            Some(delay) => {
                self.delayed.inc();
                let inner = Arc::clone(&self.inner);
                let drop_reply = verdict.drop_reply;
                if drop_reply {
                    self.dropped_replies.inc();
                }
                let (tx, ticket) = Ticket::pending();
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    let result = inner.call(shard, request);
                    let reply = if drop_reply {
                        Err(CcError::unreachable(
                            format!("shard {shard} (reply dropped)"),
                            true,
                        ))
                    } else {
                        result
                    };
                    let _ = tx.send(reply);
                });
                ticket
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing_and_hostile_plan_replays() {
        // Pure lane-math test: identical seeds draw identical verdicts.
        let plan = FaultPlan::hostile(42);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| rng.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(plan.seed), draw(plan.seed));
        assert_ne!(draw(plan.seed), draw(plan.seed + 1));
        let quiet = FaultPlan::quiet(7);
        assert_eq!(quiet.drop_request, 0.0);
        assert_eq!(quiet.partition, 0.0);
    }
}
