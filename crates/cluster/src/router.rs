//! Shard routing: mapping a workload's partition attribute onto shards.
//!
//! Tebaldi's cluster architecture stores partitions on data servers; this
//! reproduction runs each partition as a full [`Database`] shard with its
//! own CC tree. The router maps a *partition key* — whatever attribute the
//! workload partitions by (TPC-C: the warehouse id; SEATS: the flight id)
//! — to a shard, and classifies a transaction's partition-key set as
//! single-shard (fast path: execute directly on that shard's four-phase
//! protocol) or multi-shard (two-phase commit through the coordinator).
//!
//! [`Database`]: tebaldi_core::Database

use serde::{Deserialize, Serialize};

/// How partition keys map to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioning {
    /// Multiplicative hash of the partition key. Spreads skewed key spaces
    /// but destroys locality of adjacent keys.
    Hash,
    /// Contiguous ranges of `span` partition keys per shard, wrapping
    /// modulo the shard count. `span = 1` is plain modulo — the natural
    /// choice for TPC-C warehouses.
    Range {
        /// Number of consecutive partition keys per range block.
        span: u64,
    },
}

/// Whether a transaction touches one shard or several.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Routing {
    /// All partition keys live on a single shard.
    Single(usize),
    /// The distinct shards touched, ascending.
    Multi(Vec<usize>),
}

impl Routing {
    /// True for the single-shard fast path.
    pub fn is_single(&self) -> bool {
        matches!(self, Routing::Single(_))
    }
}

/// Maps partition keys to shards.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    shards: usize,
    partitioning: Partitioning,
}

impl ShardRouter {
    /// A router over `shards` shards with the given partitioning function.
    pub fn new(shards: usize, partitioning: Partitioning) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        ShardRouter {
            shards,
            partitioning,
        }
    }

    /// Hash partitioning.
    pub fn hash(shards: usize) -> Self {
        ShardRouter::new(shards, Partitioning::Hash)
    }

    /// Modulo/range partitioning with `span = 1` (TPC-C by warehouse).
    pub fn modulo(shards: usize) -> Self {
        ShardRouter::new(shards, Partitioning::Range { span: 1 })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `partition_key`.
    pub fn shard_of(&self, partition_key: u64) -> usize {
        match self.partitioning {
            Partitioning::Hash => {
                // Fibonacci hashing: cheap and well distributed.
                let h = partition_key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                (h % self.shards as u64) as usize
            }
            Partitioning::Range { span } => {
                let block = partition_key / span.max(1);
                (block % self.shards as u64) as usize
            }
        }
    }

    /// Classifies the distinct shards touched by `partition_keys`.
    pub fn classify(&self, partition_keys: impl IntoIterator<Item = u64>) -> Routing {
        let mut shards: Vec<usize> = partition_keys
            .into_iter()
            .map(|k| self.shard_of(k))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        match shards.as_slice() {
            [] => Routing::Single(0),
            [one] => Routing::Single(*one),
            _ => Routing::Multi(shards),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_routing_is_stable_and_balanced() {
        let r = ShardRouter::modulo(4);
        for key in 0..64 {
            assert_eq!(r.shard_of(key), (key % 4) as usize);
        }
    }

    #[test]
    fn hash_routing_covers_all_shards() {
        let r = ShardRouter::hash(8);
        let mut seen = [false; 8];
        for key in 0..1_000 {
            seen[r.shard_of(key)] = true;
        }
        assert!(seen.iter().all(|s| *s), "hash must reach every shard");
    }

    #[test]
    fn classification() {
        let r = ShardRouter::modulo(4);
        assert_eq!(r.classify([1, 5, 9]), Routing::Single(1));
        assert_eq!(r.classify([1, 2]), Routing::Multi(vec![1, 2]));
        assert_eq!(r.classify([]), Routing::Single(0));
        assert!(r.classify([3, 7]).is_single());
    }

    #[test]
    fn range_span_keeps_adjacent_keys_together() {
        let r = ShardRouter::new(2, Partitioning::Range { span: 10 });
        assert_eq!(r.shard_of(0), r.shard_of(9));
        assert_ne!(r.shard_of(9), r.shard_of(10));
    }
}
