//! Binary wire format for the shard-RPC API.
//!
//! A message is a *frame*: a little-endian `u32` payload length followed by
//! the payload. Payloads carry a `u64` request id (the client multiplexes
//! many in-flight requests over one connection and matches replies by id),
//! the sender's `u64` HLC reading (every frame carries a clock sample in
//! both directions; the receiver merges it, which is what keeps the
//! cluster's hybrid logical clocks within one message delay of each other),
//! and an encoded [`ShardRequest`] or [`ShardResult`].
//!
//! Decoding is total: truncated, oversized, or garbage input yields a
//! [`CodecError`], never a panic — the server answers by dropping the
//! connection, the client by failing the affected tickets with a clean
//! `CcError::Internal` (which aborts the transaction that was waiting).

use crate::api::{ShardRequest, ShardResponse, ShardStatsReply};
use crate::worker::Vote;
use std::io::{Read, Write};
use tebaldi_cc::CcError;
use tebaldi_core::{ProcId, ProcedureCall};
use tebaldi_obs::{HistogramSnapshot, MetricsSnapshot, TraceCtx};
use tebaldi_storage::codec::{ByteReader, ByteWriter, CodecError, CodecResult};

/// Upper bound on one frame's payload. Workload requests are tiny (ids +
/// argument buffers); anything past this is corrupt or hostile and drops
/// the connection.
pub const MAX_FRAME_LEN: usize = 16 << 20;

// ---------------------------------------------------------------------------
// Mechanism-string interning
// ---------------------------------------------------------------------------

/// The mechanism/reason strings that normally cross the wire. Decoding maps
/// onto these without allocation; a string outside the set is interned once
/// (leaked) per distinct value — the set of mechanism names in a process is
/// small and fixed, so this is bounded.
const WELL_KNOWN: &[&str] = &[
    "2pl",
    "ssi",
    "tso",
    "nocc",
    "rp",
    "engine",
    "dependency",
    "internal",
    "gate",
    "lock",
    "write lock",
    "read lock",
    "pipeline",
    "seats-workload",
    "reservation no-op",
];

/// Interned strings are remote-controlled input, so both the per-string
/// length and the table size are capped — a hostile peer streaming unique
/// mechanism strings must not grow coordinator memory without bound.
/// Legitimate mechanism names are short and few; anything past the caps
/// collapses onto this placeholder.
const FOREIGN_MECHANISM: &str = "remote-mechanism";
const MAX_INTERNED_LEN: usize = 64;
const MAX_INTERNED_STRINGS: usize = 256;

fn intern(s: &str) -> &'static str {
    if let Some(known) = WELL_KNOWN.iter().find(|k| **k == s) {
        return known;
    }
    if s.len() > MAX_INTERNED_LEN {
        return FOREIGN_MECHANISM;
    }
    use parking_lot::Mutex;
    use std::collections::BTreeSet;
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = TABLE.lock();
    if let Some(existing) = table.get(s) {
        return existing;
    }
    if table.len() >= MAX_INTERNED_STRINGS {
        return FOREIGN_MECHANISM;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// CcError codec
// ---------------------------------------------------------------------------

fn put_cc_error(w: &mut ByteWriter, err: &CcError) {
    match err {
        CcError::Timeout { mechanism, what } => {
            w.put_u8(0);
            w.put_str(mechanism);
            w.put_str(what);
        }
        CcError::Conflict { mechanism, reason } => {
            w.put_u8(1);
            w.put_str(mechanism);
            w.put_str(reason);
        }
        CcError::DependencyAborted => w.put_u8(2),
        CcError::Requested => w.put_u8(3),
        CcError::Internal(msg) => {
            w.put_u8(4);
            w.put_str(msg);
        }
        CcError::Unreachable {
            target,
            maybe_delivered,
        } => {
            w.put_u8(5);
            w.put_str(target);
            w.put_u8(u8::from(*maybe_delivered));
        }
    }
}

fn get_cc_error(r: &mut ByteReader<'_>) -> CodecResult<CcError> {
    Ok(match r.u8()? {
        0 => CcError::Timeout {
            mechanism: intern(&r.str()?),
            what: intern(&r.str()?),
        },
        1 => CcError::Conflict {
            mechanism: intern(&r.str()?),
            reason: intern(&r.str()?),
        },
        2 => CcError::DependencyAborted,
        3 => CcError::Requested,
        4 => CcError::Internal(r.str()?),
        5 => CcError::Unreachable {
            target: r.str()?,
            maybe_delivered: r.u8()? != 0,
        },
        _ => return Err(CodecError::Malformed("error tag")),
    })
}

// ---------------------------------------------------------------------------
// ProcedureCall codec
// ---------------------------------------------------------------------------

fn put_call(w: &mut ByteWriter, call: &ProcedureCall) {
    w.put_u32(call.ty.0);
    w.put_u64(call.instance_seed);
    w.put_u32(call.promised_keys.len() as u32);
    for &key in &call.promised_keys {
        w.put_key(key);
    }
}

fn get_call(r: &mut ByteReader<'_>) -> CodecResult<ProcedureCall> {
    let ty = tebaldi_storage::TxnTypeId(r.u32()?);
    let instance_seed = r.u64()?;
    let n = r.len_prefix()?;
    if r.remaining() < n * 20 {
        // A key costs 20 bytes; reject impossible counts before allocating.
        return Err(CodecError::Truncated);
    }
    let mut promised_keys = Vec::with_capacity(n);
    for _ in 0..n {
        promised_keys.push(r.key()?);
    }
    Ok(ProcedureCall {
        ty,
        instance_seed,
        promised_keys,
    })
}

// ---------------------------------------------------------------------------
// Metrics-snapshot codec
// ---------------------------------------------------------------------------

fn put_histogram(w: &mut ByteWriter, h: &HistogramSnapshot) {
    w.put_u64(h.count);
    w.put_u64(h.sum);
    w.put_u64(h.max);
    w.put_u32(h.buckets.len() as u32);
    for &(index, count) in &h.buckets {
        w.put_u32(index);
        w.put_u64(count);
    }
}

fn get_histogram(r: &mut ByteReader<'_>) -> CodecResult<HistogramSnapshot> {
    let count = r.u64()?;
    let sum = r.u64()?;
    let max = r.u64()?;
    let n = r.len_prefix()?;
    if r.remaining() < n * 12 {
        // A bucket costs 12 bytes; reject impossible counts before allocating.
        return Err(CodecError::Truncated);
    }
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push((r.u32()?, r.u64()?));
    }
    Ok(HistogramSnapshot {
        count,
        sum,
        max,
        buckets,
    })
}

fn put_metrics(w: &mut ByteWriter, m: &MetricsSnapshot) {
    w.put_u32(m.counters.len() as u32);
    for (name, value) in &m.counters {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_u32(m.gauges.len() as u32);
    for (name, value) in &m.gauges {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_u32(m.histograms.len() as u32);
    for (name, h) in &m.histograms {
        w.put_str(name);
        put_histogram(w, h);
    }
}

fn get_metrics(r: &mut ByteReader<'_>) -> CodecResult<MetricsSnapshot> {
    // Minimum entry sizes (length-prefixed name + fixed fields) bound the
    // pre-allocation against hostile length prefixes.
    fn entries<T>(
        r: &mut ByteReader<'_>,
        min_entry: usize,
        read: impl Fn(&mut ByteReader<'_>) -> CodecResult<T>,
    ) -> CodecResult<Vec<T>> {
        let n = r.len_prefix()?;
        if r.remaining() < n * min_entry {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read(r)?);
        }
        Ok(out)
    }
    let counters = entries(r, 12, |r| Ok((r.str()?, r.u64()?)))?;
    let gauges = entries(r, 12, |r| Ok((r.str()?, r.u64()?)))?;
    let histograms = entries(r, 32, |r| Ok((r.str()?, get_histogram(r)?)))?;
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

// ---------------------------------------------------------------------------
// Request / response codecs
// ---------------------------------------------------------------------------

/// Encodes a request payload (without the frame length prefix). `hlc` is
/// the sender's clock reading at send time, merged into the receiving
/// shard's clock before the request is dispatched.
pub fn encode_request(req_id: u64, hlc: u64, request: &ShardRequest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(req_id);
    w.put_u64(hlc);
    match request {
        ShardRequest::Execute {
            proc,
            call,
            args,
            max_attempts,
            trace,
        } => {
            w.put_u8(0);
            w.put_u32(proc.0);
            put_call(&mut w, call);
            w.put_bytes(args);
            w.put_u32(*max_attempts);
            w.put_u64(trace.trace_id);
        }
        ShardRequest::Prepare {
            global,
            proc,
            call,
            args,
            trace,
        } => {
            w.put_u8(1);
            w.put_u64(*global);
            w.put_u32(proc.0);
            put_call(&mut w, call);
            w.put_bytes(args);
            w.put_u64(trace.trace_id);
        }
        ShardRequest::Commit { global, hlc } => {
            w.put_u8(2);
            w.put_u64(*global);
            w.put_u64(*hlc);
        }
        ShardRequest::CommitOnePhase { global, hlc } => {
            w.put_u8(3);
            w.put_u64(*global);
            w.put_u64(*hlc);
        }
        ShardRequest::Abort { global } => {
            w.put_u8(4);
            w.put_u64(*global);
        }
        ShardRequest::Stats => w.put_u8(5),
        ShardRequest::Flush => w.put_u8(6),
        ShardRequest::Metrics => w.put_u8(7),
        ShardRequest::SnapshotRead {
            snapshot,
            wait_ms,
            keys,
        } => {
            w.put_u8(8);
            w.put_u64(*snapshot);
            w.put_u64(*wait_ms);
            w.put_u32(keys.len() as u32);
            for &key in keys {
                w.put_key(key);
            }
        }
    }
    w.into_bytes()
}

/// Decodes a request payload into `(req_id, sender_hlc, request)`.
pub fn decode_request(payload: &[u8]) -> CodecResult<(u64, u64, ShardRequest)> {
    let mut r = ByteReader::new(payload);
    let req_id = r.u64()?;
    let hlc = r.u64()?;
    let request = match r.u8()? {
        0 => ShardRequest::Execute {
            proc: ProcId(r.u32()?),
            call: get_call(&mut r)?,
            args: r.bytes()?.to_vec(),
            max_attempts: r.u32()?,
            trace: TraceCtx { trace_id: r.u64()? },
        },
        1 => ShardRequest::Prepare {
            global: r.u64()?,
            proc: ProcId(r.u32()?),
            call: get_call(&mut r)?,
            args: r.bytes()?.to_vec(),
            trace: TraceCtx { trace_id: r.u64()? },
        },
        2 => ShardRequest::Commit {
            global: r.u64()?,
            hlc: r.u64()?,
        },
        3 => ShardRequest::CommitOnePhase {
            global: r.u64()?,
            hlc: r.u64()?,
        },
        4 => ShardRequest::Abort { global: r.u64()? },
        5 => ShardRequest::Stats,
        6 => ShardRequest::Flush,
        7 => ShardRequest::Metrics,
        8 => {
            let snapshot = r.u64()?;
            let wait_ms = r.u64()?;
            let n = r.len_prefix()?;
            if r.remaining() < n * 20 {
                // A key costs 20 bytes; reject impossible counts first.
                return Err(CodecError::Truncated);
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.key()?);
            }
            ShardRequest::SnapshotRead {
                snapshot,
                wait_ms,
                keys,
            }
        }
        _ => return Err(CodecError::Malformed("request tag")),
    };
    r.expect_end()?;
    Ok((req_id, hlc, request))
}

/// Encodes a result payload (without the frame length prefix). `hlc` is
/// the shard's clock reading at reply time, merged into the client's clock
/// on receive.
pub fn encode_result(req_id: u64, hlc: u64, result: &Result<ShardResponse, CcError>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(req_id);
    w.put_u64(hlc);
    match result {
        Ok(response) => {
            w.put_u8(0);
            match response {
                ShardResponse::Executed { value, aborts } => {
                    w.put_u8(0);
                    w.put_value(value);
                    w.put_u32(*aborts);
                }
                ShardResponse::Prepared { value, vote, hlc } => {
                    w.put_u8(1);
                    w.put_value(value);
                    w.put_u8(match vote {
                        Vote::ReadOnly => 0,
                        Vote::ReadWrite => 1,
                    });
                    w.put_u64(*hlc);
                }
                ShardResponse::Decided => w.put_u8(2),
                ShardResponse::Stats(stats) => {
                    w.put_u8(3);
                    w.put_u64(stats.committed);
                    w.put_u64(stats.aborted);
                    w.put_u64(stats.flushes);
                    w.put_u64(stats.in_doubt);
                    w.put_u64(stats.queue_wait_ns);
                    w.put_u64(stats.pipeline_depth);
                    w.put_u64(stats.follower_reads);
                    w.put_u64(stats.failovers);
                    w.put_u64(stats.replica_acks_timed_out);
                    w.put_u64(stats.snapshot_reads);
                    w.put_u64(stats.snapshot_read_wait_ns);
                }
                ShardResponse::Flushed => w.put_u8(4),
                ShardResponse::Metrics(snapshot) => {
                    w.put_u8(5);
                    put_metrics(&mut w, snapshot);
                }
                ShardResponse::Snapshot { values, hlc } => {
                    w.put_u8(6);
                    w.put_u32(values.len() as u32);
                    for value in values {
                        w.put_value(value);
                    }
                    w.put_u64(*hlc);
                }
            }
        }
        Err(err) => {
            w.put_u8(1);
            put_cc_error(&mut w, err);
        }
    }
    w.into_bytes()
}

/// Decodes a result payload into `(req_id, shard_hlc, result)`.
pub fn decode_result(payload: &[u8]) -> CodecResult<(u64, u64, Result<ShardResponse, CcError>)> {
    let mut r = ByteReader::new(payload);
    let req_id = r.u64()?;
    let hlc = r.u64()?;
    let result = match r.u8()? {
        0 => Ok(match r.u8()? {
            0 => ShardResponse::Executed {
                value: r.value()?,
                aborts: r.u32()?,
            },
            1 => ShardResponse::Prepared {
                value: r.value()?,
                vote: match r.u8()? {
                    0 => Vote::ReadOnly,
                    1 => Vote::ReadWrite,
                    _ => return Err(CodecError::Malformed("vote tag")),
                },
                hlc: r.u64()?,
            },
            2 => ShardResponse::Decided,
            3 => ShardResponse::Stats(ShardStatsReply {
                committed: r.u64()?,
                aborted: r.u64()?,
                flushes: r.u64()?,
                in_doubt: r.u64()?,
                queue_wait_ns: r.u64()?,
                pipeline_depth: r.u64()?,
                follower_reads: r.u64()?,
                failovers: r.u64()?,
                replica_acks_timed_out: r.u64()?,
                snapshot_reads: r.u64()?,
                snapshot_read_wait_ns: r.u64()?,
            }),
            4 => ShardResponse::Flushed,
            5 => ShardResponse::Metrics(Box::new(get_metrics(&mut r)?)),
            6 => {
                let n = r.len_prefix()?;
                if r.remaining() < n {
                    // A value costs at least 1 byte (its tag).
                    return Err(CodecError::Truncated);
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(r.value()?);
                }
                ShardResponse::Snapshot {
                    values,
                    hlc: r.u64()?,
                }
            }
            _ => return Err(CodecError::Malformed("response tag")),
        }),
        1 => Err(get_cc_error(&mut r)?),
        _ => return Err(CodecError::Malformed("result tag")),
    };
    r.expect_end()?;
    Ok((req_id, hlc, result))
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame. Returns the bytes put on the wire.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<usize> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary; an oversized length prefix is a
/// protocol error.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(err) => return Err(err),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

    fn sample_call() -> ProcedureCall {
        ProcedureCall::new(TxnTypeId(3))
            .with_instance_seed(99)
            .with_promises(vec![Key::composite(TableId(1), &[4, 5])])
    }

    #[test]
    fn requests_roundtrip() {
        let requests = [
            ShardRequest::Execute {
                proc: ProcId(7),
                call: sample_call(),
                args: vec![1, 2, 3],
                max_attempts: 20,
                trace: TraceCtx::sampled(0xDEAD_BEEF),
            },
            ShardRequest::Prepare {
                global: 42,
                proc: ProcId(8),
                call: ProcedureCall::new(TxnTypeId(0)),
                args: Vec::new(),
                trace: TraceCtx::NONE,
            },
            ShardRequest::Commit {
                global: 1,
                hlc: 0x7777,
            },
            ShardRequest::CommitOnePhase {
                global: 2,
                hlc: 0x8888,
            },
            ShardRequest::Abort { global: 3 },
            ShardRequest::Stats,
            ShardRequest::Flush,
            ShardRequest::Metrics,
            ShardRequest::SnapshotRead {
                snapshot: 0x9999,
                wait_ms: 250,
                keys: vec![
                    Key::simple(TableId(4), 17),
                    Key::composite(TableId(5), &[1, 2]),
                ],
            },
            ShardRequest::SnapshotRead {
                snapshot: 0,
                wait_ms: 0,
                keys: Vec::new(),
            },
        ];
        for request in &requests {
            let payload = encode_request(11, 0xABCD, request);
            let (id, hlc, back) = decode_request(&payload).unwrap();
            assert_eq!(id, 11);
            assert_eq!(hlc, 0xABCD, "every frame carries the sender's clock");
            assert_eq!(&back, request);
        }
    }

    #[test]
    fn results_roundtrip() {
        let results: Vec<Result<ShardResponse, CcError>> = vec![
            Ok(ShardResponse::Executed {
                value: Value::row(&[1, 2]),
                aborts: 3,
            }),
            Ok(ShardResponse::Prepared {
                value: Value::Null,
                vote: Vote::ReadOnly,
                hlc: 42,
            }),
            Ok(ShardResponse::Prepared {
                value: Value::Int(-1),
                vote: Vote::ReadWrite,
                hlc: 0xFFEE,
            }),
            Ok(ShardResponse::Decided),
            Ok(ShardResponse::Snapshot {
                values: vec![Value::Int(3), Value::Null, Value::row(&[7, 8])],
                hlc: 0x1234,
            }),
            Ok(ShardResponse::Snapshot {
                values: Vec::new(),
                hlc: 0,
            }),
            Ok(ShardResponse::Stats(ShardStatsReply {
                committed: 5,
                aborted: 2,
                flushes: 9,
                in_doubt: 1,
                queue_wait_ns: 1_234,
                pipeline_depth: 17,
                follower_reads: 21,
                failovers: 1,
                replica_acks_timed_out: 3,
                snapshot_reads: 44,
                snapshot_read_wait_ns: 5_678,
            })),
            Ok(ShardResponse::Flushed),
            Ok(ShardResponse::Metrics(Box::new(MetricsSnapshot {
                counters: vec![("cluster.multi_shard".to_string(), 12)],
                gauges: vec![("pipeline.max_depth".to_string(), 4)],
                histograms: vec![(
                    "proc.payment.latency_ns".to_string(),
                    HistogramSnapshot {
                        count: 3,
                        sum: 300,
                        max: 150,
                        buckets: vec![(10, 2), (63, 1)],
                    },
                )],
            }))),
            Ok(ShardResponse::Metrics(Box::default())),
            Err(CcError::Requested),
            Err(CcError::DependencyAborted),
            Err(CcError::Internal("boom".to_string())),
            Err(CcError::Unreachable {
                target: "shard 3".to_string(),
                maybe_delivered: true,
            }),
            Err(CcError::Unreachable {
                target: "connection".to_string(),
                maybe_delivered: false,
            }),
            Err(CcError::Conflict {
                mechanism: "seats-workload",
                reason: "reservation no-op",
            }),
            Err(CcError::Timeout {
                mechanism: "2pl",
                what: "lock",
            }),
        ];
        for result in &results {
            let payload = encode_result(77, 0xC0FFEE, result);
            let (id, hlc, back) = decode_result(&payload).unwrap();
            assert_eq!(id, 77);
            assert_eq!(hlc, 0xC0FFEE, "every frame carries the shard's clock");
            assert_eq!(&back, result);
        }
    }

    #[test]
    fn decoded_static_strings_pattern_match() {
        // The SEATS workload matches on mechanism string content to tell
        // its own no-op votes from engine aborts: the content must survive
        // the wire even though the type is `&'static str`.
        let err = CcError::Conflict {
            mechanism: "seats-workload",
            reason: "reservation no-op",
        };
        let payload = encode_result(0, 0, &Err(err));
        let (_, _, back) = decode_result(&payload).unwrap();
        assert!(matches!(
            back,
            Err(CcError::Conflict {
                mechanism: "seats-workload",
                ..
            })
        ));
        // Unknown mechanism strings intern without loss.
        let odd = CcError::Conflict {
            mechanism: intern("custom-mechanism-xyz"),
            reason: intern("because"),
        };
        let payload = encode_result(0, 0, &Err(odd.clone()));
        let (_, _, back) = decode_result(&payload).unwrap();
        assert_eq!(back, Err(odd));
    }

    #[test]
    fn garbage_payloads_error_cleanly() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_result(&[]).is_err());
        let good = encode_request(1, 0, &ShardRequest::Stats);
        // Truncations at every split point.
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
        // Bad tags.
        let mut bad = good;
        *bad.last_mut().unwrap() = 0xEE;
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        let payload = encode_request(5, 0, &ShardRequest::Flush);
        let written = write_frame(&mut buf, &payload).unwrap();
        assert_eq!(written, payload.len() + 4);
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, payload);
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // An oversized length prefix is an error, not an allocation.
        let huge = (u32::MAX).to_le_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(huge);
        assert!(read_frame(&mut cursor).is_err());
        // Truncated mid-payload is an error.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, &payload).unwrap();
        truncated.truncate(truncated.len() - 2);
        let mut cursor = std::io::Cursor::new(truncated);
        assert!(read_frame(&mut cursor).is_err());
    }
}
