//! The cluster facade: N independent [`Database`] shards behind a
//! [`ShardRouter`], per-shard worker pools, a pluggable [`ShardTransport`],
//! and the cross-shard 2PC coordinator.

use crate::api::{ShardRequest, ShardResponse, ShardResult};
use crate::coordinator::{CoordinatorStats, TxnCoordinator};
use crate::faults::{FaultPlan, FaultyTransport};
use crate::replication::{ReplicationConfig, ShardReplication};
use crate::router::{Partitioning, Routing, ShardRouter};
use crate::tcp::{ReconnectPolicy, TcpShardServer};
use crate::transport::{
    InProcessTransport, ShardTransport, TransportFactory, TransportKind, TransportStats,
};
use crate::worker::{error_status, ShardWorkers, Ticket, Vote};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tebaldi_cc::{CcResult, CcTreeSpec, ProcedureSet};
use tebaldi_core::{Database, DbConfig, Hlc, ProcId, ProcRegistry, ProcedureCall};
use tebaldi_obs::{self as obs, Counter, Histogram, MetricsRegistry, MetricsSnapshot, TraceCtx};
use tebaldi_storage::recovery::{recover_with_resolver, RecoveryReport};
use tebaldi_storage::wal::{LogDevice, MemLogDevice};
use tebaldi_storage::{Key, MvStore, Value};

/// A monotonic nanosecond clock the cluster uses to measure the
/// prepared-lock window. Passed in so tests can inject a deterministic
/// clock; the default anchors `Instant` at cluster construction.
pub type ClusterClock = Arc<dyn Fn() -> u64 + Send + Sync>;

fn default_clock() -> ClusterClock {
    let anchor = std::time::Instant::now();
    Arc::new(move || anchor.elapsed().as_nanos() as u64)
}

/// Cluster-level configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of database shards.
    pub shards: usize,
    /// Worker threads serving each shard's mailbox.
    pub workers_per_shard: usize,
    /// Engine configuration applied to every shard.
    pub db_config: DbConfig,
    /// Partition-key → shard mapping.
    pub partitioning: Partitioning,
    /// Upper bound on how long the coordinator waits for one shard's
    /// prepare vote. A wedged shard then counts as a "no" vote (the
    /// transaction aborts with `CcError::Internal`) instead of hanging
    /// `execute_multi` forever. The same bound applies to phase-two
    /// decision acknowledgements, so a shard that wedges *after* voting
    /// cannot hang the finalize step either (the decision is durable; the
    /// straggler resolves it on recovery).
    pub prepare_timeout_ms: u64,
    /// How the coordinator reaches the shards: the in-process mailbox
    /// fast path, or length-prefixed frames over TCP loopback sockets.
    pub transport: TransportKind,
    /// Upper bound on body-running requests (`Execute`/`Prepare`) one
    /// shard may have in flight at once — executing on a worker or parked
    /// in the hardening stage of the prepare pipeline. (A committed
    /// execute awaiting only its durability acknowledgement releases its
    /// slot early: it holds no locks and runs no body.) Values greater than
    /// `workers_per_shard` enable the pipeline: a worker appends a
    /// prepare's WAL record without waiting for the flush, hands the
    /// continuation to the shard's completion loop, and starts the next
    /// body, so one worker multiplexes many in-flight prepares.
    /// Values less than or equal to `workers_per_shard` (canonically `1`)
    /// disable pipelining entirely: every request runs start-to-finish on
    /// its worker and in-flight concurrency is bounded by the worker count
    /// — exactly the pre-pipelining engine, kept as the baseline leg the
    /// benches sweep against. With the pipeline on, admission beyond the
    /// bound queues (backpressure); over TCP the bound also caps
    /// outstanding body-running requests per shard connection, with
    /// submissions failing after `prepare_timeout_ms` if the window never
    /// opens (a wedged shard's full pipeline must not hang queued
    /// requests).
    pub max_inflight_per_shard: usize,
    /// Distributed-trace sampling rate: every Nth transaction entering the
    /// cluster gets a trace id that is propagated to its shards (over the
    /// wire too) and collects coordinator + shard spans in the process
    /// trace sink. `0` disables tracing entirely; `1` traces everything.
    pub trace_sample_every: u64,
    /// When non-zero, a *sampled* transaction whose end-to-end latency
    /// exceeds this threshold dumps its full structured trace into the
    /// slow-trace buffer, drained per cluster via
    /// [`Cluster::take_slow_traces`]. The threshold is armed for this
    /// cluster's trace scope only; other clusters in the process keep
    /// their own. `0` arms nothing.
    pub slow_trace_threshold_ms: u64,
    /// Base delay of the TCP transport's reconnect backoff. After a shard
    /// link dies, the first re-dial happens immediately on the next
    /// submission; each *failed* dial then closes the link for
    /// `base * 2^(failures-1)`, capped at `reconnect_backoff_max_ms`.
    /// Ignored by the in-process transport.
    pub reconnect_backoff_ms: u64,
    /// Cap on the reconnect backoff delay.
    pub reconnect_backoff_max_ms: u64,
    /// When set, the cluster's transport is wrapped in a
    /// [`FaultyTransport`](crate::faults::FaultyTransport) injecting the
    /// plan's deterministic drop/delay/duplicate/partition schedule.
    /// Chaos-test machinery; `None` in every production configuration.
    pub fault_plan: Option<FaultPlan>,
    /// When set, every shard primary ships its WAL to
    /// `replication.replicas` backups and the group-commit completion
    /// loop waits for `replication.quorum` acks (bounded by
    /// `replication.ack_timeout_ms`) before a hardened batch is
    /// acknowledged. `None` runs unreplicated single-copy shards.
    pub replication: Option<ReplicationConfig>,
    /// The consistency level reads run at when the caller does not pick
    /// one explicitly (workload read profiles route through this, so one
    /// config/env switch moves a whole benchmark or test run between the
    /// vote path and the HLC snapshot path).
    pub default_read_consistency: ReadConsistency,
}

impl ClusterConfig {
    /// A small cluster configuration for tests: modulo partitioning, two
    /// workers per shard, the test engine config. The transport honors
    /// `TEBALDI_TEST_TRANSPORT=tcp` so CI can run the whole cluster test
    /// group over the wire protocol.
    pub fn for_tests(shards: usize) -> Self {
        ClusterConfig {
            shards,
            workers_per_shard: 2,
            db_config: DbConfig::for_tests(),
            partitioning: Partitioning::Range { span: 1 },
            prepare_timeout_ms: 10_000,
            transport: test_transport(),
            // Pipelined by default under test so the whole cluster group
            // exercises the deferred-hardening path.
            max_inflight_per_shard: 32,
            // Tracing off under test by default (tests that assert on
            // traces opt in explicitly). Scoped trace ids keep parallel
            // clusters isolated in the shared sink either way.
            trace_sample_every: 0,
            slow_trace_threshold_ms: 0,
            reconnect_backoff_ms: 20,
            reconnect_backoff_max_ms: 1_000,
            fault_plan: None,
            replication: test_replication(),
            default_read_consistency: test_read_consistency(),
        }
    }

    /// Benchmark configuration: modulo partitioning and enough workers to
    /// keep a shard busy under closed-loop load.
    pub fn for_benchmarks(shards: usize) -> Self {
        ClusterConfig {
            shards,
            workers_per_shard: 4,
            db_config: DbConfig::for_benchmarks(),
            partitioning: Partitioning::Range { span: 1 },
            prepare_timeout_ms: 10_000,
            transport: TransportKind::InProcess,
            max_inflight_per_shard: 32,
            // Default sampling: one traced transaction per 64 keeps the
            // observability cost off the bench hot path.
            trace_sample_every: 64,
            slow_trace_threshold_ms: 0,
            reconnect_backoff_ms: 20,
            reconnect_backoff_max_ms: 1_000,
            fault_plan: None,
            replication: None,
            default_read_consistency: ReadConsistency::Strong,
        }
    }

    /// The prepare-vote (and decision-ack) timeout as a [`Duration`].
    pub fn prepare_timeout(&self) -> Duration {
        Duration::from_millis(self.prepare_timeout_ms)
    }
}

/// The transport under test: `TEBALDI_TEST_TRANSPORT=tcp` switches the
/// cluster test group onto the wire protocol (the CI matrix runs both).
pub fn test_transport() -> TransportKind {
    match std::env::var("TEBALDI_TEST_TRANSPORT").as_deref() {
        Ok("tcp") => TransportKind::Tcp,
        _ => TransportKind::InProcess,
    }
}

/// The replication setup under test: `TEBALDI_TEST_REPLICAS=n` (n > 0)
/// runs the cluster test group with n backups per shard and a majority
/// quorum, so CI can exercise the quorum-gated commit path across the
/// whole suite.
pub fn test_replication() -> Option<ReplicationConfig> {
    match std::env::var("TEBALDI_TEST_REPLICAS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => Some(ReplicationConfig::majority(n)),
        _ => None,
    }
}

/// The default read consistency under test:
/// `TEBALDI_TEST_READ_CONSISTENCY=snapshot` (or `bounded`) moves every
/// default-consistency read in the test suite onto the HLC snapshot path
/// (or the follower path), so CI can run the whole cluster group at each
/// level.
pub fn test_read_consistency() -> ReadConsistency {
    match std::env::var("TEBALDI_TEST_READ_CONSISTENCY").as_deref() {
        Ok("snapshot") => ReadConsistency::Snapshot,
        Ok("bounded") => ReadConsistency::BoundedStaleness {
            max_lag: Duration::from_millis(500),
        },
        _ => ReadConsistency::Strong,
    }
}

/// The phase-one vote tickets of one multi-shard transaction, tagged with
/// their shards.
type VoteTickets = Vec<(usize, Ticket<ShardResult>)>;

/// One shard's part of a multi-shard transaction: pure data — a registered
/// procedure id plus its encoded arguments — so the same part can cross a
/// mailbox or a socket.
#[derive(Clone, Debug)]
pub struct ShardPart {
    /// Target shard.
    pub shard: usize,
    /// The per-shard procedure call (type + instance seed + promises).
    pub call: ProcedureCall,
    /// The registered transaction body to run.
    pub proc: ProcId,
    /// Encoded arguments for the body.
    pub args: Vec<u8>,
}

impl ShardPart {
    /// Builds a part.
    pub fn new(shard: usize, call: ProcedureCall, proc: ProcId, args: Vec<u8>) -> Self {
        ShardPart {
            shard,
            call,
            proc,
            args,
        }
    }
}

/// How a read observes the cluster — the one knob of the unified read API
/// ([`Cluster::read`] / [`Cluster::execute_read`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadConsistency {
    /// Serializable: the read runs as a read-only transaction through the
    /// regular execute/2PC machinery, serializing at its vote point
    /// against every concurrent writer. Linearizable with respect to
    /// commits, and the only level that participates in the global
    /// serialization order.
    Strong,
    /// Snapshot isolation at a cluster-wide HLC snapshot: the coordinator
    /// picks one hybrid-logical-clock stamp and every shard answers from
    /// its lock-free version chains exactly as of that stamp — zero 2PC,
    /// zero locks, zero WAL records. A multi-shard commit is visible
    /// either on all shards or none (decision stamps are drawn above
    /// every participant's vote clock), so the snapshot is never torn. An
    /// uncommitted writer overlapping the snapshot is waited out, bounded
    /// by the cluster's prepare timeout.
    Snapshot,
    /// Served by each shard's most caught-up follower after it proves it
    /// has applied the primary's durable prefix as of the read, waiting
    /// up to `max_lag` for the follower to catch up (an error names the
    /// LSN gap when it cannot). Offloads the primary entirely. Shards
    /// without replication fall back to [`ReadConsistency::Snapshot`].
    BoundedStaleness {
        /// How long a lagging follower may take to catch up before the
        /// read refuses rather than return stale data.
        max_lag: Duration,
    },
}

/// One shard's slice of a multi-key read: the target shard plus the keys
/// it owns. The read-side analogue of [`ShardPart`].
#[derive(Clone, Debug)]
pub struct ReadPart {
    /// Target shard.
    pub shard: usize,
    /// The keys to read there.
    pub keys: Vec<Key>,
}

impl ReadPart {
    /// Builds a read part.
    pub fn new(shard: usize, keys: Vec<Key>) -> Self {
        ReadPart { shard, keys }
    }
}

/// Per-transaction options for [`Cluster::execute`]: the retry budget, the
/// declared key sets the batch scheduler orders conflicts by, and the
/// consistency level reads run at. One builder replaces the old
/// `execute_multi` / `execute_multi_with_retry` /
/// `execute_multi_batch_declared` entry-point fan — those remain as thin
/// wrappers.
#[derive(Clone, Debug)]
pub struct TxnOptions {
    /// Total attempts (1 = no retry). Retryable conflicts and unreachable
    /// shards re-run the transaction under a fresh id; other errors
    /// surface immediately.
    pub max_attempts: usize,
    /// The key sets this transaction declares it will touch. Only
    /// consulted by the batch scheduler ([`Cluster::execute_batch`]),
    /// which orders declared conflicts instead of letting them abort; a
    /// hint, never a correctness requirement.
    pub declared_sets: Option<BatchKeySets>,
    /// The consistency level reads made through this options bundle use
    /// (see [`Cluster::read`]). Writes always run Strong.
    pub consistency: ReadConsistency,
}

impl Default for TxnOptions {
    fn default() -> Self {
        TxnOptions {
            max_attempts: 1,
            declared_sets: None,
            consistency: ReadConsistency::Strong,
        }
    }
}

impl TxnOptions {
    /// Starts an options builder with the defaults: single attempt, no
    /// declarations, strong reads.
    pub fn new() -> Self {
        TxnOptions::default()
    }

    /// Sets the total attempt budget (1 = no retry).
    pub fn retry(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Declares the transaction's read/write key sets for the batch
    /// scheduler.
    pub fn declared(mut self, sets: BatchKeySets) -> Self {
        self.declared_sets = Some(sets);
        self
    }

    /// Sets the read consistency level.
    pub fn consistency(mut self, consistency: ReadConsistency) -> Self {
        self.consistency = consistency;
        self
    }
}

/// The keys a batched transaction declares it will touch, used by the
/// dependency-graph batch scheduler to order conflicting transactions
/// instead of letting the CC layer abort them. Declarations are a
/// performance hint, not a contract: the mechanisms still validate every
/// actual access, so an incomplete declaration costs retries, never
/// correctness.
#[derive(Clone, Debug, Default)]
pub struct BatchKeySets {
    /// Keys the transaction reads (and does not write).
    pub reads: Vec<Key>,
    /// Keys the transaction writes.
    pub writes: Vec<Key>,
}

impl BatchKeySets {
    /// Builds a declaration from read and write key sets.
    pub fn new(reads: Vec<Key>, writes: Vec<Key>) -> Self {
        BatchKeySets { reads, writes }
    }

    /// A write-only declaration (the common case for update procedures).
    pub fn writes(writes: Vec<Key>) -> Self {
        BatchKeySets {
            reads: Vec::new(),
            writes,
        }
    }
}

/// One multi-shard transaction inside a scheduled batch: its shard parts
/// plus an optional key-set declaration. Transactions without a
/// declaration always run in the first wave (exactly the pre-scheduling
/// overlapped path).
#[derive(Debug)]
pub struct BatchTxn {
    /// The per-shard parts, as for [`Cluster::execute_multi`].
    pub parts: Vec<ShardPart>,
    /// Declared read/write key sets, or `None` to opt out of scheduling.
    pub keys: Option<BatchKeySets>,
}

impl BatchTxn {
    /// A transaction with no declaration (first-wave, unscheduled).
    pub fn undeclared(parts: Vec<ShardPart>) -> Self {
        BatchTxn { parts, keys: None }
    }

    /// A transaction with a declared key-set footprint.
    pub fn declared(parts: Vec<ShardPart>, keys: BatchKeySets) -> Self {
        BatchTxn {
            parts,
            keys: Some(keys),
        }
    }
}

/// Aggregate counters across the cluster.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterStats {
    /// Transactions committed across all shards (single- and multi-shard
    /// parts both count on their shard).
    pub committed: u64,
    /// Aborted attempts across all shards.
    pub aborted: u64,
    /// Single-shard fast-path transactions executed through the cluster.
    pub single_shard: u64,
    /// Multi-shard 2PC transactions driven to a commit decision.
    pub multi_shard: u64,
    /// Device flushes across every shard WAL plus the coordinator's
    /// decision log.
    pub flushes: u64,
    /// `flushes / committed` — the commit-path cost group commit and the
    /// vote-class optimizations drive down. Zero when nothing committed.
    pub flushes_per_commit: f64,
    /// Mean prepared-lock window in nanoseconds — last prepare vote
    /// collected → every decision applied — over the multi-shard
    /// transactions that actually parked a prepared participant (fully
    /// read-only and all-parts-self-aborted globals hold no locks across
    /// phase two and are excluded).
    pub prepared_lock_window_ns: u64,
    /// Participant parts that voted `ReadOnly` (committed at phase one,
    /// no prepare record, excluded from the decision).
    pub read_only_votes: u64,
    /// Flushes that concurrent transactions shared through group commit
    /// (each one a device flush the legacy path would have performed).
    pub coalesced_flushes: u64,
    /// Request messages the transport put on the wire (zero in process).
    pub messages_sent: u64,
    /// Frame bytes the transport moved in either direction (zero in
    /// process).
    pub bytes_on_wire: u64,
    /// Successful transport re-dials after lost connections (zero in
    /// process; nonzero means the cluster rode out connection churn).
    pub reconnects: u64,
    /// Phase-two decisions whose acknowledgement did not arrive within the
    /// prepare timeout. The transaction outcome is unaffected (the
    /// decision is durable; the shard resolves it on recovery or late
    /// delivery), but each one means a shard wedged after voting.
    pub decision_ack_timeouts: u64,
    /// Mean nanoseconds a body-running request waited in a shard's
    /// submission queue before a worker picked it up — the *execute-wait*
    /// share of the prepare latency (scheduling, not hardware).
    pub prepare_queue_wait_ns: u64,
    /// Mean nanoseconds between a pipelined prepare's body completion and
    /// its durable yes-vote acknowledgement — the *hardening* share (the
    /// WAL flush the completion loop batches across transactions). Zero
    /// when the pipeline is disabled (`max_inflight_per_shard = 1`).
    pub prepare_hardening_ns: u64,
    /// Peak number of simultaneously in-flight bodies observed on any
    /// shard (bounded by `max_inflight_per_shard`). Values above
    /// `workers_per_shard` prove requests overlapped beyond the worker
    /// count — the pipeline at work.
    pub max_pipeline_depth: u64,
    /// Batched transactions the dependency-graph scheduler deferred past
    /// the first wave because their declared key sets conflicted with an
    /// earlier batch-mate — each one a likely abort-and-retry converted
    /// into an ordered execution.
    pub batch_scheduled: u64,
    /// Batched transactions (scheduled or not) that still returned an
    /// error. Compared against `batch_scheduled` in the benches: the
    /// scheduler earns its keep when declared legs abort less at equal or
    /// better throughput.
    pub batch_aborts: u64,
    /// Bounded-staleness reads served by shard followers (zero without
    /// replication).
    pub follower_reads: u64,
    /// HLC snapshot reads served by the shards (each one a multi-key
    /// cross-shard read that ran with zero 2PC, zero locks, and zero WAL
    /// records).
    pub snapshot_reads: u64,
    /// Total nanoseconds snapshot reads spent waiting out uncommitted
    /// writers overlapping their snapshot stamp.
    pub snapshot_read_wait_ns: u64,
    /// Backup promotions performed (each installed a recovered backup as
    /// a shard's new primary).
    pub failovers: u64,
    /// Hardened batches acknowledged on local durability alone because
    /// the replica quorum missed its ack deadline — replication running
    /// degraded, not data loss on the primary.
    pub replica_acks_timed_out: u64,
    /// Coordinator activity.
    pub coordinator: CoordinatorStats,
}

/// Builder for a [`Cluster`].
pub struct ClusterBuilder {
    config: ClusterConfig,
    procedures: ProcedureSet,
    registry: ProcRegistry,
    spec: Option<CcTreeSpec>,
    shard_logs: Option<Vec<Arc<dyn LogDevice>>>,
    decision_log: Option<Arc<dyn LogDevice>>,
    stores: Option<Vec<MvStore>>,
    clock: Option<ClusterClock>,
    transport_factory: Option<TransportFactory>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ClusterBuilder {
    /// Starts a builder. The shard-procedure registry starts with the
    /// builtin KV procedures (see [`crate::procs`]).
    pub fn new(config: ClusterConfig) -> Self {
        let mut registry = ProcRegistry::new();
        crate::procs::register_builtins(&mut registry);
        ClusterBuilder {
            config,
            procedures: ProcedureSet::new(),
            registry,
            spec: None,
            shard_logs: None,
            decision_log: None,
            stores: None,
            clock: None,
            transport_factory: None,
            metrics: None,
        }
    }

    /// Registers the workload's procedure descriptions (shared by every
    /// shard).
    pub fn procedures(mut self, procedures: ProcedureSet) -> Self {
        self.procedures = procedures;
        self
    }

    /// Registers one shard procedure (transaction body) by id.
    pub fn shard_procedure(
        mut self,
        id: ProcId,
        body: impl Fn(&mut tebaldi_core::Txn<'_>, &[u8]) -> CcResult<Value> + Send + Sync + 'static,
    ) -> Self {
        self.registry.register_fn(id, body);
        self
    }

    /// Merges a whole registry of shard procedures (what
    /// `ClusterWorkload::register_procedures` fills in).
    pub fn shard_procedures(mut self, registry: ProcRegistry) -> Self {
        self.registry.merge(registry);
        self
    }

    /// Sets the MCC configuration installed on every shard.
    pub fn cc_spec(mut self, spec: CcTreeSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Uses specific per-shard WAL devices (defaults to in-memory devices).
    pub fn shard_logs(mut self, logs: Vec<Arc<dyn LogDevice>>) -> Self {
        self.shard_logs = Some(logs);
        self
    }

    /// Uses a specific coordinator decision-log device.
    pub fn decision_log(mut self, log: Arc<dyn LogDevice>) -> Self {
        self.decision_log = Some(log);
        self
    }

    /// Opens the shards over existing (e.g. recovered) stores.
    pub fn stores(mut self, stores: Vec<MvStore>) -> Self {
        self.stores = Some(stores);
        self
    }

    /// Installs a monotonic nanosecond clock for the prepared-lock-window
    /// measurement (tests inject a deterministic one; defaults to a
    /// process-monotonic `Instant` clock).
    pub fn clock(mut self, clock: ClusterClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Installs a custom transport factory, overriding
    /// [`ClusterConfig::transport`]. Tests use this to wrap the default
    /// transports (e.g. delaying decision acks to exercise the finalize
    /// timeout).
    pub fn transport_factory(mut self, factory: TransportFactory) -> Self {
        self.transport_factory = Some(factory);
        self
    }

    /// Installs the coordinator-side metrics registry (defaults to a fresh
    /// enabled registry). Passing [`MetricsRegistry::disabled`] turns the
    /// latency histograms off cluster-wide — every shard database inherits
    /// the enabled flag — which is the obs-off leg of the overhead bench.
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Builds and starts the cluster.
    pub fn build(self) -> Result<Cluster, String> {
        let mut spec = self.spec.ok_or("a CC-tree specification is required")?;
        // The builtin read-path calls ([`crate::procs::KV_READ_TYPE`])
        // must route to *some* CC group on every tree, or strong reads
        // through [`Cluster::read`] would fail on clusters that only
        // registered their workload types. Attach it to the first leaf
        // unless the spec already claims it — read-only multi-gets are
        // mechanism-agnostic.
        if !spec.types().contains(&crate::procs::KV_READ_TYPE) {
            fn first_leaf(
                node: &mut tebaldi_cc::CcNodeSpec,
            ) -> Option<&mut tebaldi_cc::CcNodeSpec> {
                if node.is_leaf() {
                    return Some(node);
                }
                node.children.iter_mut().find_map(first_leaf)
            }
            if let Some(leaf) = first_leaf(&mut spec.root) {
                leaf.txn_types.push(crate::procs::KV_READ_TYPE);
            }
        }
        let n = self.config.shards;
        if n == 0 {
            return Err("a cluster needs at least one shard".to_string());
        }
        let shard_logs = match self.shard_logs {
            Some(logs) => {
                if logs.len() != n {
                    return Err(format!("expected {n} shard logs, got {}", logs.len()));
                }
                logs
            }
            None => (0..n)
                .map(|_| Arc::new(MemLogDevice::new()) as Arc<dyn LogDevice>)
                .collect(),
        };
        let stores: Vec<Option<MvStore>> = match self.stores {
            Some(stores) => {
                if stores.len() != n {
                    return Err(format!("expected {n} stores, got {}", stores.len()));
                }
                stores.into_iter().map(Some).collect()
            }
            None => (0..n).map(|_| None).collect(),
        };

        let metrics = self
            .metrics
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let registry = Arc::new(self.registry);
        let mut shards = Vec::with_capacity(n);
        for (index, (log, store)) in shard_logs.iter().zip(stores).enumerate() {
            let shard_metrics = Arc::new(if metrics.is_enabled() {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::disabled()
            });
            let mut builder = Database::builder(self.config.db_config.clone())
                .procedures(self.procedures.clone())
                .cc_spec(spec.clone())
                .metrics(shard_metrics)
                .log_device(Arc::clone(log));
            if let Some(store) = store {
                builder = builder.store(store);
            }
            let db = Arc::new(builder.build()?);
            shards.push(ShardWorkers::spawn_with_window(
                index,
                db,
                self.config.workers_per_shard,
                Arc::clone(&registry),
                self.config.max_inflight_per_shard,
            ));
        }

        // Replication groups ride the shard WAL devices directly: the
        // shipper follows `log.durable_len()`, so everything it ships is
        // already primary-durable and a follower's log is always a durable
        // prefix of its primary's.
        let replication: Vec<Option<Arc<ShardReplication>>> = match &self.config.replication {
            Some(rcfg) if rcfg.replicas > 0 => {
                let mut groups = Vec::with_capacity(n);
                for (index, log) in shard_logs.iter().enumerate() {
                    let group = ShardReplication::spawn(
                        index,
                        *rcfg,
                        Arc::clone(log),
                        self.config.db_config.shards,
                        shards[index].db().metrics(),
                        self.config.fault_plan.as_ref(),
                    )?;
                    shards[index].set_replication(Arc::clone(&group));
                    groups.push(Some(group));
                }
                groups
            }
            _ => (0..n).map(|_| None).collect(),
        };

        let mut transport: Arc<dyn ShardTransport> = match self.transport_factory {
            Some(factory) => factory(&shards)?,
            None => match self.config.transport {
                TransportKind::InProcess => Arc::new(InProcessTransport::new(shards.clone())),
                TransportKind::Tcp => {
                    // The client-side window only engages when the pipeline
                    // does: an unpipelined cluster keeps the pre-pipelining
                    // transport behavior (unbounded outstanding requests,
                    // concurrency bounded by the shard worker count).
                    let window =
                        if self.config.max_inflight_per_shard > self.config.workers_per_shard {
                            self.config.max_inflight_per_shard
                        } else {
                            0
                        };
                    let mut tcp = crate::tcp::TcpTransport::over_loopback_with_window(
                        &shards,
                        window,
                        self.config.prepare_timeout(),
                    )?;
                    tcp.set_reconnect_policy(ReconnectPolicy::new(
                        Duration::from_millis(self.config.reconnect_backoff_ms),
                        Duration::from_millis(self.config.reconnect_backoff_max_ms),
                    ));
                    Arc::new(tcp)
                }
            },
        };
        if let Some(plan) = &self.config.fault_plan {
            // Chaos wrapping applies to factory-built transports too, so a
            // test can compose faults over any custom transport.
            transport = Arc::new(FaultyTransport::new(transport, plan.clone(), &metrics));
        }

        let decision_log = self
            .decision_log
            .unwrap_or_else(|| Arc::new(MemLogDevice::new()) as Arc<dyn LogDevice>);
        // A process-unique scope tags this cluster's trace ids (high bits)
        // so concurrent clusters in one process can't read each other's
        // spans or slow-trace dumps out of the shared sink.
        let trace_scope = {
            static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);
            NEXT_SCOPE.fetch_add(1, Ordering::Relaxed)
        };
        if self.config.slow_trace_threshold_ms > 0 {
            obs::set_slow_threshold_ns_scoped(
                trace_scope,
                self.config.slow_trace_threshold_ms * 1_000_000,
            );
        }
        Ok(Cluster {
            router: ShardRouter::new(n, self.config.partitioning),
            coordinator: TxnCoordinator::with_options(
                decision_log,
                self.config.db_config.group_commit,
            ),
            shards: RwLock::new(shards),
            transport,
            shard_logs: RwLock::new(shard_logs),
            replication: RwLock::new(replication),
            promoted_servers: Mutex::new(Vec::new()),
            procedures: self.procedures,
            spec,
            proc_registry: registry,
            clock: self.clock.unwrap_or_else(default_clock),
            hlc: Arc::new(Hlc::new()),
            single_shard: metrics.counter("cluster.single_shard"),
            multi_shard: metrics.counter("cluster.multi_shard"),
            read_only_votes: metrics.counter("cluster.read_only_votes"),
            batch_scheduled: metrics.counter("cluster.batch_scheduled"),
            batch_aborts: metrics.counter("cluster.batch_aborts"),
            decision_ack_timeouts: metrics.counter("cluster.decision_ack_timeouts"),
            lock_window_ns: metrics.counter("cluster.lock_window_ns"),
            lock_windows: metrics.counter("cluster.lock_windows"),
            phase_fanout: metrics.histogram("2pc.prepare_fanout_ns"),
            phase_vote_collect: metrics.histogram("2pc.vote_collect_ns"),
            phase_decision_log: metrics.histogram("2pc.decision_log_ns"),
            phase_finalize: metrics.histogram("2pc.finalize_ns"),
            metrics,
            trace_seq: AtomicU64::new(0),
            next_trace_id: AtomicU64::new(1),
            trace_scope,
            last_trace_id: AtomicU64::new(0),
            config: self.config,
        })
    }
}

/// N database shards, a router, worker pools, a transport, and a 2PC
/// coordinator.
pub struct Cluster {
    router: ShardRouter,
    coordinator: TxnCoordinator,
    /// Shard worker pools, behind a lock because failover replaces a
    /// shard's pool with one rebuilt over the promoted backup's log.
    shards: RwLock<Vec<Arc<ShardWorkers>>>,
    transport: Arc<dyn ShardTransport>,
    shard_logs: RwLock<Vec<Arc<dyn LogDevice>>>,
    /// Per-shard replication groups; `None` per slot when the cluster is
    /// unreplicated or after that shard's backup was promoted.
    replication: RwLock<Vec<Option<Arc<ShardReplication>>>>,
    /// TCP server loops started by promotions, torn down with the cluster.
    promoted_servers: Mutex<Vec<Arc<TcpShardServer>>>,
    /// Retained so a promotion can rebuild the shard `Database` with the
    /// same procedures, CC spec, and procedure registry the builder used.
    procedures: ProcedureSet,
    spec: CcTreeSpec,
    proc_registry: Arc<ProcRegistry>,
    clock: ClusterClock,
    /// Coordinator-side hybrid logical clock. Safety does not depend on
    /// frame-level convergence: every decision stamp is drawn *after*
    /// observing all participant vote clocks, so the stamp is greater
    /// than every clock that witnessed a prepared write.
    hlc: Arc<Hlc>,
    config: ClusterConfig,
    /// Coordinator-side metrics registry. Shard databases carry their own
    /// registries; [`Cluster::metrics`] merges everything into one
    /// snapshot.
    metrics: Arc<MetricsRegistry>,
    single_shard: Arc<Counter>,
    multi_shard: Arc<Counter>,
    read_only_votes: Arc<Counter>,
    /// Batched transactions deferred past wave zero by the dependency
    /// scheduler.
    batch_scheduled: Arc<Counter>,
    /// Batched transactions that returned an error.
    batch_aborts: Arc<Counter>,
    decision_ack_timeouts: Arc<Counter>,
    /// Summed prepared-lock windows (votes collected → decisions applied).
    lock_window_ns: Arc<Counter>,
    /// Number of windows in the sum.
    lock_windows: Arc<Counter>,
    /// 2PC phase latency histograms (nanoseconds).
    phase_fanout: Arc<Histogram>,
    phase_vote_collect: Arc<Histogram>,
    phase_decision_log: Arc<Histogram>,
    phase_finalize: Arc<Histogram>,
    /// Transactions seen by the sampler (for the every-Nth decision).
    trace_seq: AtomicU64,
    /// Sequence numbers for this cluster's trace ids (the low bits; the
    /// high bits carry `trace_scope`).
    next_trace_id: AtomicU64,
    /// This cluster's tag in the high bits of its trace ids, so concurrent
    /// clusters sharing the process trace sink stay distinguishable.
    trace_scope: u64,
    /// The most recently allocated trace id (tests use it to collect the
    /// spans of the transaction they just ran).
    last_trace_id: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.shard_count())
            .finish()
    }
}

impl Cluster {
    /// Shorthand builder entry point.
    pub fn builder(config: ClusterConfig) -> ClusterBuilder {
        ClusterBuilder::new(config)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.read().len()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The router (workloads use it to place their partition keys).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The 2PC coordinator.
    pub fn coordinator(&self) -> &TxnCoordinator {
        &self.coordinator
    }

    /// The transport in use.
    pub fn transport(&self) -> &Arc<dyn ShardTransport> {
        &self.transport
    }

    /// A shard's database (loaders write through it directly; crash and
    /// recovery tests drive `Database::prepare` by hand). Owned because
    /// failover can replace the shard behind the handle.
    pub fn shard(&self, index: usize) -> Arc<Database> {
        Arc::clone(self.shards.read()[index].db())
    }

    /// A shard's WAL device (crash/recovery tests). After a failover this
    /// is the promoted backup's log.
    pub fn shard_log(&self, index: usize) -> Arc<dyn LogDevice> {
        Arc::clone(&self.shard_logs.read()[index])
    }

    /// The replication group shipping `shard`'s WAL, if the cluster is
    /// replicated and the shard has not been failed over.
    pub fn replication(&self, shard: usize) -> Option<Arc<ShardReplication>> {
        self.replication.read().get(shard).cloned().flatten()
    }

    /// A bounded-staleness read served by backup `replica` of `shard`:
    /// the follower must catch up to the primary's durable LSN as of this
    /// call within `wait`, so the value returned reflects every
    /// transaction acknowledged before the read was issued. Refuses with
    /// an error naming the LSN gap when the follower is too stale.
    ///
    /// Prefer [`Cluster::read`] with
    /// [`ReadConsistency::BoundedStaleness`], which picks the most
    /// caught-up replica itself; this entry point remains for callers that
    /// need to target a *specific* replica (failover and staleness tests).
    pub fn follower_read(
        &self,
        shard: usize,
        replica: usize,
        key: &Key,
        wait: Duration,
    ) -> CcResult<Option<Value>> {
        let group = self.replication(shard).ok_or_else(|| {
            tebaldi_cc::CcError::Internal(format!("shard {shard} is not replicated"))
        })?;
        let min_lsn = self.shard_logs.read()[shard].durable_len() as u64;
        group
            .follower_read(replica, key, min_lsn, wait)
            .map_err(|stale| tebaldi_cc::CcError::Internal(stale.to_string()))
    }

    /// The consistency level default-consistency reads run at (from the
    /// configuration; `TEBALDI_TEST_READ_CONSISTENCY` under test).
    pub fn default_read_consistency(&self) -> ReadConsistency {
        self.config.default_read_consistency
    }

    /// Reads `keys` — each tagged with the partition key that routes it —
    /// at the requested consistency level, returning the values in input
    /// order (`None` for absent keys). Groups the keys by shard and
    /// delegates to [`Cluster::execute_read`].
    pub fn read(
        &self,
        keys: Vec<(u64, Key)>,
        consistency: ReadConsistency,
    ) -> CcResult<Vec<Option<Value>>> {
        let (parts, order) = self.keyed_parts(&keys);
        let flat = self.execute_read(parts, consistency)?;
        let mut values = vec![None; keys.len()];
        for (value, index) in flat.into_iter().zip(order) {
            values[index] = value;
        }
        Ok(values)
    }

    /// Groups partition-keyed reads into per-shard [`ReadPart`]s plus the
    /// flat-result-position → input-position mapping.
    fn keyed_parts(&self, keys: &[(u64, Key)]) -> (Vec<ReadPart>, Vec<usize>) {
        let mut by_shard: BTreeMap<usize, (Vec<Key>, Vec<usize>)> = BTreeMap::new();
        for (index, &(partition_key, key)) in keys.iter().enumerate() {
            let entry = by_shard.entry(self.shard_of(partition_key)).or_default();
            entry.0.push(key);
            entry.1.push(index);
        }
        let mut parts = Vec::with_capacity(by_shard.len());
        let mut order = Vec::with_capacity(keys.len());
        for (shard, (keys, indices)) in by_shard {
            parts.push(ReadPart::new(shard, keys));
            order.extend(indices);
        }
        (parts, order)
    }

    /// Runs a multi-shard read at the requested consistency level.
    /// Returns the values flattened in part order, each part's keys in
    /// declaration order, `None` for absent keys.
    ///
    /// * [`Strong`](ReadConsistency::Strong) — one read-only 2PC part per
    ///   shard through the vote path (serializable, and the only level in
    ///   the global serialization order).
    /// * [`Snapshot`](ReadConsistency::Snapshot) — one cluster-wide HLC
    ///   stamp, every shard answering from its version chains as of that
    ///   stamp: zero 2PC, zero locks, zero WAL records.
    /// * [`BoundedStaleness`](ReadConsistency::BoundedStaleness) — served
    ///   by each shard's most caught-up follower; shards without
    ///   replication fall back to the snapshot path.
    pub fn execute_read(
        &self,
        parts: Vec<ReadPart>,
        consistency: ReadConsistency,
    ) -> CcResult<Vec<Option<Value>>> {
        match consistency {
            ReadConsistency::Strong => self.strong_read(parts),
            ReadConsistency::Snapshot => self.snapshot_read_at(self.hlc.now(), parts),
            ReadConsistency::BoundedStaleness { max_lag } => {
                // Follower reads need a replication group per touched
                // shard; a partially-replicated (or failed-over) cluster
                // degrades to the snapshot path rather than erroring.
                if parts
                    .iter()
                    .any(|part| self.replication(part.shard).is_none())
                {
                    return self.snapshot_read_at(self.hlc.now(), parts);
                }
                self.bounded_read(&parts, max_lag)
            }
        }
    }

    /// Pins an HLC snapshot for a multi-hop read: every
    /// [`SnapshotHandle::read`] against the handle observes the cluster as
    /// of the same stamp, so a workload profile reading dependent keys in
    /// several rounds (look up the order, then its lines) still sees one
    /// consistent cut.
    pub fn snapshot(&self) -> SnapshotHandle<'_> {
        SnapshotHandle {
            cluster: self,
            snapshot: self.hlc.now(),
        }
    }

    /// The vote-path read: one `KV_MULTI_GET` part per shard through the
    /// regular execute/2PC machinery. Single-shard reads take the
    /// single-shard fast path.
    fn strong_read(&self, parts: Vec<ReadPart>) -> CcResult<Vec<Option<Value>>> {
        let call = ProcedureCall::new(crate::procs::KV_READ_TYPE);
        let mut shard_parts = Vec::with_capacity(parts.len());
        for part in &parts {
            shard_parts.push(ShardPart::new(
                part.shard,
                call.clone(),
                crate::procs::KV_MULTI_GET,
                crate::procs::multi_get_args(&part.keys),
            ));
        }
        let results = if shard_parts.len() == 1 {
            let part = shard_parts.pop().expect("one part");
            vec![
                self.execute_single(part.shard, part.proc, &part.call, part.args, 1)?
                    .0,
            ]
        } else {
            self.execute_multi(shard_parts)?
        };
        let mut values = Vec::new();
        for result in &results {
            values.extend(crate::procs::decode_multi_get(result)?);
        }
        Ok(values)
    }

    /// The HLC snapshot fan-out: every part's shard traverses its version
    /// chains as of `snapshot`, in parallel, and the replies' clocks merge
    /// back into the coordinator's.
    fn snapshot_read_at(
        &self,
        snapshot: u64,
        parts: Vec<ReadPart>,
    ) -> CcResult<Vec<Option<Value>>> {
        let wait_ms = self.config.prepare_timeout_ms;
        // Single-shard hop on an inline transport: run the read on the
        // calling thread. A snapshot read takes no locks and writes
        // nothing, so it needs no worker; skipping the mailbox round-trip
        // matters because the multi-hop read profiles (look up the order,
        // then its lines) pay it once per hop. Only inline transports
        // qualify — the generic `call` waits unboundedly on a ticket a
        // faulty transport may drop.
        if parts.len() == 1 && self.transport.call_is_inline() {
            let part = &parts[0];
            let (shard_values, hlc) = self
                .transport
                .call(
                    part.shard,
                    ShardRequest::SnapshotRead {
                        snapshot,
                        wait_ms,
                        keys: part.keys.clone(),
                    },
                )
                .and_then(|reply| reply.into_snapshot())?;
            self.hlc.observe(hlc);
            return Ok(shard_values
                .into_iter()
                .map(|value| {
                    if value == Value::Null {
                        None
                    } else {
                        Some(value)
                    }
                })
                .collect());
        }
        let tickets: Vec<Ticket<ShardResult>> = parts
            .iter()
            .map(|part| {
                self.transport.submit(
                    part.shard,
                    ShardRequest::SnapshotRead {
                        snapshot,
                        wait_ms,
                        keys: part.keys.clone(),
                    },
                )
            })
            .collect();
        // The shard itself may spend up to `wait_ms` waiting out an
        // overlapping writer, so the outer deadline adds the transport's
        // own budget on top rather than racing the shard's.
        let timeout = Duration::from_millis(wait_ms) + self.config.prepare_timeout();
        let mut values = Vec::new();
        let mut failure: Option<tebaldi_cc::CcError> = None;
        for ticket in tickets {
            // Drain every ticket even past a failure: the reads are
            // independent, and abandoning a ticket would leak its window
            // slot until the transport times it out.
            match ticket
                .wait_timeout(timeout)
                .map(|r| r.and_then(|r| r.into_snapshot()))
            {
                Ok(Ok((shard_values, hlc))) => {
                    self.hlc.observe(hlc);
                    values.extend(shard_values.into_iter().map(|value| {
                        if value == Value::Null {
                            None
                        } else {
                            Some(value)
                        }
                    }));
                }
                Ok(Err(err)) | Err(err) => {
                    if failure.is_none() {
                        failure = Some(err);
                    }
                }
            }
        }
        match failure {
            Some(err) => Err(err),
            None => Ok(values),
        }
    }

    /// The follower-read fan-out behind
    /// [`ReadConsistency::BoundedStaleness`]: each shard's most caught-up
    /// replica serves its keys once it proves it holds the primary's
    /// durable prefix as of this call.
    fn bounded_read(&self, parts: &[ReadPart], max_lag: Duration) -> CcResult<Vec<Option<Value>>> {
        let mut values = Vec::new();
        for part in parts {
            let group = self
                .replication(part.shard)
                .expect("caller checked every shard is replicated");
            let replica = (0..group.replica_count())
                .max_by_key(|&index| group.acked_lsn(index))
                .ok_or_else(|| {
                    tebaldi_cc::CcError::Internal(format!("shard {} has no backups", part.shard))
                })?;
            let min_lsn = self.shard_logs.read()[part.shard].durable_len() as u64;
            for key in &part.keys {
                let value = group
                    .follower_read(replica, key, min_lsn, max_lag)
                    .map_err(|stale| tebaldi_cc::CcError::Internal(stale.to_string()))?;
                // Normalize tombstones to absence, matching the other
                // consistency levels.
                values.push(value.filter(|value| *value != Value::Null));
            }
        }
        Ok(values)
    }

    /// Fails `shard` over to its most caught-up backup: stops the old
    /// primary's worker pool, seals and recovers the follower's log
    /// (resolving in-doubt prepares against the coordinator's durable
    /// decision log — presumed abort without a commit decision), rebases
    /// the timestamp oracle past the recovered high-water mark, spawns a
    /// fresh worker pool + TCP server loop over the recovered store, and
    /// repoints the transport. Requires an addressed transport (TCP); the
    /// in-process transport holds direct worker handles and cannot
    /// repoint. The old primary's WAL is untouched — rejoin it with
    /// [`crate::replication::truncate_divergent_suffix`].
    pub fn promote_backup(&self, shard: usize) -> Result<RecoveryReport, String> {
        if !self.transport.supports_repoint() {
            return Err(
                "transport does not support repointing; failover needs the TCP transport"
                    .to_string(),
            );
        }
        let group = self
            .replication(shard)
            .ok_or_else(|| format!("shard {shard} has no replication group"))?;
        // Fence the ship stream BEFORE stopping the old primary: any
        // prepare still in flight on it now fails its quorum gate and
        // votes abort, so the dying primary cannot cast a yes-vote the
        // promoted backup never heard about. (Votes cast before the
        // failover are quorum-shipped by construction and resolve below
        // through the coordinator's decision log.)
        group.stop_shipping();
        // The most caught-up backup holds the longest durable prefix, so
        // nothing a quorum acknowledged is lost.
        let best = (0..group.replica_count())
            .max_by_key(|&index| group.acked_lsn(index))
            .ok_or_else(|| format!("shard {shard} has no backups"))?;

        // Stop the failed primary (idempotent if it already crashed).
        {
            let shards = self.shards.read();
            shards[shard].shutdown();
            shards[shard].db().shutdown();
        }

        let follower_log: Arc<dyn LogDevice> = group.promote(best)?;
        group.shutdown();

        // Re-poll-until-stable: a commit decision can be logged *while*
        // the replay below runs (another coordinator thread finishing a
        // 2PC whose vote the follower already holds). A single decision
        // snapshot taken before the replay would presume-abort such a
        // transaction — a durable commit decision silently losing its
        // writes on the promoted primary. So after each replay, re-poll
        // the decision log; if any global the replay presumed-aborted has
        // gained a commit decision, replay again against the fresh
        // snapshot. The loop terminates because only a presumed-abort
        // turning into a commit repeats it, and the in-doubt set is
        // finite. After `stop_shipping` above no *new* votes can land on
        // the follower log, so the final replay is authoritative.
        let mut decisions = self.coordinator.committed_globals_with_stamps();
        let (store, report) = loop {
            let (store, report) = recover_with_resolver(
                follower_log.as_ref(),
                MvStore::new(self.config.db_config.shards),
                &|global| decisions.get(&global).copied(),
            );
            if report.in_doubt_aborted_globals.is_empty() {
                break (store, report);
            }
            let latest = self.coordinator.committed_globals_with_stamps();
            let raced = report
                .in_doubt_aborted_globals
                .iter()
                .any(|global| latest.contains_key(global));
            if !raced {
                break (store, report);
            }
            decisions = latest;
        };

        let shard_metrics = Arc::new(if self.metrics.is_enabled() {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        // The promoted primary carries the failover count so the shard's
        // stats reply reports it.
        shard_metrics.counter("replication.failovers").inc();
        let db = Arc::new(
            Database::builder(self.config.db_config.clone())
                .procedures(self.procedures.clone())
                .cc_spec(self.spec.clone())
                .metrics(shard_metrics)
                .log_device(Arc::clone(&follower_log))
                .store(store)
                .build()?,
        );
        // A fresh database starts its timestamp oracle and txn-id
        // allocator at zero; new commits must order above every recovered
        // version, and new records appended to the inherited log must not
        // reuse txn ids the shipped prefix already holds (a collision
        // would corrupt the next replay of this log).
        db.oracle().advance_past(report.max_commit_ts);
        db.advance_txn_ids_past(report.max_txn_id);
        // The HLC re-bases alongside the other generators: new commits must
        // stamp above every recovered stamp, or a snapshot read could see a
        // post-failover commit ordered below a pre-failover one.
        db.hlc().advance_past(report.max_hlc);

        let workers = ShardWorkers::spawn_with_window(
            shard,
            db,
            self.config.workers_per_shard,
            Arc::clone(&self.proc_registry),
            self.config.max_inflight_per_shard,
        );
        let window = if self.config.max_inflight_per_shard > self.config.workers_per_shard {
            self.config.max_inflight_per_shard
        } else {
            0
        };
        let server = TcpShardServer::spawn_with_window(shard, Arc::clone(&workers), window)
            .map_err(|err| format!("promoted shard {shard} server: {err}"))?;
        if !self.transport.repoint(shard, server.addr()) {
            server.shutdown();
            workers.shutdown();
            return Err(
                "transport does not support repointing; failover needs the TCP transport"
                    .to_string(),
            );
        }

        self.shards.write()[shard] = workers;
        self.shard_logs.write()[shard] = follower_log;
        self.replication.write()[shard] = None;
        self.promoted_servers.lock().push(server);
        Ok(report)
    }

    /// Routes a partition key.
    pub fn shard_of(&self, partition_key: u64) -> usize {
        self.router.shard_of(partition_key)
    }

    /// Classifies a transaction's partition keys.
    pub fn classify(&self, partition_keys: impl IntoIterator<Item = u64>) -> Routing {
        self.router.classify(partition_keys)
    }

    /// Single-shard fast path: runs the registered procedure `proc` with
    /// `args` on `shard` through the transport (inline on the calling
    /// thread for the in-process transport, a frame round trip over TCP).
    /// Returns the body result and the number of aborted attempts.
    pub fn execute_single(
        &self,
        shard: usize,
        proc: ProcId,
        call: &ProcedureCall,
        args: Vec<u8>,
        max_attempts: usize,
    ) -> CcResult<(Value, usize)> {
        self.single_shard.inc();
        self.transport
            .call(
                shard,
                ShardRequest::Execute {
                    proc,
                    call: call.clone(),
                    args,
                    max_attempts: max_attempts as u32,
                    trace: self.next_trace(),
                },
            )?
            .into_executed()
            .map(|(value, aborts)| (value, aborts as usize))
    }

    /// Asynchronous submission through the shard's batched mailbox (or the
    /// shard's socket, over TCP).
    pub fn submit(
        &self,
        shard: usize,
        proc: ProcId,
        call: ProcedureCall,
        args: Vec<u8>,
        max_attempts: usize,
    ) -> Ticket<ShardResult> {
        self.single_shard.inc();
        self.transport.submit(
            shard,
            ShardRequest::Execute {
                proc,
                call,
                args,
                max_attempts: max_attempts as u32,
                trace: self.next_trace(),
            },
        )
    }

    /// Decides whether the next transaction is traced, allocating a
    /// process-unique trace id when it is. Every `trace_sample_every`-th
    /// transaction samples; `0` turns the sampler off.
    fn next_trace(&self) -> TraceCtx {
        let every = self.config.trace_sample_every;
        if every == 0 {
            return TraceCtx::NONE;
        }
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(every) {
            return TraceCtx::NONE;
        }
        // The trace id carries this cluster's scope in its high bits: ids
        // from concurrent clusters in one process never collide in the
        // shared sink, and scoped slow-trace APIs only see their own
        // cluster's dumps.
        let id = obs::scoped_trace_id(
            self.trace_scope,
            self.next_trace_id.fetch_add(1, Ordering::Relaxed),
        );
        self.last_trace_id.store(id, Ordering::Relaxed);
        TraceCtx::sampled(id)
    }

    /// The id of the most recently sampled trace (0 when nothing sampled
    /// yet). Pair with [`tebaldi_obs::collect`] to read its spans back.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id.load(Ordering::Relaxed)
    }

    /// This cluster's trace scope: the tag in the high bits of every trace
    /// id it allocates, distinguishing its spans and slow-trace dumps from
    /// other clusters sharing the process sink.
    pub fn trace_scope(&self) -> u64 {
        self.trace_scope
    }

    /// Drains the slow-transaction dumps belonging to *this* cluster
    /// (other clusters' dumps stay in the shared backlog).
    pub fn take_slow_traces(&self) -> Vec<obs::SlowTrace> {
        obs::take_slow_traces_scoped(self.trace_scope)
    }

    /// Runs one multi-shard transaction through two-phase commit. Every
    /// part prepares on its shard in parallel and reports its vote class:
    /// read-only parts (empty write set) commit and release at phase one
    /// and are excluded from phase two. When all vote yes, the commit point
    /// depends on how many read-write participants remain:
    ///
    /// * **≥ 2** — the commit decision is group-commit flushed to the
    ///   decision log, then applied on every read-write shard;
    /// * **exactly 1** — one-phase fast path: the surviving participant's
    ///   own commit record is the commit point, no decision record at all;
    /// * **0** — every part already committed at phase one; nothing to do.
    ///
    /// A prepare vote that does not arrive within the configured
    /// `prepare_timeout` counts as a "no": the transaction aborts with
    /// `CcError::Internal` instead of hanging on a wedged shard (the late
    /// prepare, if it ever lands, is aborted by the shard's orphan-decision
    /// check). Phase-two decision *acknowledgements* are bounded by the
    /// same timeout, so a shard that wedges after voting cannot hang the
    /// finalize step either — the outcome is already durable and the
    /// straggler resolves it on recovery. Returns the parts' results in
    /// submission order.
    pub fn execute_multi(&self, parts: Vec<ShardPart>) -> CcResult<Vec<Value>> {
        let trace = self.next_trace();
        let started = trace.is_sampled().then(obs::now_ns);
        let global = self.begin_phase_one(&parts)?;
        let tickets = self.submit_phase_one(global, parts, trace);
        let result = self.collect_and_decide(global, tickets, trace);
        if let Some(start) = started {
            obs::maybe_dump_slow(trace, obs::now_ns().saturating_sub(start));
        }
        result
    }

    /// Overlaps phase one across a whole batch of multi-shard
    /// transactions: every transaction's prepares are submitted before any
    /// vote is collected, so one caller thread keeps
    /// `batch.len() × parts` prepares in the shard pipelines at once
    /// (bounded by `max_inflight_per_shard` backpressure) instead of
    /// driving them one 2PC at a time. Votes are then collected and each
    /// transaction decided independently — a transaction's outcome never
    /// depends on its batch-mates. Returns one result per input
    /// transaction, in order.
    pub fn execute_multi_batch(&self, batch: Vec<Vec<ShardPart>>) -> Vec<CcResult<Vec<Value>>> {
        self.execute_multi_batch_declared(batch.into_iter().map(BatchTxn::undeclared).collect())
    }

    /// [`execute_multi_batch`](Cluster::execute_multi_batch) with
    /// dependency-graph scheduling over declared key sets (the DGCC idea
    /// from the paper's batching line of work): instead of racing every
    /// transaction in the batch and letting the CC mechanisms abort the
    /// conflicting ones, the coordinator builds the intra-batch conflict
    /// graph from the declared read/write sets and defers a transaction
    /// until the wave after its last conflicting predecessor. Waves are
    /// fully overlapped internally (every member's phase one is in flight
    /// before any vote is collected), so non-conflicting transactions keep
    /// the old pipeline parallelism while conflicting ones serialize by
    /// scheduling instead of aborting.
    ///
    /// Transaction `j` conflicts with an earlier `i` when `i`'s writes
    /// intersect `j`'s reads or writes, or `i`'s reads intersect `j`'s
    /// writes (WR, WW, or RW dependency). Earlier batch index wins, so the
    /// graph is acyclic by construction and the wave number is just the
    /// longest dependency chain ending at `j`. Transactions without a
    /// declaration all run in wave zero — exactly the pre-scheduling
    /// behavior — and never defer anyone (their footprint is unknown, so
    /// edges against them would be guesses). Declarations are hints:
    /// mechanisms still validate every real access, so a wrong or missing
    /// declaration can cost an abort but never correctness. Returns one
    /// result per input transaction, in input order.
    pub fn execute_multi_batch_declared(&self, batch: Vec<BatchTxn>) -> Vec<CcResult<Vec<Value>>> {
        // Wave assignment: longest declared-conflict chain ending at each
        // transaction. O(n²) set intersections — batches are small (tens),
        // and each comparison is a hash probe per key.
        let footprints: Vec<Option<(HashSet<Key>, HashSet<Key>)>> = batch
            .iter()
            .map(|txn| {
                txn.keys.as_ref().map(|k| {
                    (
                        k.reads.iter().copied().collect::<HashSet<Key>>(),
                        k.writes.iter().copied().collect::<HashSet<Key>>(),
                    )
                })
            })
            .collect();
        let mut wave = vec![0usize; batch.len()];
        for j in 0..batch.len() {
            let Some((reads_j, writes_j)) = &footprints[j] else {
                continue;
            };
            for i in 0..j {
                let Some((reads_i, writes_i)) = &footprints[i] else {
                    continue;
                };
                let conflict = writes_i
                    .iter()
                    .any(|k| reads_j.contains(k) || writes_j.contains(k))
                    || reads_i.iter().any(|k| writes_j.contains(k));
                if conflict {
                    wave[j] = wave[j].max(wave[i] + 1);
                }
            }
            if wave[j] > 0 {
                self.batch_scheduled.inc();
            }
        }
        let n_waves = wave.iter().max().map_or(0, |w| w + 1);

        // Execute wave by wave. Within a wave: submit every phase one,
        // then collect and decide — the same two-stage overlap as the
        // undeclared path. Between waves: a barrier, so a deferred
        // transaction only starts once its conflicting predecessors have
        // released their write intents (committed or aborted).
        let mut results: Vec<Option<CcResult<Vec<Value>>>> = batch.iter().map(|_| None).collect();
        let mut remaining: Vec<Option<BatchTxn>> = batch.into_iter().map(Some).collect();
        // One staged phase-one submission: (global txn id, per-shard vote
        // tickets, trace context, start ns).
        type Staged = CcResult<(u64, VoteTickets, TraceCtx, u64)>;
        for current in 0..n_waves {
            let mut staged: Vec<(usize, Staged)> = Vec::new();
            for (j, slot) in remaining.iter_mut().enumerate() {
                if wave[j] != current {
                    continue;
                }
                let txn = slot
                    .take()
                    .expect("each transaction runs in exactly one wave");
                let trace = self.next_trace();
                let started = if trace.is_sampled() { obs::now_ns() } else { 0 };
                let stage = self.begin_phase_one(&txn.parts).map(|global| {
                    (
                        global,
                        self.submit_phase_one(global, txn.parts, trace),
                        trace,
                        started,
                    )
                });
                staged.push((j, stage));
            }
            for (j, stage) in staged {
                let result = stage.and_then(|(global, tickets, trace, started)| {
                    let result = self.collect_and_decide(global, tickets, trace);
                    if trace.is_sampled() {
                        obs::maybe_dump_slow(trace, obs::now_ns().saturating_sub(started));
                    }
                    result
                });
                if result.is_err() {
                    self.batch_aborts.inc();
                }
                results[j] = Some(result);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every transaction was assigned to a wave"))
            .collect()
    }

    /// Validates a multi-shard part list and assigns the global id.
    fn begin_phase_one(&self, parts: &[ShardPart]) -> CcResult<u64> {
        if parts.len() < 2 {
            return Err(tebaldi_cc::CcError::Internal(
                "multi-shard execution needs at least two parts; use execute_single".to_string(),
            ));
        }
        {
            // Two parts on one shard would share the global id in the
            // shard's in-doubt table: the second prepare would silently
            // replace (and thereby abort) the first, breaking atomicity.
            let mut sorted: Vec<usize> = parts.iter().map(|p| p.shard).collect();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                return Err(tebaldi_cc::CcError::Internal(
                    "each shard may contribute at most one part of a multi-shard transaction"
                        .to_string(),
                ));
            }
            let shard_count = self.shard_count();
            if let Some(&out_of_range) = sorted.iter().find(|&&s| s >= shard_count) {
                return Err(tebaldi_cc::CcError::Internal(format!(
                    "part targets shard {out_of_range}, but the cluster has {shard_count} shards"
                )));
            }
        }
        self.multi_shard.inc();
        Ok(self.coordinator.begin_global())
    }

    /// Submits every part's prepare to its shard (phase one, in parallel)
    /// and returns the vote tickets.
    fn submit_phase_one(&self, global: u64, parts: Vec<ShardPart>, trace: TraceCtx) -> VoteTickets {
        let started = (self.metrics.is_enabled() || trace.is_sampled()).then(obs::now_ns);
        let tickets = parts
            .into_iter()
            .map(|part| {
                (
                    part.shard,
                    self.transport.submit(
                        part.shard,
                        ShardRequest::Prepare {
                            global,
                            proc: part.proc,
                            call: part.call,
                            args: part.args,
                            trace,
                        },
                    ),
                )
            })
            .collect();
        if let Some(start) = started {
            let end = obs::now_ns();
            self.phase_fanout.record(end.saturating_sub(start));
            obs::record_span(trace, "coord.prepare_fanout", -1, start, end, "ok");
        }
        tickets
    }

    /// Collects the phase-one votes of `global` and drives phase two to a
    /// decision (the second half of [`execute_multi`](Cluster::execute_multi)).
    fn collect_and_decide(
        &self,
        global: u64,
        tickets: VoteTickets,
        trace: TraceCtx,
    ) -> CcResult<Vec<Value>> {
        let timeout = self.config.prepare_timeout();
        let collect_start = (self.metrics.is_enabled() || trace.is_sampled()).then(obs::now_ns);
        let mut values = Vec::with_capacity(tickets.len());
        let mut failure: Option<tebaldi_cc::CcError> = None;
        // Shards that hold (read-write) or may still come to hold
        // (timed-out vote) a prepared transaction: exactly the set that
        // needs a decision. Read-only and no-voting parts released already.
        let mut rw_shards: Vec<usize> = Vec::new();
        let mut unknown_shards: Vec<usize> = Vec::new();
        for (shard, ticket) in tickets {
            let vote_start = trace.is_sampled().then(obs::now_ns);
            // Keep collecting: every vote must resolve (or time out)
            // before the decision is sent.
            let vote = ticket
                .wait_timeout(timeout)
                .map(|r| r.and_then(|r| r.into_prepared()));
            if let Some(start) = vote_start {
                // One span per vote, tagged with the shard and the reason
                // the vote failed (mechanism or timeout) when it did.
                let status = match &vote {
                    Ok(Ok(_)) => "ok",
                    Ok(Err(err)) => error_status(err),
                    Err(_) => "timeout",
                };
                obs::record_span(
                    trace,
                    "coord.vote",
                    shard as i32,
                    start,
                    obs::now_ns(),
                    status,
                );
            }
            match vote {
                Ok(Ok((value, Vote::ReadWrite, vote_hlc))) => {
                    self.hlc.observe(vote_hlc);
                    values.push(value);
                    rw_shards.push(shard);
                }
                Ok(Ok((value, Vote::ReadOnly, vote_hlc))) => {
                    self.hlc.observe(vote_hlc);
                    values.push(value);
                    self.read_only_votes.inc();
                }
                Ok(Err(err)) => {
                    // The part aborted itself; nothing is parked there.
                    if failure.is_none() {
                        failure = Some(err);
                    }
                }
                Err(err) => {
                    // Timed out (or the connection died): the shard's vote
                    // is unknown and a late prepare may still park, so the
                    // abort decision must reach it.
                    unknown_shards.push(shard);
                    if failure.is_none() {
                        failure = Some(err);
                    }
                }
            }
        }
        if let Some(start) = collect_start {
            let end = obs::now_ns();
            self.phase_vote_collect.record(end.saturating_sub(start));
            obs::record_span(trace, "coord.vote_collect", -1, start, end, "ok");
        }

        // Phase two: decide. The decision requests resolve inline for the
        // in-process transport — commit of a prepared transaction is
        // infallible and lock-free to reach — and as acknowledged frames
        // over TCP. The window measured here (all votes in → all decisions
        // acknowledged) is exactly the span the flush coalescing and
        // vote-class fast paths shorten.
        let votes_collected = (self.clock)();
        // The decision stamp is drawn after *every* vote clock has been
        // observed, so it exceeds each participant's clock as of the
        // moment its prepared versions were installed. A snapshot reader
        // whose snapshot `h >= d` on any shard therefore started (and
        // observed `h` into that shard's clock) after all prepares were
        // visible — the commit is all-or-nothing at `h` on every shard.
        let decision_hlc = self.hlc.now();
        let result = match failure {
            None => {
                match rw_shards.len() {
                    0 => {
                        // Every part voted ReadOnly and already committed.
                        self.coordinator.commit_read_only();
                    }
                    1 => {
                        // One-phase fast path: the lone read-write
                        // participant's own commit record is the commit
                        // point; no decision record is written. If the
                        // decision acknowledgement fails, the participant
                        // may still be parked in doubt with NO commit
                        // record anywhere — recovery would presume abort
                        // for a transaction this call is about to report
                        // committed — so the fast path falls back to a
                        // durable decision record before returning.
                        self.coordinator.commit_one_phase();
                        if self.finalize(
                            &rw_shards[..1],
                            global,
                            true,
                            decision_hlc,
                            timeout,
                            trace,
                        ) > 0
                        {
                            self.coordinator.log_straggler_commit(global, decision_hlc);
                        }
                    }
                    _ => {
                        // Commit point: the decision is durable before any
                        // shard learns about it.
                        self.log_decision(trace, "commit", || {
                            self.coordinator.log_commit(global, decision_hlc)
                        });
                        self.finalize(&rw_shards, global, true, decision_hlc, timeout, trace);
                    }
                }
                Ok(values)
            }
            Some(err) => {
                if !rw_shards.is_empty() || !unknown_shards.is_empty() {
                    self.log_decision(trace, "abort", || self.coordinator.log_abort(global));
                    let targets: Vec<usize> = rw_shards
                        .iter()
                        .chain(unknown_shards.iter())
                        .copied()
                        .collect();
                    self.finalize(&targets, global, false, 0, timeout, trace);
                } else {
                    // Every part self-aborted (or was read-only): nothing
                    // is prepared anywhere, but the global still aborted.
                    self.coordinator.note_abort();
                }
                Err(err)
            }
        };
        // Only transactions that actually parked a prepared participant
        // (or may have — timed-out votes) held locks across phase two;
        // averaging in read-only/self-aborted globals would dilute the
        // metric toward zero.
        if !rw_shards.is_empty() || !unknown_shards.is_empty() {
            self.lock_window_ns
                .add((self.clock)().saturating_sub(votes_collected));
            self.lock_windows.inc();
        }
        result
    }

    /// Runs (and times) the durable decision-log append: one histogram
    /// sample plus — for sampled transactions — a `coord.decision_log`
    /// span tagged with the decision.
    fn log_decision(&self, trace: TraceCtx, decision: &'static str, append: impl FnOnce()) {
        let started = (self.metrics.is_enabled() || trace.is_sampled()).then(obs::now_ns);
        append();
        if let Some(start) = started {
            let end = obs::now_ns();
            self.phase_decision_log.record(end.saturating_sub(start));
            obs::record_span(trace, "coord.decision_log", -1, start, end, decision);
        }
    }

    /// Delivers the phase-two decision to every target shard in parallel
    /// and waits for the acknowledgements under one shared deadline of
    /// `timeout` total (not per shard — k wedged shards must not stall the
    /// caller k × timeout). A timed-out ack is counted (the shard wedged
    /// after voting) but does not change the outcome: the decision record
    /// (written by the caller — before finalize for multi-participant
    /// commits, as a fallback after it for one-phase) lets the straggler
    /// resolve on recovery or late delivery. Returns how many
    /// acknowledgements failed.
    fn finalize(
        &self,
        shards: &[usize],
        global: u64,
        commit: bool,
        hlc: u64,
        timeout: Duration,
        trace: TraceCtx,
    ) -> usize {
        let started = (self.metrics.is_enabled() || trace.is_sampled()).then(obs::now_ns);
        let one_phase = commit && shards.len() == 1;
        let acks: Vec<Ticket<ShardResult>> = shards
            .iter()
            .map(|&shard| {
                let request = if !commit {
                    ShardRequest::Abort { global }
                } else if one_phase {
                    ShardRequest::CommitOnePhase { global, hlc }
                } else {
                    ShardRequest::Commit { global, hlc }
                };
                self.transport.submit(shard, request)
            })
            .collect();
        let deadline = std::time::Instant::now() + timeout;
        let mut failed = 0;
        for ack in acks {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            // Delivered means the shard positively acknowledged: an outer
            // error is a timeout/disconnect, an *inner* error is a
            // transport-reported failure (e.g. the send itself failed and
            // came back as a ready Err ticket) — both mean the decision
            // may never have reached the shard.
            if !matches!(ack.wait_timeout(remaining), Ok(Ok(_))) {
                self.decision_ack_timeouts.inc();
                failed += 1;
            }
        }
        if let Some(start) = started {
            let end = obs::now_ns();
            self.phase_finalize.record(end.saturating_sub(start));
            let status = match (commit, failed) {
                (true, 0) => "commit",
                (false, 0) => "abort",
                _ => "timeout",
            };
            obs::record_span(trace, "coord.finalize", -1, start, end, status);
        }
        failed
    }

    /// The unified transaction entry point: runs `parts` as one
    /// multi-shard transaction under `opts` — up to `opts.max_attempts`
    /// attempts, parts cloned per attempt. Returns the results and the
    /// number of aborted attempts. The old entry-point fan
    /// ([`execute_multi`](Cluster::execute_multi),
    /// [`execute_multi_with_retry`](Cluster::execute_multi_with_retry),
    /// [`execute_multi_batch_declared`](Cluster::execute_multi_batch_declared))
    /// delegates here or to [`execute_batch`](Cluster::execute_batch).
    pub fn execute(
        &self,
        parts: Vec<ShardPart>,
        opts: &TxnOptions,
    ) -> CcResult<(Vec<Value>, usize)> {
        self.execute_with(opts, || parts.clone())
    }

    /// [`execute`](Cluster::execute) for transactions whose parts must be
    /// rebuilt each attempt (fresh instance seeds, re-read dependent
    /// state). Distributed deadlocks resolve through lock timeouts, so
    /// retry is the normal path under contention.
    pub fn execute_with(
        &self,
        opts: &TxnOptions,
        mut parts: impl FnMut() -> Vec<ShardPart>,
    ) -> CcResult<(Vec<Value>, usize)> {
        let mut aborts = 0;
        loop {
            let attempt = parts();
            // One part is a single-shard transaction, not a 2PC — route it
            // down the fast path (which carries its own retry budget).
            if attempt.len() == 1 {
                let part = attempt.into_iter().next().expect("one part");
                return self
                    .execute_single(
                        part.shard,
                        part.proc,
                        &part.call,
                        part.args,
                        opts.max_attempts,
                    )
                    .map(|(value, part_aborts)| (vec![value], aborts + part_aborts));
            }
            match self.execute_multi(attempt) {
                Ok(values) => return Ok((values, aborts)),
                // Unreachable errors are coordinator-retry-safe even when
                // `maybe_delivered` is true: a prepare whose vote was lost
                // counts as "no", the transaction presumed-aborts, and any
                // shard that did prepare aborts on resolution — so a fresh
                // attempt under a new transaction id cannot double-apply.
                Err(err)
                    if (err.is_retryable() || err.is_unreachable())
                        && aborts + 1 < opts.max_attempts =>
                {
                    aborts += 1;
                    std::thread::sleep(std::time::Duration::from_micros(
                        200 * aborts.min(10) as u64,
                    ));
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Runs a batch of transactions, each under its options' declared key
    /// sets (dependency-graph scheduled — see
    /// [`execute_multi_batch_declared`](Cluster::execute_multi_batch_declared)).
    pub fn execute_batch(
        &self,
        batch: Vec<(Vec<ShardPart>, TxnOptions)>,
    ) -> Vec<CcResult<Vec<Value>>> {
        self.execute_multi_batch_declared(
            batch
                .into_iter()
                .map(|(parts, opts)| match opts.declared_sets {
                    Some(sets) => BatchTxn::declared(parts, sets),
                    None => BatchTxn::undeclared(parts),
                })
                .collect(),
        )
    }

    /// Retries [`execute_multi`](Cluster::execute_multi) on retryable
    /// conflicts, rebuilding the parts each attempt. Thin wrapper over
    /// [`execute_with`](Cluster::execute_with).
    pub fn execute_multi_with_retry(
        &self,
        max_attempts: usize,
        parts: impl FnMut() -> Vec<ShardPart>,
    ) -> CcResult<(Vec<Value>, usize)> {
        self.execute_with(&TxnOptions::new().retry(max_attempts), parts)
    }

    /// Loads a key on the shard owning `partition_key`, bypassing
    /// concurrency control (workload loaders).
    pub fn load(&self, partition_key: u64, key: tebaldi_storage::Key, value: Value) {
        self.shard(self.shard_of(partition_key)).load(key, value);
    }

    /// Aggregate counters. `flushes` sums every shard WAL's device flushes
    /// with the coordinator's decision-log flushes; `flushes_per_commit`
    /// divides by the committed transactions across all shards (each
    /// multi-shard part counts on its shard). `messages_sent` and
    /// `bytes_on_wire` come from the transport (zero in process).
    pub fn stats(&self) -> ClusterStats {
        let coordinator = self.coordinator.stats();
        let TransportStats {
            messages_sent,
            bytes_on_wire,
            reconnects,
        } = self.transport.stats();
        let mut stats = ClusterStats {
            single_shard: self.single_shard.get(),
            multi_shard: self.multi_shard.get(),
            read_only_votes: self.read_only_votes.get(),
            batch_scheduled: self.batch_scheduled.get(),
            batch_aborts: self.batch_aborts.get(),
            decision_ack_timeouts: self.decision_ack_timeouts.get(),
            flushes: coordinator.decision_flushes,
            messages_sent,
            bytes_on_wire,
            reconnects,
            coordinator,
            ..ClusterStats::default()
        };
        let mut queued = 0u64;
        let mut queue_wait_ns = 0u64;
        let mut hardened = 0u64;
        let mut hardening_ns = 0u64;
        let shards = self.shards.read().clone();
        for shard in &shards {
            let snapshot = shard.db().stats();
            stats.committed += snapshot.committed;
            stats.aborted += snapshot.aborted;
            let durability = shard.db().durability().stats();
            stats.flushes += durability.flushes;
            stats.coalesced_flushes += durability.coalesced;
            let pipeline = shard.pipeline_stats();
            queued += pipeline.queued;
            queue_wait_ns += pipeline.queue_wait_ns;
            hardened += pipeline.hardened;
            hardening_ns += pipeline.hardening_ns;
            stats.max_pipeline_depth = stats.max_pipeline_depth.max(pipeline.max_depth);
            let registry = shard.db().metrics();
            stats.follower_reads += registry.counter("replication.follower_reads").get();
            stats.snapshot_reads += registry.counter("snapshot.reads").get();
            stats.snapshot_read_wait_ns += registry.counter("snapshot.read_wait_ns").get();
            stats.failovers += registry.counter("replication.failovers").get();
            stats.replica_acks_timed_out += registry.counter("replication.acks_timed_out").get();
        }
        stats.prepare_queue_wait_ns = queue_wait_ns.checked_div(queued).unwrap_or(0);
        stats.prepare_hardening_ns = hardening_ns.checked_div(hardened).unwrap_or(0);
        if stats.committed > 0 {
            stats.flushes_per_commit = stats.flushes as f64 / stats.committed as f64;
        }
        stats.prepared_lock_window_ns = self
            .lock_window_ns
            .get()
            .checked_div(self.lock_windows.get())
            .unwrap_or(0);
        stats
    }

    /// The coordinator-side metrics registry (the cluster's own counters
    /// and 2PC phase histograms; shard engines keep their own registries).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// One merged metrics snapshot for the whole cluster: the coordinator
    /// registry plus every shard's, fetched through the transport
    /// ([`ShardRequest::Metrics`] — an admin frame over TCP, an inline
    /// call in process). Counters sum, gauges max, histograms merge
    /// bucket-wise across shards.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = self.metrics.snapshot();
        for shard in 0..self.shard_count() {
            if let Ok(ShardResponse::Metrics(snapshot)) =
                self.transport.call(shard, ShardRequest::Metrics)
            {
                merged.merge(&snapshot);
            }
        }
        merged
    }

    /// The merged cluster metrics in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }

    /// The merged cluster metrics as a JSON document.
    pub fn metrics_json(&self) -> String {
        serde_json::to_string_pretty(&self.metrics()).unwrap_or_default()
    }

    /// Resets per-shard engine counters (between benchmark phases).
    pub fn reset_stats(&self) {
        for shard in self.shards.read().iter() {
            shard.db().reset_stats();
        }
    }

    /// Number of prepared transactions currently in doubt across shards.
    pub fn in_doubt_count(&self) -> usize {
        self.shards.read().iter().map(|s| s.in_doubt_count()).sum()
    }

    /// Stops the transport, worker pools, replication groups, and every
    /// shard.
    pub fn shutdown(&self) {
        self.transport.shutdown();
        for server in self.promoted_servers.lock().iter() {
            server.shutdown();
        }
        let shards = self.shards.read().clone();
        for shard in &shards {
            shard.shutdown();
        }
        for group in self.replication.read().iter().flatten() {
            group.shutdown();
        }
        for shard in &shards {
            shard.db().shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A pinned HLC snapshot over the whole cluster (see
/// [`Cluster::snapshot`]): every read through the handle observes the
/// same cut, across shards and across calls, so multi-hop read profiles
/// (read an index, then the rows it names) stay mutually consistent
/// without a transaction.
pub struct SnapshotHandle<'a> {
    cluster: &'a Cluster,
    snapshot: u64,
}

impl SnapshotHandle<'_> {
    /// The pinned HLC stamp.
    pub fn hlc(&self) -> u64 {
        self.snapshot
    }

    /// Reads `parts` as of the pinned stamp (flattened in part order,
    /// `None` for absent keys).
    pub fn read(&self, parts: Vec<ReadPart>) -> CcResult<Vec<Option<Value>>> {
        self.cluster.snapshot_read_at(self.snapshot, parts)
    }

    /// Reads partition-keyed `keys` as of the pinned stamp, values in
    /// input order.
    pub fn read_keyed(&self, keys: Vec<(u64, Key)>) -> CcResult<Vec<Option<Value>>> {
        let (parts, order) = self.cluster.keyed_parts(&keys);
        let flat = self.read(parts)?;
        let mut values = vec![None; keys.len()];
        for (value, index) in flat.into_iter().zip(order) {
            values[index] = value;
        }
        Ok(values)
    }
}

/// Recovers every shard store from its WAL, resolving in-doubt prepared
/// transactions against the coordinator's decision log: a prepared global
/// id commits iff the decision log holds a durable commit decision for it
/// (presumed abort otherwise). Returns one `(store, report)` per shard, in
/// shard order; reopen them with
/// [`ClusterBuilder::stores`].
pub fn recover_cluster(
    shard_logs: &[Arc<dyn LogDevice>],
    decision_log: &dyn LogDevice,
    shards_per_store: usize,
) -> Vec<(MvStore, RecoveryReport)> {
    let decisions: HashMap<u64, u64> = decision_log
        .read_back()
        .into_iter()
        .filter_map(|record| match record {
            tebaldi_storage::wal::LogRecord::Decision {
                global,
                commit: true,
                hlc,
            } => Some((global, hlc)),
            _ => None,
        })
        .collect();
    shard_logs
        .iter()
        .map(|log| {
            recover_with_resolver(log.as_ref(), MvStore::new(shards_per_store), &|global| {
                decisions.get(&global).copied()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procs;
    use tebaldi_cc::{AccessMode, CcError, CcKind, ProcedureInfo};
    use tebaldi_storage::{Key, TableId, TxnTypeId};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);
    /// Test-only procedure: sleep 400ms, then increment (wedges a shard
    /// past the prepare timeout).
    const WEDGE: ProcId = ProcId(900);
    /// Test-only procedure: increment, then request an abort.
    const POISON: ProcId = ProcId(901);

    fn procedures() -> ProcedureSet {
        let mut set = ProcedureSet::new();
        set.insert(ProcedureInfo::new(
            TY,
            "transfer",
            vec![(TABLE, AccessMode::Write)],
        ));
        set
    }

    fn builder_with_test_procs(config: ClusterConfig) -> ClusterBuilder {
        Cluster::builder(config)
            .procedures(procedures())
            .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
            .shard_procedure(WEDGE, |txn, args| {
                let mut r = tebaldi_storage::codec::ByteReader::new(args);
                let key = r.key().map_err(|e| CcError::Internal(e.to_string()))?;
                std::thread::sleep(std::time::Duration::from_millis(400));
                txn.increment(key, 0, 30).map(Value::Int)
            })
            .shard_procedure(POISON, |txn, args| {
                let mut r = tebaldi_storage::codec::ByteReader::new(args);
                let key = r.key().map_err(|e| CcError::Internal(e.to_string()))?;
                txn.increment(key, 0, 30)?;
                Err(txn.request_abort())
            })
    }

    fn cluster(shards: usize) -> Cluster {
        let mut config = ClusterConfig::for_tests(shards);
        config.db_config.durability = tebaldi_core::DurabilityMode::Synchronous;
        builder_with_test_procs(config).build().unwrap()
    }

    fn account_key(account: u64) -> Key {
        Key::simple(TABLE, account)
    }

    fn balance(cluster: &Cluster, account: u64) -> i64 {
        let shard = cluster.shard_of(account);
        let (value, _) = cluster
            .execute_single(
                shard,
                procs::KV_GET,
                &ProcedureCall::new(TY),
                procs::key_args(account_key(account)),
                10,
            )
            .unwrap();
        value.as_int().unwrap_or(0)
    }

    #[test]
    fn cross_shard_transfer_commits_atomically() {
        let cluster = cluster(4);
        // Accounts 1 and 2 live on different shards under modulo routing.
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        assert!(!cluster.classify([1u64, 2u64]).is_single());

        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                -30,
            ),
            procs::increment_part(
                cluster.shard_of(2),
                ProcedureCall::new(TY),
                account_key(2),
                0,
                30,
            ),
        ];
        let values = cluster.execute_multi(parts).unwrap();
        assert_eq!(values, vec![Value::Int(70), Value::Int(130)]);
        assert_eq!(balance(&cluster, 1), 70);
        assert_eq!(balance(&cluster, 2), 130);
        assert_eq!(cluster.in_doubt_count(), 0);
        assert_eq!(cluster.stats().multi_shard, 1);
        assert_eq!(cluster.coordinator().stats().committed, 1);
    }

    #[test]
    fn one_read_write_participant_commits_one_phase_without_decision_records() {
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        // Part on shard of account 1 writes; part on shard of account 2
        // only reads → it votes ReadOnly and the commit degenerates to
        // one-phase: zero decision-log appends.
        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                5,
            ),
            procs::get_part(cluster.shard_of(2), ProcedureCall::new(TY), account_key(2)),
        ];
        let values = cluster.execute_multi(parts).unwrap();
        assert_eq!(values, vec![Value::Int(105), Value::Int(100)]);
        assert_eq!(balance(&cluster, 1), 105);
        assert_eq!(cluster.in_doubt_count(), 0);
        let stats = cluster.stats();
        assert_eq!(stats.read_only_votes, 1);
        assert_eq!(stats.coordinator.committed, 1);
        assert_eq!(stats.coordinator.one_phase, 1);
        assert_eq!(
            stats.coordinator.decisions_logged, 0,
            "one-phase commit must not append to the decision log"
        );
        // Only the once-per-block id-reservation marker may exist — never
        // a commit decision, and nothing for this transaction's id.
        assert!(
            cluster
                .coordinator()
                .decision_log()
                .read_back()
                .iter()
                .all(|r| matches!(
                    r,
                    tebaldi_storage::wal::LogRecord::Decision { commit: false, .. }
                )),
            "decision log must hold no commit decisions"
        );
    }

    #[test]
    fn fully_read_only_transaction_writes_no_log_records() {
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(10));
        cluster.load(2, account_key(2), Value::Int(20));
        let parts = vec![
            procs::get_part(cluster.shard_of(1), ProcedureCall::new(TY), account_key(1)),
            procs::get_part(cluster.shard_of(2), ProcedureCall::new(TY), account_key(2)),
        ];
        let values = cluster.execute_multi(parts).unwrap();
        assert_eq!(values, vec![Value::Int(10), Value::Int(20)]);
        let stats = cluster.stats();
        assert_eq!(stats.read_only_votes, 2);
        assert_eq!(stats.coordinator.read_only, 1);
        assert_eq!(stats.coordinator.decisions_logged, 0);
        // No prepare records either: both shard WALs saw no Prepare.
        for index in 0..2 {
            assert!(cluster
                .shard(index)
                .durability()
                .device()
                .read_back()
                .iter()
                .all(|r| !matches!(r, tebaldi_storage::wal::LogRecord::Prepare { .. })));
        }
        assert_eq!(cluster.in_doubt_count(), 0);
    }

    #[test]
    fn wedged_shard_prepare_times_out_and_aborts() {
        let mut config = ClusterConfig::for_tests(2);
        config.db_config.durability = tebaldi_core::DurabilityMode::Synchronous;
        config.prepare_timeout_ms = 100;
        let cluster = builder_with_test_procs(config).build().unwrap();
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                -30,
            ),
            // Wedge the other shard well past the prepare timeout.
            ShardPart::new(
                cluster.shard_of(2),
                ProcedureCall::new(TY),
                WEDGE,
                procs::key_args(account_key(2)),
            ),
        ];
        let err = cluster.execute_multi(parts).unwrap_err();
        assert!(
            matches!(err, tebaldi_cc::CcError::Internal(_)),
            "a vote timeout surfaces as CcError::Internal, got {err:?}"
        );
        assert_eq!(balance(&cluster, 1), 100, "prepared part must roll back");
        // Give the wedged prepare time to land and hit the orphaned abort
        // decision: it must abort rather than park holding locks.
        std::thread::sleep(std::time::Duration::from_millis(600));
        assert_eq!(cluster.in_doubt_count(), 0, "late prepare must not park");
        assert_eq!(balance(&cluster, 2), 100);
    }

    /// A transport decorator that swallows phase-two decision requests:
    /// the shard never acknowledges, simulating a participant that wedges
    /// *after* voting. `execute_multi` must still return within the
    /// timeout and count the missing acks.
    struct DecisionBlackhole {
        inner: InProcessTransport,
        /// `true`: decision submissions fail fast with a ready `Err`
        /// ticket (a dead connection's failed send). `false`: they stay
        /// pending forever (a wedged shard), via `swallowed` keeping the
        /// reply senders alive so the tickets time out instead of
        /// resolving with a disconnect error.
        reject: bool,
        swallowed: parking_lot::Mutex<Vec<std::sync::mpsc::Sender<ShardResult>>>,
    }

    impl ShardTransport for DecisionBlackhole {
        fn shard_count(&self) -> usize {
            self.inner.shard_count()
        }

        fn submit(&self, shard: usize, request: ShardRequest) -> Ticket<ShardResult> {
            if request.is_decision() {
                if self.reject {
                    // The send itself failed: the inner result is the
                    // error, the ticket resolves instantly.
                    return Ticket::ready(Err(CcError::Internal(
                        "decision send failed".to_string(),
                    )));
                }
                // Never delivered, never acknowledged.
                let (tx, ticket) = Ticket::pending();
                self.swallowed.lock().push(tx);
                return ticket;
            }
            self.inner.submit(shard, request)
        }

        fn call(&self, shard: usize, request: ShardRequest) -> ShardResult {
            self.inner.call(shard, request)
        }
    }

    #[test]
    fn wedged_decision_ack_cannot_hang_finalize() {
        let mut config = ClusterConfig::for_tests(2);
        config.db_config.durability = tebaldi_core::DurabilityMode::Synchronous;
        config.prepare_timeout_ms = 150;
        let cluster = builder_with_test_procs(config)
            .transport_factory(Box::new(|shards| {
                Ok(Arc::new(DecisionBlackhole {
                    inner: InProcessTransport::new(shards.to_vec()),
                    reject: false,
                    swallowed: parking_lot::Mutex::new(Vec::new()),
                }) as Arc<dyn ShardTransport>)
            }))
            .build()
            .unwrap();
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                -30,
            ),
            procs::increment_part(
                cluster.shard_of(2),
                ProcedureCall::new(TY),
                account_key(2),
                0,
                30,
            ),
        ];
        let started = std::time::Instant::now();
        // Both parts prepare fine; the decisions vanish. The transaction
        // still commits (the decision is durable) and the call returns
        // within ~2 timeouts instead of hanging.
        let values = cluster.execute_multi(parts).unwrap();
        assert_eq!(values.len(), 2);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "finalize must not hang on missing decision acks"
        );
        let stats = cluster.stats();
        assert_eq!(stats.decision_ack_timeouts, 2);
        assert_eq!(stats.coordinator.committed, 1);
        // The decisions never reached the shards: both parts stay parked
        // until recovery would resolve them against the decision log.
        assert_eq!(cluster.in_doubt_count(), 2);
    }

    #[test]
    fn one_phase_straggler_ack_logs_a_durable_commit_decision() {
        // One read-write + one read-only part → one-phase fast path, but
        // the decision frame vanishes. The participant's own commit record
        // (the usual one-phase commit point) was never written, so the
        // coordinator must fall back to a durable decision record — or
        // recovery would presume abort for a transaction this call
        // reported committed.
        let mut config = ClusterConfig::for_tests(2);
        config.db_config.durability = tebaldi_core::DurabilityMode::Synchronous;
        config.prepare_timeout_ms = 150;
        let cluster = builder_with_test_procs(config)
            .transport_factory(Box::new(|shards| {
                Ok(Arc::new(DecisionBlackhole {
                    inner: InProcessTransport::new(shards.to_vec()),
                    reject: false,
                    swallowed: parking_lot::Mutex::new(Vec::new()),
                }) as Arc<dyn ShardTransport>)
            }))
            .build()
            .unwrap();
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                5,
            ),
            procs::get_part(cluster.shard_of(2), ProcedureCall::new(TY), account_key(2)),
        ];
        let values = cluster.execute_multi(parts).unwrap();
        assert_eq!(values, vec![Value::Int(105), Value::Int(100)]);
        let stats = cluster.stats();
        assert_eq!(stats.coordinator.one_phase, 1);
        assert_eq!(stats.decision_ack_timeouts, 1);
        assert_eq!(
            cluster.coordinator().committed_globals().len(),
            1,
            "the fallback decision record must be durable"
        );
        // Recovery resolves the still-parked participant to COMMIT.
        let logs: Vec<Arc<dyn LogDevice>> = (0..2).map(|i| cluster.shard_log(i)).collect();
        let decision_log = cluster.coordinator().decision_log();
        let recovered = recover_cluster(&logs, decision_log.as_ref(), 4);
        let rw_shard = cluster.shard_of(1);
        assert_eq!(recovered[rw_shard].1.in_doubt, 1);
        assert_eq!(recovered[rw_shard].1.in_doubt_committed, 1);
        assert_eq!(
            recovered[rw_shard]
                .0
                .read(&account_key(1), tebaldi_storage::ReadSpec::LatestCommitted),
            Some(Value::Int(105)),
            "the write the caller was told committed must survive"
        );
    }

    #[test]
    fn one_phase_rejected_decision_send_also_logs_a_commit_decision() {
        // Same scenario, but the decision *send* fails instantly (dead
        // connection → ready Err ticket) instead of timing out: the inner
        // error must count as an undelivered ack too, or the fallback
        // decision record is skipped and recovery presumes abort.
        let mut config = ClusterConfig::for_tests(2);
        config.db_config.durability = tebaldi_core::DurabilityMode::Synchronous;
        let cluster = builder_with_test_procs(config)
            .transport_factory(Box::new(|shards| {
                Ok(Arc::new(DecisionBlackhole {
                    inner: InProcessTransport::new(shards.to_vec()),
                    reject: true,
                    swallowed: parking_lot::Mutex::new(Vec::new()),
                }) as Arc<dyn ShardTransport>)
            }))
            .build()
            .unwrap();
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                5,
            ),
            procs::get_part(cluster.shard_of(2), ProcedureCall::new(TY), account_key(2)),
        ];
        cluster.execute_multi(parts).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.coordinator.one_phase, 1);
        assert_eq!(
            stats.decision_ack_timeouts, 1,
            "a failed send counts as an undelivered ack"
        );
        assert_eq!(
            cluster.coordinator().committed_globals().len(),
            1,
            "the fallback decision record must be durable"
        );
    }

    #[test]
    fn prepared_lock_window_uses_injected_clock() {
        let ticks = Arc::new(AtomicU64::new(0));
        let clock_ticks = Arc::clone(&ticks);
        let mut config = ClusterConfig::for_tests(2);
        config.db_config.durability = tebaldi_core::DurabilityMode::Synchronous;
        let cluster = builder_with_test_procs(config)
            // Deterministic clock: every reading advances 1000ns, so one
            // decided transaction measures exactly one tick.
            .clock(Arc::new(move || {
                clock_ticks.fetch_add(1, Ordering::Relaxed) * 1_000
            }))
            .build()
            .unwrap();
        cluster.load(1, account_key(1), Value::Int(0));
        cluster.load(2, account_key(2), Value::Int(0));
        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                1,
            ),
            procs::increment_part(
                cluster.shard_of(2),
                ProcedureCall::new(TY),
                account_key(2),
                0,
                1,
            ),
        ];
        cluster.execute_multi(parts).unwrap();
        assert_eq!(
            cluster.stats().prepared_lock_window_ns,
            1_000,
            "window = decision clock reading - vote clock reading"
        );
    }

    /// Builds a 2-shard cluster over flush-latency WAL devices so hardening
    /// takes real time — the only way a single submitting thread finishes a
    /// batch quickly is the prepare pipeline.
    fn pipelined_cluster(window: usize) -> Cluster {
        let mut config = ClusterConfig::for_tests(2);
        config.db_config.durability = tebaldi_core::DurabilityMode::Synchronous;
        config.workers_per_shard = 1;
        config.max_inflight_per_shard = window;
        let flush_latency = std::time::Duration::from_millis(2);
        let shard_logs: Vec<Arc<dyn LogDevice>> = (0..2)
            .map(|_| {
                Arc::new(tebaldi_storage::wal::MemLogDevice::with_flush_latency(
                    flush_latency,
                )) as _
            })
            .collect();
        builder_with_test_procs(config)
            .shard_logs(shard_logs)
            .build()
            .unwrap()
    }

    fn transfer_parts(cluster: &Cluster, from: u64, to: u64, amount: i64) -> Vec<ShardPart> {
        vec![
            procs::increment_part(
                cluster.shard_of(from),
                ProcedureCall::new(TY),
                account_key(from),
                0,
                -amount,
            ),
            procs::increment_part(
                cluster.shard_of(to),
                ProcedureCall::new(TY),
                account_key(to),
                0,
                amount,
            ),
        ]
    }

    #[test]
    fn batched_phase_one_overlaps_prepares_from_one_thread() {
        let cluster = pipelined_cluster(32);
        let n = 8u64;
        for account in 1..=2 * n {
            cluster.load(account, account_key(account), Value::Int(100));
        }
        // One thread, one call: every transaction's phase one is submitted
        // before any vote is collected.
        let batch: Vec<Vec<ShardPart>> = (0..n)
            .map(|i| transfer_parts(&cluster, 2 * i + 1, 2 * i + 2, 30))
            .collect();
        let results = cluster.execute_multi_batch(batch);
        assert_eq!(results.len(), n as usize);
        for result in &results {
            assert!(result.is_ok(), "batched transfer failed: {result:?}");
        }
        for i in 0..n {
            assert_eq!(balance(&cluster, 2 * i + 1), 70);
            assert_eq!(balance(&cluster, 2 * i + 2), 130);
        }
        assert_eq!(cluster.in_doubt_count(), 0);
        let stats = cluster.stats();
        assert_eq!(stats.coordinator.committed, n);
        assert!(
            stats.max_pipeline_depth >= 2,
            "a single worker must have overlapped in-flight prepares, depth={}",
            stats.max_pipeline_depth
        );
        assert!(
            stats.prepare_hardening_ns > 0,
            "deferred hardening must be measured"
        );
    }

    #[test]
    fn window_one_batch_matches_unpipelined_semantics() {
        let cluster = pipelined_cluster(1);
        for account in 1..=8 {
            cluster.load(account, account_key(account), Value::Int(100));
        }
        let batch: Vec<Vec<ShardPart>> = (0..4)
            .map(|i| transfer_parts(&cluster, 2 * i + 1, 2 * i + 2, 10))
            .collect();
        for result in cluster.execute_multi_batch(batch) {
            result.unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats.coordinator.committed, 4);
        assert_eq!(
            stats.max_pipeline_depth, 1,
            "window 1 must keep one body in flight per shard"
        );
        assert_eq!(
            stats.prepare_hardening_ns, 0,
            "window 1 must never defer hardening"
        );
        assert_eq!(cluster.in_doubt_count(), 0);
    }

    #[test]
    fn batch_with_invalid_transaction_fails_only_that_transaction() {
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        let batch = vec![
            transfer_parts(&cluster, 1, 2, 25),
            // Both parts on one shard: rejected at validation.
            vec![
                procs::increment_part(0, ProcedureCall::new(TY), account_key(4), 0, 1),
                procs::increment_part(0, ProcedureCall::new(TY), account_key(6), 0, 1),
            ],
        ];
        let results = cluster.execute_multi_batch(batch);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(balance(&cluster, 1), 75);
        assert_eq!(balance(&cluster, 2), 125);
        assert_eq!(cluster.in_doubt_count(), 0);
        // The failed transaction counts as a batch abort; nothing was
        // deferred (no declarations).
        let stats = cluster.stats();
        assert_eq!(stats.batch_scheduled, 0);
        assert_eq!(stats.batch_aborts, 1);
    }

    #[test]
    fn declared_conflicts_schedule_into_waves_and_all_commit() {
        let cluster = pipelined_cluster(32);
        let n = 4u64;
        cluster.load(1, account_key(1), Value::Int(100));
        for i in 1..=n {
            cluster.load(2 * i, account_key(2 * i), Value::Int(100));
        }
        // Every transaction debits account 1: a WW chain through the whole
        // batch. The scheduler must put each in its own wave, so they
        // serialize by scheduling and all commit.
        let batch: Vec<BatchTxn> = (1..=n)
            .map(|i| {
                BatchTxn::declared(
                    transfer_parts(&cluster, 1, 2 * i, 10),
                    BatchKeySets::writes(vec![account_key(1), account_key(2 * i)]),
                )
            })
            .collect();
        let results = cluster.execute_multi_batch_declared(batch);
        assert_eq!(results.len(), n as usize);
        for result in &results {
            assert!(result.is_ok(), "scheduled transfer failed: {result:?}");
        }
        assert_eq!(balance(&cluster, 1), 100 - 10 * n as i64);
        for i in 1..=n {
            assert_eq!(balance(&cluster, 2 * i), 110);
        }
        let stats = cluster.stats();
        assert_eq!(
            stats.batch_scheduled,
            n - 1,
            "every transaction after the first must defer behind the chain"
        );
        assert_eq!(stats.batch_aborts, 0);
        assert_eq!(cluster.in_doubt_count(), 0);
    }

    #[test]
    fn disjoint_declarations_keep_the_whole_batch_in_wave_zero() {
        let cluster = pipelined_cluster(32);
        let n = 8u64;
        for account in 1..=2 * n {
            cluster.load(account, account_key(account), Value::Int(100));
        }
        // Fully declared but key-disjoint: the scheduler must not defer
        // anything, preserving the overlapped phase-one pipeline.
        let batch: Vec<BatchTxn> = (0..n)
            .map(|i| {
                let (from, to) = (2 * i + 1, 2 * i + 2);
                BatchTxn::declared(
                    transfer_parts(&cluster, from, to, 30),
                    BatchKeySets::writes(vec![account_key(from), account_key(to)]),
                )
            })
            .collect();
        for result in cluster.execute_multi_batch_declared(batch) {
            result.unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(
            stats.batch_scheduled, 0,
            "disjoint footprints must not defer"
        );
        assert_eq!(stats.batch_aborts, 0);
        assert!(
            stats.max_pipeline_depth >= 2,
            "wave zero must still overlap prepares, depth={}",
            stats.max_pipeline_depth
        );
        assert_eq!(cluster.in_doubt_count(), 0);
    }

    #[test]
    fn read_write_conflicts_defer_and_mixed_declarations_compose() {
        let cluster = cluster(2);
        for account in 1..=4 {
            cluster.load(account, account_key(account), Value::Int(100));
        }
        // Txn 0 writes {1,2}; txn 1 declares a read of 2 (RW edge → wave
        // 1); txn 2 is undeclared (wave 0 regardless of its real keys).
        let batch = vec![
            BatchTxn::declared(
                transfer_parts(&cluster, 1, 2, 25),
                BatchKeySets::writes(vec![account_key(1), account_key(2)]),
            ),
            BatchTxn::declared(
                transfer_parts(&cluster, 2, 3, 5),
                BatchKeySets::new(vec![account_key(2)], vec![account_key(3)]),
            ),
            BatchTxn::undeclared(transfer_parts(&cluster, 3, 4, 1)),
        ];
        let results = cluster.execute_multi_batch_declared(batch);
        for result in &results {
            assert!(result.is_ok(), "mixed batch failed: {result:?}");
        }
        let stats = cluster.stats();
        assert_eq!(stats.batch_scheduled, 1, "only the RW-dependent txn defers");
        assert_eq!(cluster.in_doubt_count(), 0);
    }

    #[test]
    fn failed_part_aborts_every_shard() {
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(100));
        let parts = vec![
            procs::increment_part(
                cluster.shard_of(1),
                ProcedureCall::new(TY),
                account_key(1),
                0,
                -30,
            ),
            ShardPart::new(
                cluster.shard_of(2),
                ProcedureCall::new(TY),
                POISON,
                procs::key_args(account_key(2)),
            ),
        ];
        assert!(cluster.execute_multi(parts).is_err());
        assert_eq!(balance(&cluster, 1), 100, "debit must roll back");
        assert_eq!(balance(&cluster, 2), 100, "credit must roll back");
        assert_eq!(cluster.in_doubt_count(), 0);
        assert_eq!(cluster.coordinator().stats().aborted, 1);
    }

    #[test]
    fn recovery_resolves_in_doubt_against_decision_log() {
        // Simulate a crash between prepare and decide: prepare both parts
        // by hand, log the commit decision, then "crash" (drop without
        // deciding) and recover from the WALs + decision log.
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(50));
        cluster.load(2, account_key(2), Value::Int(50));
        // Baseline commits so the recovered stores have the loads hardened.
        for account in [1u64, 2u64] {
            let shard = cluster.shard_of(account);
            cluster
                .execute_single(
                    shard,
                    procs::KV_INCREMENT,
                    &ProcedureCall::new(TY),
                    procs::increment_args(account_key(account), 0, 0),
                    10,
                )
                .unwrap();
        }

        let global = cluster.coordinator().begin_global();
        let (_, p1) = cluster
            .shard(cluster.shard_of(1))
            .prepare(&ProcedureCall::new(TY), global, |txn| {
                txn.increment(account_key(1), 0, -20)
            })
            .map(|(v, vote)| (v, vote.expect_prepared()))
            .unwrap();
        let (_, p2) = cluster
            .shard(cluster.shard_of(2))
            .prepare(&ProcedureCall::new(TY), global, |txn| {
                txn.increment(account_key(2), 0, 20)
            })
            .map(|(v, vote)| (v, vote.expect_prepared()))
            .unwrap();
        for index in 0..2 {
            cluster.shard(index).durability().seal_current_epoch();
        }
        // Commit point reached...
        cluster.coordinator().log_commit(global, 0);
        let logs: Vec<Arc<dyn LogDevice>> = (0..2).map(|index| cluster.shard_log(index)).collect();
        let decision_log = cluster.coordinator().decision_log();
        // ...then the cluster crashes before the decision is delivered.
        std::mem::forget(p1);
        std::mem::forget(p2);

        let recovered = recover_cluster(&logs, decision_log.as_ref(), 4);
        let mut balances = Vec::new();
        for (store, report) in &recovered {
            assert_eq!(report.in_doubt, 1);
            assert_eq!(report.in_doubt_committed, 1, "decision log says commit");
            for account in [1u64, 2u64] {
                if let Some(v) = store.read(
                    &account_key(account),
                    tebaldi_storage::ReadSpec::LatestCommitted,
                ) {
                    balances.push(v.as_int().unwrap());
                }
            }
        }
        balances.sort_unstable();
        assert_eq!(balances, vec![30, 70], "the transfer survived the crash");
    }

    #[test]
    fn undecided_prepare_presumed_aborted_on_recovery() {
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(50));
        let shard = cluster.shard_of(1);
        cluster
            .execute_single(
                shard,
                procs::KV_INCREMENT,
                &ProcedureCall::new(TY),
                procs::increment_args(account_key(1), 0, 0),
                10,
            )
            .unwrap();
        cluster.shard(shard).durability().seal_current_epoch();
        let global = cluster.coordinator().begin_global();
        let (_, prepared) = cluster
            .shard(shard)
            .prepare(&ProcedureCall::new(TY), global, |txn| {
                txn.increment(account_key(1), 0, -20)
            })
            .map(|(v, vote)| (v, vote.expect_prepared()))
            .unwrap();
        // Crash with no decision logged.
        let log = cluster.shard_log(shard);
        let decision_log = cluster.coordinator().decision_log();
        std::mem::forget(prepared);

        let recovered = recover_cluster(&[log], decision_log.as_ref(), 4);
        let (store, report) = &recovered[0];
        assert_eq!(report.in_doubt, 1);
        assert_eq!(report.in_doubt_aborted, 1);
        assert_eq!(
            store.read(&account_key(1), tebaldi_storage::ReadSpec::LatestCommitted),
            Some(Value::Int(50)),
            "presumed abort keeps the old balance"
        );
    }

    /// The unified read API returns identical answers at every
    /// consistency level against quiesced data, in input order, `None`
    /// for absent keys — including cross-shard batches.
    #[test]
    fn read_api_answers_match_across_consistency_levels() {
        let cluster = cluster(4);
        for account in 1..=8u64 {
            cluster.load(
                account,
                account_key(account),
                Value::Int(account as i64 * 10),
            );
        }
        let keys: Vec<(u64, Key)> = [3u64, 7, 1, 99, 6]
            .iter()
            .map(|&account| (account, account_key(account)))
            .collect();
        let expected = vec![
            Some(Value::Int(30)),
            Some(Value::Int(70)),
            Some(Value::Int(10)),
            None,
            Some(Value::Int(60)),
        ];
        let levels = [
            ReadConsistency::Strong,
            ReadConsistency::Snapshot,
            ReadConsistency::BoundedStaleness {
                max_lag: Duration::from_millis(500),
            },
        ];
        for level in levels {
            assert_eq!(
                cluster.read(keys.clone(), level).unwrap(),
                expected,
                "consistency level {level:?}"
            );
        }
    }

    /// A `Snapshot` read writes no prepare WAL records and no decision-log
    /// entries — the zero-2PC contract, asserted at the durability layer.
    #[test]
    fn snapshot_reads_write_no_prepare_or_decision_records() {
        let cluster = cluster(4);
        for account in 1..=4u64 {
            cluster.load(account, account_key(account), Value::Int(1));
        }
        let prepares_before: u64 = (0..4)
            .map(|shard| cluster.shard(shard).durability().stats().prepares)
            .sum();
        let decisions_before = cluster.coordinator().stats().decisions_logged;
        let decision_log_len = cluster.coordinator().decision_log().read_back().len();

        let keys: Vec<(u64, Key)> = (1..=4u64)
            .map(|account| (account, account_key(account)))
            .collect();
        let values = cluster.read(keys, ReadConsistency::Snapshot).unwrap();
        assert_eq!(values.len(), 4);
        assert!(values.iter().all(|v| v == &Some(Value::Int(1))));

        let prepares_after: u64 = (0..4)
            .map(|shard| cluster.shard(shard).durability().stats().prepares)
            .sum();
        assert_eq!(prepares_after, prepares_before, "zero prepare records");
        assert_eq!(
            cluster.coordinator().stats().decisions_logged,
            decisions_before,
            "zero decisions logged"
        );
        assert_eq!(
            cluster.coordinator().decision_log().read_back().len(),
            decision_log_len,
            "zero decision-log appends"
        );
        assert!(cluster.stats().snapshot_reads >= 1);
    }

    /// A pinned [`SnapshotHandle`] keeps answering from its stamp: writes
    /// committed after the pin stay invisible through the handle while a
    /// fresh read sees them.
    #[test]
    fn snapshot_handle_pins_its_cut() {
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(100));
        cluster.load(2, account_key(2), Value::Int(200));
        let keys: Vec<(u64, Key)> = vec![(1, account_key(1)), (2, account_key(2))];

        let pinned = cluster.snapshot();
        assert_eq!(
            pinned.read_keyed(keys.clone()).unwrap(),
            vec![Some(Value::Int(100)), Some(Value::Int(200))]
        );

        // Commit a cross-shard transfer after the pin.
        cluster
            .execute_multi(vec![
                procs::increment_part(
                    cluster.shard_of(1),
                    ProcedureCall::new(TY),
                    account_key(1),
                    0,
                    -30,
                ),
                procs::increment_part(
                    cluster.shard_of(2),
                    ProcedureCall::new(TY),
                    account_key(2),
                    0,
                    30,
                ),
            ])
            .unwrap();

        assert_eq!(
            pinned.read_keyed(keys.clone()).unwrap(),
            vec![Some(Value::Int(100)), Some(Value::Int(200))],
            "the pinned handle must not see the later commit"
        );
        assert_eq!(
            cluster.read(keys, ReadConsistency::Snapshot).unwrap(),
            vec![Some(Value::Int(70)), Some(Value::Int(230))],
            "a fresh snapshot sees it"
        );
    }

    /// Snapshot reads racing cross-shard transfers always observe a
    /// conserved total — a commit is visible on all shards or none.
    #[test]
    fn snapshot_reads_never_observe_a_torn_transfer() {
        let cluster = Arc::new(cluster(2));
        cluster.load(1, account_key(1), Value::Int(500));
        cluster.load(2, account_key(2), Value::Int(500));
        let writer = {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                for _ in 0..40 {
                    cluster
                        .execute_multi_with_retry(10, || {
                            vec![
                                procs::increment_part(
                                    cluster.shard_of(1),
                                    ProcedureCall::new(TY),
                                    account_key(1),
                                    0,
                                    -5,
                                ),
                                procs::increment_part(
                                    cluster.shard_of(2),
                                    ProcedureCall::new(TY),
                                    account_key(2),
                                    0,
                                    5,
                                ),
                            ]
                        })
                        .unwrap();
                }
            })
        };
        let keys: Vec<(u64, Key)> = vec![(1, account_key(1)), (2, account_key(2))];
        while !writer.is_finished() {
            let values = cluster
                .read(keys.clone(), ReadConsistency::Snapshot)
                .unwrap();
            let total: i64 = values
                .iter()
                .map(|v| v.as_ref().and_then(Value::as_int).unwrap())
                .sum();
            assert_eq!(total, 1000, "torn snapshot: {values:?}");
        }
        writer.join().unwrap();
        assert_eq!(balance(&cluster, 1), 300);
        assert_eq!(balance(&cluster, 2), 700);
    }

    /// `execute` under `TxnOptions` retries retryable aborts exactly like
    /// the old `execute_multi_with_retry` wrapper it subsumes.
    #[test]
    fn txn_options_execute_retries_poisoned_attempts() {
        let cluster = cluster(2);
        cluster.load(1, account_key(1), Value::Int(10));
        // POISON increments then self-aborts: never commits, not
        // retryable. A single-attempt execute surfaces the abort.
        let poisoned = vec![ShardPart::new(
            cluster.shard_of(1),
            ProcedureCall::new(TY),
            POISON,
            procs::key_args(account_key(1)),
        )];
        let err = cluster
            .execute(poisoned, &TxnOptions::new().retry(3))
            .unwrap_err();
        assert!(matches!(err, CcError::Requested), "got {err:?}");
        // A clean transfer through the unified entry point commits.
        let (values, aborts) = cluster
            .execute(
                vec![procs::increment_part(
                    cluster.shard_of(1),
                    ProcedureCall::new(TY),
                    account_key(1),
                    0,
                    7,
                )],
                &TxnOptions::new().retry(3),
            )
            .unwrap();
        assert_eq!(values, vec![Value::Int(17)]);
        assert_eq!(aborts, 0);
        assert_eq!(balance(&cluster, 1), 17);
    }
}
