//! The cross-shard two-phase-commit coordinator.
//!
//! A multi-shard transaction splits into per-shard parts. The coordinator
//! assigns a cluster-global id, asks every participant shard to *prepare*
//! its part (run it through execution, validation, and the dependency wait,
//! then harden a `Prepare` WAL record and hold the locks), and collects the
//! votes:
//!
//! * **all yes, ≥ 2 read-write participants** — the coordinator flushes a
//!   `Decision { commit: true }` record to its own decision log (*the
//!   commit point*) — coalescing the flush with concurrent decisions via
//!   group commit — then tells every read-write shard to commit;
//! * **all yes, exactly 1 read-write participant** — one-phase fast path:
//!   the surviving participant's own commit record is the commit point, so
//!   no decision record is written at all;
//! * **all yes, 0 read-write participants** — every part voted `ReadOnly`
//!   and already committed at phase one; there is nothing to decide;
//! * **any no** — it tells the prepared shards to abort. No flushed
//!   decision record is needed: recovery presumes abort for undecided
//!   global ids.
//!
//! Read-only participants (empty write set) commit and release at phase
//! one, write no prepare record, and are excluded from the decision — so
//! they are never in doubt and recovery never re-resolves them.
//!
//! A shard crash between prepare and decision leaves the transaction *in
//! doubt* on that shard; shard recovery resolves it against this decision
//! log (see `tebaldi_storage::recovery::recover_with_resolver`).

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tebaldi_storage::durability::GroupCommit;
use tebaldi_storage::wal::{LogDevice, LogRecord, MemLogDevice};
use tebaldi_storage::{Timestamp, TxnId};

/// Counters describing coordinator activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinatorStats {
    /// Global transactions that reached the commit point (including the
    /// one-phase and fully-read-only fast paths).
    pub committed: u64,
    /// Global transactions aborted by a "no" vote (or coordinator error).
    pub aborted: u64,
    /// Commits that degenerated to one-phase (exactly one read-write
    /// participant): no decision record was written.
    pub one_phase: u64,
    /// Commits where every participant voted `ReadOnly`: neither prepare
    /// records nor a decision record were written.
    pub read_only: u64,
    /// Records actually appended to the decision log (commit + abort).
    pub decisions_logged: u64,
    /// Device flushes the decision log performed (group-commit leaders).
    pub decision_flushes: u64,
}

/// Assigns global transaction ids and owns the decision log.
pub struct TxnCoordinator {
    next_global: AtomicU64,
    /// Exclusive upper bound of the durably reserved id block.
    reserved: AtomicU64,
    /// Serializes block-reservation flushes.
    reserve_lock: Mutex<()>,
    decision_log: Arc<dyn LogDevice>,
    group: GroupCommit,
    coalesce: bool,
    committed: AtomicU64,
    aborted: AtomicU64,
    one_phase: AtomicU64,
    read_only: AtomicU64,
    decisions_logged: AtomicU64,
    uncoalesced_flushes: AtomicU64,
}

impl std::fmt::Debug for TxnCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnCoordinator")
            .field("next_global", &self.next_global.load(Ordering::Relaxed))
            .finish()
    }
}

/// Size of one durably reserved block of global ids. One-phase and
/// read-only commits write no decision record, so the highest logged
/// decision understates the ids actually handed out; before handing out an
/// id beyond the reserved block, the coordinator flushes a reservation
/// marker (an abort-decision record for the block's last id — harmless to
/// in-doubt resolution, which only honors commit decisions) so a restarted
/// coordinator always resumes above every id ever issued. Costs one
/// flushed record per `ID_BLOCK` global transactions.
const ID_BLOCK: u64 = 1 << 20;

impl TxnCoordinator {
    /// A coordinator over the given decision-log device, with decision
    /// flushes coalesced across concurrent transactions.
    pub fn new(decision_log: Arc<dyn LogDevice>) -> Self {
        TxnCoordinator::with_options(decision_log, true)
    }

    /// [`TxnCoordinator::new`] with explicit control over decision-flush
    /// coalescing (`false` restores the one-flush-per-decision baseline).
    pub fn with_options(decision_log: Arc<dyn LogDevice>, coalesce: bool) -> Self {
        // Resume the id sequence above anything already decided *or
        // reserved*: every id ever handed out lies below some logged
        // record (decision or reservation marker), so restarts can never
        // reuse an id that may still label an undecided prepare somewhere.
        let mut floor = 1;
        for record in decision_log.read_back() {
            if let LogRecord::Decision { global, .. } = record {
                floor = floor.max(global + 1);
            }
        }
        TxnCoordinator {
            next_global: AtomicU64::new(floor),
            reserved: AtomicU64::new(floor),
            reserve_lock: Mutex::new(()),
            group: GroupCommit::new(Arc::clone(&decision_log)),
            decision_log,
            coalesce,
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            one_phase: AtomicU64::new(0),
            read_only: AtomicU64::new(0),
            decisions_logged: AtomicU64::new(0),
            uncoalesced_flushes: AtomicU64::new(0),
        }
    }

    /// A coordinator with an in-memory decision log (tests, durability-off
    /// clusters).
    pub fn in_memory() -> Self {
        TxnCoordinator::new(Arc::new(MemLogDevice::new()))
    }

    /// Starts a new global transaction. The id is covered by a durable
    /// reservation before it is returned (see [`ID_BLOCK`]), so even a
    /// commit that never logs a decision cannot be reused after a
    /// coordinator restart.
    pub fn begin_global(&self) -> u64 {
        let id = self.next_global.fetch_add(1, Ordering::Relaxed);
        if id >= self.reserved.load(Ordering::Acquire) {
            let _guard = self.reserve_lock.lock();
            let current = self.reserved.load(Ordering::Acquire);
            if id >= current {
                let new_bound = id + ID_BLOCK;
                // An abort decision for the block's last id: in-doubt
                // resolution only honors commit decisions, and a later
                // genuine commit of that id simply adds a commit record.
                self.decision_log.append(&LogRecord::Decision {
                    global: new_bound - 1,
                    commit: false,
                    hlc: 0,
                });
                self.decision_log.flush();
                self.reserved.store(new_bound, Ordering::Release);
            }
        }
        id
    }

    fn append_commit_durable(&self, global: u64, hlc: u64) {
        let record = LogRecord::Decision {
            global,
            commit: true,
            hlc,
        };
        self.decisions_logged.fetch_add(1, Ordering::Relaxed);
        if self.coalesce {
            self.group.append_durable(std::slice::from_ref(&record));
        } else {
            self.decision_log.append(&record);
            self.decision_log.flush();
            self.uncoalesced_flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The commit point: durably records the commit decision for `global`
    /// together with its HLC decision stamp, coalescing the flush with
    /// concurrent decisions. Participants may only be told to commit after
    /// this returns — and they stamp their versions with exactly `hlc`, so
    /// persisting the stamp here lets in-doubt recovery re-install it.
    pub fn log_commit(&self, global: u64, hlc: u64) {
        self.append_commit_durable(global, hlc);
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Durably records a commit decision for a one-phase commit whose
    /// decision acknowledgement never arrived. The lone read-write
    /// participant may still be parked in doubt on a shard that never saw
    /// the decision frame — without this record, recovery would *presume
    /// abort* for a transaction the caller was already told committed.
    /// Counts in `decisions_logged` but not in `committed` (the one-phase
    /// commit itself was already counted).
    pub fn log_straggler_commit(&self, global: u64, hlc: u64) {
        self.append_commit_durable(global, hlc);
    }

    /// Records an abort decision. Optional (absence implies abort), kept
    /// for diagnostics and to stop recovery from re-asking about well-known
    /// aborts.
    pub fn log_abort(&self, global: u64) {
        self.decisions_logged.fetch_add(1, Ordering::Relaxed);
        self.decision_log.append(&LogRecord::Decision {
            global,
            commit: false,
            hlc: 0,
        });
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a global abort that needed no decision record (every part
    /// self-aborted or was read-only, so nothing is prepared anywhere).
    pub fn note_abort(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a one-phase commit (exactly one read-write participant):
    /// the participant's own commit record is the commit point, so nothing
    /// is appended to the decision log.
    pub fn commit_one_phase(&self) {
        self.one_phase.fetch_add(1, Ordering::Relaxed);
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a fully-read-only commit (every participant voted
    /// `ReadOnly` and already finished): no log traffic at all.
    pub fn commit_read_only(&self) {
        self.read_only.fetch_add(1, Ordering::Relaxed);
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// The set of global ids with a durable commit decision.
    pub fn committed_globals(&self) -> HashSet<u64> {
        self.committed_globals_with_stamps().into_keys().collect()
    }

    /// Global ids with a durable commit decision, mapped to the HLC
    /// decision stamp each was committed under (`0` for pre-HLC records).
    /// In-doubt resolution re-installs the stamp so a recovered shard's
    /// chains answer snapshot reads identically to the surviving ones.
    pub fn committed_globals_with_stamps(&self) -> HashMap<u64, u64> {
        self.decision_log
            .read_back()
            .into_iter()
            .filter_map(|record| match record {
                LogRecord::Decision {
                    global,
                    commit: true,
                    hlc,
                } => Some((global, hlc)),
                _ => None,
            })
            .collect()
    }

    /// The decision-log device (shared with recovery).
    pub fn decision_log(&self) -> Arc<dyn LogDevice> {
        Arc::clone(&self.decision_log)
    }

    /// Activity counters.
    pub fn stats(&self) -> CoordinatorStats {
        CoordinatorStats {
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            one_phase: self.one_phase.load(Ordering::Relaxed),
            read_only: self.read_only.load(Ordering::Relaxed),
            decisions_logged: self.decisions_logged.load(Ordering::Relaxed),
            decision_flushes: self.group.flush_count()
                + self.uncoalesced_flushes.load(Ordering::Relaxed),
        }
    }
}

/// Marker values some diagnostics use when a coordinator-side pseudo
/// transaction needs storage types.
pub const COORDINATOR_TXN: TxnId = TxnId(u64::MAX);
/// Timestamp used for coordinator bookkeeping records.
pub const COORDINATOR_TS: Timestamp = Timestamp(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_log_roundtrip() {
        let coord = TxnCoordinator::in_memory();
        let a = coord.begin_global();
        let b = coord.begin_global();
        assert_ne!(a, b);
        coord.log_commit(a, 0xBEEF);
        coord.log_abort(b);
        let committed = coord.committed_globals();
        assert!(committed.contains(&a));
        assert!(!committed.contains(&b));
        let stamps = coord.committed_globals_with_stamps();
        assert_eq!(
            stamps.get(&a),
            Some(&0xBEEF),
            "the decision stamp survives the log roundtrip"
        );
        assert_eq!(coord.stats().committed, 1);
        assert_eq!(coord.stats().aborted, 1);
        assert_eq!(coord.stats().decisions_logged, 2);
        assert_eq!(coord.stats().decision_flushes, 1, "only the commit flushed");
    }

    #[test]
    fn one_phase_commit_logs_no_decision_records() {
        let coord = TxnCoordinator::in_memory();
        let global = coord.begin_global();
        coord.commit_one_phase();
        coord.commit_read_only();
        let stats = coord.stats();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.one_phase, 1);
        assert_eq!(stats.read_only, 1);
        assert_eq!(stats.decisions_logged, 0);
        // The log holds only the once-per-ID_BLOCK reservation marker —
        // never a record for the committed transaction itself.
        for record in coord.decision_log().read_back() {
            match record {
                LogRecord::Decision {
                    global: g, commit, ..
                } => {
                    assert!(!commit, "one-phase commit must not log a commit");
                    assert_ne!(g, global, "no record for the transaction's id");
                }
                other => panic!("unexpected record {other:?}"),
            }
        }
    }

    #[test]
    fn global_ids_resume_above_logged_decisions() {
        let log: Arc<dyn LogDevice> = Arc::new(MemLogDevice::new());
        let highest = {
            let coord = TxnCoordinator::new(Arc::clone(&log));
            let g = coord.begin_global();
            coord.log_commit(g, 0);
            g
        };
        let restarted = TxnCoordinator::new(Arc::clone(&log));
        let next = restarted.begin_global();
        assert!(next > highest, "restarted coordinator must not reuse ids");
    }

    #[test]
    fn unlogged_one_phase_ids_are_never_reused_after_restart() {
        // A coordinator that only ever performed one-phase commits (no
        // decision records) must still resume above every id it handed
        // out: the durable block-reservation marker guarantees it.
        let log: Arc<dyn LogDevice> = Arc::new(MemLogDevice::new());
        let handed_out: Vec<u64> = {
            let coord = TxnCoordinator::new(Arc::clone(&log));
            (0..100)
                .map(|_| {
                    let g = coord.begin_global();
                    coord.commit_one_phase();
                    g
                })
                .collect()
        };
        let restarted = TxnCoordinator::new(Arc::clone(&log));
        let next = restarted.begin_global();
        assert!(
            handed_out.iter().all(|&g| next > g),
            "id {next} collides with a previously issued one-phase id"
        );
    }
}
