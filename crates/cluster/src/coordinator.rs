//! The cross-shard two-phase-commit coordinator.
//!
//! A multi-shard transaction splits into per-shard parts. The coordinator
//! assigns a cluster-global id, asks every participant shard to *prepare*
//! its part (run it through execution, validation, and the dependency wait,
//! then harden a `Prepare` WAL record and hold the locks), and collects the
//! votes:
//!
//! * **all yes** — the coordinator flushes a `Decision { commit: true }`
//!   record to its own decision log (*the commit point*), then tells every
//!   shard to commit;
//! * **any no** — it tells the prepared shards to abort. No decision record
//!   is needed: recovery presumes abort for undecided global ids.
//!
//! A shard crash between prepare and decision leaves the transaction *in
//! doubt* on that shard; shard recovery resolves it against this decision
//! log (see `tebaldi_storage::recovery::recover_with_resolver`).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tebaldi_storage::wal::{LogDevice, LogRecord, MemLogDevice};
use tebaldi_storage::{Timestamp, TxnId};

/// Counters describing coordinator activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinatorStats {
    /// Global transactions that reached the commit point.
    pub committed: u64,
    /// Global transactions aborted by a "no" vote (or coordinator error).
    pub aborted: u64,
}

/// Assigns global transaction ids and owns the decision log.
pub struct TxnCoordinator {
    next_global: AtomicU64,
    decision_log: Arc<dyn LogDevice>,
    committed: AtomicU64,
    aborted: AtomicU64,
}

impl std::fmt::Debug for TxnCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnCoordinator")
            .field("next_global", &self.next_global.load(Ordering::Relaxed))
            .finish()
    }
}

impl TxnCoordinator {
    /// A coordinator over the given decision-log device.
    pub fn new(decision_log: Arc<dyn LogDevice>) -> Self {
        // Resume the id sequence above anything already decided, so global
        // ids stay unique across coordinator restarts.
        let mut floor = 1;
        for record in decision_log.read_back() {
            if let LogRecord::Decision { global, .. } = record {
                floor = floor.max(global + 1);
            }
        }
        TxnCoordinator {
            next_global: AtomicU64::new(floor),
            decision_log,
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// A coordinator with an in-memory decision log (tests, durability-off
    /// clusters).
    pub fn in_memory() -> Self {
        TxnCoordinator::new(Arc::new(MemLogDevice::new()))
    }

    /// Starts a new global transaction.
    pub fn begin_global(&self) -> u64 {
        self.next_global.fetch_add(1, Ordering::Relaxed)
    }

    /// The commit point: durably records the commit decision for `global`.
    /// Participants may only be told to commit after this returns.
    pub fn log_commit(&self, global: u64) {
        self.decision_log.append(&LogRecord::Decision {
            global,
            commit: true,
        });
        self.decision_log.flush();
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an abort decision. Optional (absence implies abort), kept
    /// for diagnostics and to stop recovery from re-asking about well-known
    /// aborts.
    pub fn log_abort(&self, global: u64) {
        self.decision_log.append(&LogRecord::Decision {
            global,
            commit: false,
        });
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// The set of global ids with a durable commit decision.
    pub fn committed_globals(&self) -> HashSet<u64> {
        self.decision_log
            .read_back()
            .into_iter()
            .filter_map(|record| match record {
                LogRecord::Decision {
                    global,
                    commit: true,
                } => Some(global),
                _ => None,
            })
            .collect()
    }

    /// The decision-log device (shared with recovery).
    pub fn decision_log(&self) -> Arc<dyn LogDevice> {
        Arc::clone(&self.decision_log)
    }

    /// Activity counters.
    pub fn stats(&self) -> CoordinatorStats {
        CoordinatorStats {
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
        }
    }
}

/// Marker values some diagnostics use when a coordinator-side pseudo
/// transaction needs storage types.
pub const COORDINATOR_TXN: TxnId = TxnId(u64::MAX);
/// Timestamp used for coordinator bookkeeping records.
pub const COORDINATOR_TS: Timestamp = Timestamp(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_log_roundtrip() {
        let coord = TxnCoordinator::in_memory();
        let a = coord.begin_global();
        let b = coord.begin_global();
        assert_ne!(a, b);
        coord.log_commit(a);
        coord.log_abort(b);
        let committed = coord.committed_globals();
        assert!(committed.contains(&a));
        assert!(!committed.contains(&b));
        assert_eq!(coord.stats().committed, 1);
        assert_eq!(coord.stats().aborted, 1);
    }

    #[test]
    fn global_ids_resume_above_logged_decisions() {
        let log: Arc<dyn LogDevice> = Arc::new(MemLogDevice::new());
        {
            let coord = TxnCoordinator::new(Arc::clone(&log));
            let g = coord.begin_global();
            coord.log_commit(g);
        }
        let restarted = TxnCoordinator::new(Arc::clone(&log));
        let next = restarted.begin_global();
        assert!(next > 1, "restarted coordinator must not reuse global ids");
    }
}
