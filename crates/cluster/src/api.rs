//! The serializable shard-RPC operation interface.
//!
//! Every interaction between the cluster layer and a shard is one of these
//! requests — a *declared operation*, not opaque code. The transaction
//! bodies themselves live shard-side in the
//! [`ProcRegistry`](tebaldi_core::ProcRegistry); a request names a body by
//! [`ProcId`] and carries its encoded arguments, so the exact same request
//! value works over the in-process mailbox and over a byte-oriented network
//! transport (see [`crate::wire`]).

use crate::worker::Vote;
use tebaldi_cc::{CcError, CcResult};
use tebaldi_core::{ProcId, ProcedureCall};
use tebaldi_obs::{MetricsSnapshot, TraceCtx};
use tebaldi_storage::Value;

/// One operation sent to a shard.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardRequest {
    /// Closed-loop execution of a registered procedure with engine-side
    /// retry of aborted attempts.
    Execute {
        /// The registered transaction body.
        proc: ProcId,
        /// The engine call descriptor (type, instance seed, promises).
        call: ProcedureCall,
        /// Encoded procedure arguments (see `tebaldi_storage::codec`).
        args: Vec<u8>,
        /// Retry budget for aborted attempts.
        max_attempts: u32,
        /// Trace context (`TraceCtx::NONE` when unsampled); carried over
        /// the wire so shard-side spans join the coordinator's trace.
        trace: TraceCtx,
    },
    /// 2PC phase one: run the body up to the prepared state and park it in
    /// the shard's in-doubt table keyed by the cluster-global id (read-write
    /// votes) or commit it outright (read-only votes).
    Prepare {
        /// Cluster-global transaction id.
        global: u64,
        /// The registered transaction body.
        proc: ProcId,
        /// The engine call descriptor.
        call: ProcedureCall,
        /// Encoded procedure arguments.
        args: Vec<u8>,
        /// Trace context (`TraceCtx::NONE` when unsampled).
        trace: TraceCtx,
    },
    /// 2PC phase two: commit the prepared transaction `global`, stamping
    /// its versions with the coordinator's HLC decision stamp (every
    /// participant of one global commit receives the same stamp — the
    /// atomic-visibility rule of cross-shard snapshot reads).
    Commit {
        /// Cluster-global transaction id.
        global: u64,
        /// Coordinator-chosen HLC decision stamp (`0` = unstamped).
        hlc: u64,
    },
    /// One-phase commit of the lone read-write participant: behaviorally a
    /// [`Commit`](ShardRequest::Commit), kept distinct so the wire protocol
    /// (and shard-side diagnostics) can tell the degenerate case apart.
    CommitOnePhase {
        /// Cluster-global transaction id.
        global: u64,
        /// Coordinator-chosen HLC decision stamp (`0` = unstamped).
        hlc: u64,
    },
    /// 2PC phase two: abort `global` (also delivered for timed-out votes,
    /// where the shard may not have prepared yet — see the orphan-abort
    /// table in [`crate::worker`]).
    Abort {
        /// Cluster-global transaction id.
        global: u64,
    },
    /// Multi-key read at a global HLC snapshot — the zero-2PC, zero-lock
    /// read path. The shard merges `snapshot` into its clock *first* (so
    /// every later local commit stamps above it), then serves each key from
    /// the newest committed version stamped `<= snapshot`, waiting out (up
    /// to `wait_ms`) any overlapping uncommitted writer rather than taking
    /// locks. No prepare record, no decision-log record, no vote.
    SnapshotRead {
        /// The global snapshot timestamp (an HLC value the coordinator
        /// drew from its own clock).
        snapshot: u64,
        /// Budget for waiting out in-flight writers before refusing with a
        /// retryable error.
        wait_ms: u64,
        /// The keys to read, all owned by this shard.
        keys: Vec<tebaldi_storage::Key>,
    },
    /// Admin: snapshot the shard's engine counters.
    Stats,
    /// Admin: seal the shard's current durability epoch and flush its WAL
    /// device.
    Flush,
    /// Admin: snapshot the shard's full metrics registry (counters,
    /// gauges, latency histograms) for cluster-wide aggregation.
    Metrics,
}

impl ShardRequest {
    /// True for the requests that run on the shard's worker pool rather
    /// than inline on the transport thread: the two body-running requests,
    /// plus snapshot reads — which run no body but may *block* waiting out
    /// an in-flight writer, and must never stall the connection's reader
    /// thread (that would queue phase-two decisions behind them and
    /// stretch the prepared-lock window).
    pub fn runs_body(&self) -> bool {
        matches!(
            self,
            ShardRequest::Execute { .. }
                | ShardRequest::Prepare { .. }
                | ShardRequest::SnapshotRead { .. }
        )
    }

    /// The trace context carried by this request (`TraceCtx::NONE` for
    /// admin and decision requests, which are never traced shard-side).
    pub fn trace(&self) -> TraceCtx {
        match self {
            ShardRequest::Execute { trace, .. } | ShardRequest::Prepare { trace, .. } => *trace,
            _ => TraceCtx::NONE,
        }
    }

    /// True for 2PC phase-two decisions.
    pub fn is_decision(&self) -> bool {
        matches!(
            self,
            ShardRequest::Commit { .. }
                | ShardRequest::CommitOnePhase { .. }
                | ShardRequest::Abort { .. }
        )
    }
}

/// A shard's engine counters as reported by [`ShardRequest::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStatsReply {
    /// Transactions committed on this shard.
    pub committed: u64,
    /// Aborted attempts on this shard.
    pub aborted: u64,
    /// WAL device flushes on this shard.
    pub flushes: u64,
    /// Prepared transactions currently awaiting a decision.
    pub in_doubt: u64,
    /// Mean nanoseconds a body-running request spent in the submission
    /// queue before a worker picked it up (the execute-wait share of the
    /// prepare latency).
    pub queue_wait_ns: u64,
    /// Peak number of simultaneously in-flight bodies (executing or
    /// awaiting hardening) this shard's pipeline has observed.
    pub pipeline_depth: u64,
    /// Bounded-staleness reads served by this shard's followers.
    pub follower_reads: u64,
    /// Backup promotions that installed this shard's current primary.
    pub failovers: u64,
    /// Hardened batches acked on local durability alone because the
    /// replica quorum missed its ack deadline (degraded mode).
    pub replica_acks_timed_out: u64,
    /// HLC snapshot-read requests served by this shard (the zero-2PC read
    /// path; one request may cover many keys).
    pub snapshot_reads: u64,
    /// Total nanoseconds snapshot reads spent waiting out in-flight
    /// writers before their versions resolved.
    pub snapshot_read_wait_ns: u64,
}

/// A shard's reply to a [`ShardRequest`].
#[derive(Clone, Debug, PartialEq)]
pub enum ShardResponse {
    /// Successful [`Execute`](ShardRequest::Execute): the body's result and
    /// how many aborted attempts the retry loop burned.
    Executed {
        /// The body's return value.
        value: Value,
        /// Aborted attempts before the commit.
        aborts: u32,
    },
    /// Successful [`Prepare`](ShardRequest::Prepare): the body's result and
    /// the participant's vote class.
    Prepared {
        /// The body's return value.
        value: Value,
        /// `ReadWrite` (parked in doubt) or `ReadOnly` (already committed).
        vote: Vote,
        /// The shard's HLC reading at vote time, drawn *after* the prepare
        /// hardened. The coordinator observes every vote clock before
        /// drawing the decision stamp, which keeps decision stamps above
        /// every stamp already committed on the participants' chains (and
        /// above every snapshot any participant has served).
        hlc: u64,
    },
    /// Acknowledges a phase-two decision.
    Decided,
    /// Reply to [`SnapshotRead`](ShardRequest::SnapshotRead): per-key
    /// values in request order (`Value::Null` = absent at the snapshot).
    Snapshot {
        /// The value visible at the snapshot for each requested key.
        values: Vec<Value>,
        /// The shard's HLC reading after serving the read (frame-level
        /// clock merge for in-process transports).
        hlc: u64,
    },
    /// Reply to [`Stats`](ShardRequest::Stats).
    Stats(ShardStatsReply),
    /// Acknowledges [`Flush`](ShardRequest::Flush).
    Flushed,
    /// Reply to [`Metrics`](ShardRequest::Metrics): the shard's full
    /// metrics snapshot.
    Metrics(Box<MetricsSnapshot>),
}

impl ShardResponse {
    /// Extracts the value of an [`Executed`](ShardResponse::Executed) reply.
    pub fn into_executed(self) -> CcResult<(Value, u32)> {
        match self {
            ShardResponse::Executed { value, aborts } => Ok((value, aborts)),
            other => Err(CcError::Internal(format!(
                "expected an Executed reply, got {other:?}"
            ))),
        }
    }

    /// Extracts the value/vote/vote-clock of a
    /// [`Prepared`](ShardResponse::Prepared) reply.
    pub fn into_prepared(self) -> CcResult<(Value, Vote, u64)> {
        match self {
            ShardResponse::Prepared { value, vote, hlc } => Ok((value, vote, hlc)),
            other => Err(CcError::Internal(format!(
                "expected a Prepared reply, got {other:?}"
            ))),
        }
    }

    /// Extracts the values of a [`Snapshot`](ShardResponse::Snapshot) reply.
    pub fn into_snapshot(self) -> CcResult<(Vec<Value>, u64)> {
        match self {
            ShardResponse::Snapshot { values, hlc } => Ok((values, hlc)),
            other => Err(CcError::Internal(format!(
                "expected a Snapshot reply, got {other:?}"
            ))),
        }
    }
}

/// What a shard reports back for one request: the successful response or
/// the abort reason. Transport-level failures (connection lost, vote
/// timeout) live one layer up, in the
/// [`Ticket`](crate::worker::Ticket)'s own result.
pub type ShardResult = Result<ShardResponse, CcError>;
