//! Builtin key-value shard procedures.
//!
//! Generic single-operation bodies (get/put/delete/increment) registered
//! in every cluster's [`ProcRegistry`]. They give tests, examples, and ad
//! hoc tooling a data-only way to touch shards without declaring a
//! workload-specific procedure first — a cross-shard bank transfer is just
//! two [`increment`] parts.
//!
//! Ids live in the reserved `0xFFFF_00xx` range; workload ranges (TPC-C
//! 100.., SEATS 200..) never collide with them.

use crate::cluster::ShardPart;
use tebaldi_cc::CcError;
use tebaldi_core::{ProcId, ProcRegistry, ProcedureCall};
use tebaldi_storage::codec::{ByteReader, ByteWriter};
use tebaldi_storage::{Key, TxnTypeId, Value};

/// The transaction type id builtin read-path calls run under (CC trees
/// without a routing rule for it fall to their default mechanism, which is
/// all a read-only multi-get needs).
pub const KV_READ_TYPE: TxnTypeId = TxnTypeId(0xFFF0);

/// `get(key)` → the stored value or `Null`. Writes nothing, so a 2PC part
/// built from it votes `ReadOnly`.
pub const KV_GET: ProcId = ProcId(0xFFFF_0001);
/// `put(key, value)` → `Null`.
pub const KV_PUT: ProcId = ProcId(0xFFFF_0002);
/// `delete(key)` → `Null`.
pub const KV_DELETE: ProcId = ProcId(0xFFFF_0003);
/// `increment(key, field, delta)` → the new field value as `Int`.
pub const KV_INCREMENT: ProcId = ProcId(0xFFFF_0004);
/// `multi_get(keys)` → every stored value, encoded as one `Bytes` payload
/// (decode with [`decode_multi_get`]). Writes nothing, so a 2PC part built
/// from it votes `ReadOnly` — this is the body behind
/// [`ReadConsistency::Strong`](crate::cluster::ReadConsistency) multi-key
/// reads, where one part covers all of a shard's keys instead of one part
/// per key.
pub const KV_MULTI_GET: ProcId = ProcId(0xFFFF_0005);

fn decode(err: tebaldi_storage::codec::CodecError) -> CcError {
    CcError::Internal(format!("malformed kv args: {err}"))
}

/// Registers the builtin procedures into `registry` (the
/// [`crate::ClusterBuilder`] does this automatically).
pub fn register_builtins(registry: &mut ProcRegistry) {
    registry.register_fn(KV_GET, |txn, args| {
        let mut r = ByteReader::new(args);
        let key = r.key().map_err(decode)?;
        Ok(txn.get(key)?.unwrap_or(Value::Null))
    });
    registry.register_fn(KV_PUT, |txn, args| {
        let mut r = ByteReader::new(args);
        let key = r.key().map_err(decode)?;
        let value = r.value().map_err(decode)?;
        txn.put(key, value).map(|()| Value::Null)
    });
    registry.register_fn(KV_DELETE, |txn, args| {
        let mut r = ByteReader::new(args);
        let key = r.key().map_err(decode)?;
        txn.delete(key).map(|()| Value::Null)
    });
    registry.register_fn(KV_INCREMENT, |txn, args| {
        let mut r = ByteReader::new(args);
        let key = r.key().map_err(decode)?;
        let field = r.u32().map_err(decode)? as usize;
        let delta = r.i64().map_err(decode)?;
        txn.increment(key, field, delta).map(Value::Int)
    });
    registry.register_fn(KV_MULTI_GET, |txn, args| {
        let mut r = ByteReader::new(args);
        let count = r.u32().map_err(decode)? as usize;
        let mut w = ByteWriter::new();
        w.put_u32(count as u32);
        for _ in 0..count {
            let key = r.key().map_err(decode)?;
            w.put_value(&txn.get(key)?.unwrap_or(Value::Null));
        }
        Ok(Value::bytes(w.into_bytes()))
    });
}

/// Argument buffer for [`KV_GET`]/[`KV_DELETE`].
pub fn key_args(key: Key) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_key(key);
    w.into_bytes()
}

/// Argument buffer for [`KV_PUT`].
pub fn put_args(key: Key, value: &Value) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_key(key);
    w.put_value(value);
    w.into_bytes()
}

/// Argument buffer for [`KV_INCREMENT`].
pub fn increment_args(key: Key, field: u32, delta: i64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_key(key);
    w.put_u32(field);
    w.put_i64(delta);
    w.into_bytes()
}

/// Argument buffer for [`KV_MULTI_GET`].
pub fn multi_get_args(keys: &[Key]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(keys.len() as u32);
    for &key in keys {
        w.put_key(key);
    }
    w.into_bytes()
}

/// Decodes a [`KV_MULTI_GET`] result back into per-key values, `None` for
/// keys the shard does not hold.
pub fn decode_multi_get(result: &Value) -> Result<Vec<Option<Value>>, CcError> {
    let bytes = match result {
        Value::Bytes(bytes) => bytes,
        other => {
            return Err(CcError::Internal(format!(
                "multi_get returned a non-bytes value: {other:?}"
            )))
        }
    };
    let mut r = ByteReader::new(bytes);
    let count = r.u32().map_err(decode)? as usize;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        let value = r.value().map_err(decode)?;
        values.push(if value == Value::Null {
            None
        } else {
            Some(value)
        });
    }
    Ok(values)
}

/// A 2PC part reading one key (votes `ReadOnly`).
pub fn get_part(shard: usize, call: ProcedureCall, key: Key) -> ShardPart {
    ShardPart::new(shard, call, KV_GET, key_args(key))
}

/// A 2PC part writing one key.
pub fn put_part(shard: usize, call: ProcedureCall, key: Key, value: &Value) -> ShardPart {
    ShardPart::new(shard, call, KV_PUT, put_args(key, value))
}

/// A 2PC part incrementing one field of one key.
pub fn increment_part(
    shard: usize,
    call: ProcedureCall,
    key: Key,
    field: u32,
    delta: i64,
) -> ShardPart {
    ShardPart::new(shard, call, KV_INCREMENT, increment_args(key, field, delta))
}
