//! # tebaldi-cluster
//!
//! Sharded multi-database federation for the Tebaldi reproduction: runs N
//! independent [`Database`](tebaldi_core::Database) shards — each with its
//! own hierarchical CC tree, multiversion store, and WAL — behind a
//! [`ShardRouter`], and stitches cross-shard transactions together with a
//! two-phase-commit [`TxnCoordinator`].
//!
//! The shard boundary is a *declared operation interface*, not code: every
//! interaction is a serializable [`ShardRequest`]/[`ShardResponse`] pair
//! naming a transaction body by [`ProcId`](tebaldi_core::ProcId) in the
//! shard's [`ProcRegistry`](tebaldi_core::ProcRegistry), with encoded
//! arguments. Requests travel over a pluggable [`ShardTransport`]:
//!
//! ```text
//!                 ┌────────────────────────────────────────────┐
//!   Cluster ──────│ ShardRequest { Execute | Prepare | Commit  │
//!   (router, 2PC  │   | CommitOnePhase | Abort | Stats | Flush │
//!   coordinator)  │   | Metrics }                              │
//!                 └────────────────┬───────────────────────────┘
//!                                  │  ShardTransport
//!                   ┌──────────────┴─────────────┐
//!            InProcessTransport            TcpTransport
//!            (mailbox enum calls,          (length-prefixed frames,
//!             zero-copy fast path)          per-shard server loops)
//!                   └──────────────┬─────────────┘
//!                         ShardWorkers + ProcRegistry
//!                         (per-shard pools, Database)
//! ```
//!
//! The execution paths:
//!
//! * **single-shard fast path** — the router classifies the transaction's
//!   partition keys; when they land on one shard, the call ships the
//!   procedure id + arguments to that shard
//!   ([`Cluster::execute_single`] synchronously — inline on the calling
//!   thread for the in-process transport — or [`Cluster::submit`]
//!   asynchronously through the shard's batched mailbox);
//! * **multi-shard 2PC** — each participant shard *prepares* its part
//!   (execute, validate, wait dependencies, flush a `Prepare` WAL record,
//!   keep the locks), the coordinator logs the commit decision durably (the
//!   commit point), and only then do the shards commit
//!   ([`Cluster::execute_multi`]);
//! * **recovery** — a shard crash between prepare and decision leaves the
//!   transaction in doubt; [`recover_cluster`] resolves it against the
//!   coordinator's decision log (presumed abort when no decision exists).
//!
//! The crate sits between `tebaldi-core` and the workloads in the
//! dependency stack: `storage → cc → core → cluster → workloads/bench`.
//!
//! ## Observability
//!
//! Every layer records into `tebaldi-obs`: shard engines keep per-procedure
//! latency histograms and pipeline counters in their own
//! [`MetricsRegistry`](tebaldi_obs::MetricsRegistry), the coordinator keeps
//! 2PC-phase histograms, and [`Cluster::metrics`] merges everything into
//! one [`MetricsSnapshot`](tebaldi_obs::MetricsSnapshot) by fetching each
//! shard's registry through the transport ([`ShardRequest::Metrics`]).
//! Sampled transactions (`ClusterConfig::trace_sample_every`) additionally
//! carry a trace id across the shard boundary — including over the TCP wire
//! format — and leave coordinator + shard spans in the process trace sink
//! ([`tebaldi_obs::collect`]).

pub mod api;
pub mod cluster;
pub mod coordinator;
pub mod faults;
pub mod procs;
pub mod replication;
pub mod router;
pub mod tcp;
pub mod transport;
pub mod wire;
pub mod worker;

pub use api::{ShardRequest, ShardResponse, ShardResult, ShardStatsReply};
pub use cluster::{
    recover_cluster, test_read_consistency, test_replication, test_transport, BatchKeySets,
    BatchTxn, Cluster, ClusterBuilder, ClusterClock, ClusterConfig, ClusterStats, ReadConsistency,
    ReadPart, ShardPart, SnapshotHandle, TxnOptions,
};
pub use coordinator::{CoordinatorStats, TxnCoordinator};
pub use faults::{FaultPlan, FaultyTransport, LogLinkVerdict, ReplicaLinkLane};
pub use replication::{
    truncate_divergent_suffix, ReplicaNode, ReplicationConfig, ShardReplication, StaleFollower,
};
pub use router::{Partitioning, Routing, ShardRouter};
pub use tcp::{ReconnectPolicy, TcpShardServer, TcpTransport};
pub use transport::{InProcessTransport, ShardTransport, TransportKind, TransportStats};
pub use worker::{ShardWorkers, Ticket, Vote};
