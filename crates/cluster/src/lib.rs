//! # tebaldi-cluster
//!
//! Sharded multi-database federation for the Tebaldi reproduction: runs N
//! independent [`Database`](tebaldi_core::Database) shards — each with its
//! own hierarchical CC tree, multiversion store, and WAL — behind a
//! [`ShardRouter`], and stitches cross-shard transactions together with a
//! two-phase-commit [`TxnCoordinator`].
//!
//! The execution paths:
//!
//! * **single-shard fast path** — the router classifies the transaction's
//!   partition keys; when they land on one shard, the call delegates
//!   straight to that shard's existing four-phase protocol
//!   ([`Cluster::execute_single`]), or asynchronously through the shard's
//!   batched mailbox ([`Cluster::submit`]);
//! * **multi-shard 2PC** — each participant shard *prepares* its part
//!   (execute, validate, wait dependencies, flush a `Prepare` WAL record,
//!   keep the locks), the coordinator logs the commit decision durably (the
//!   commit point), and only then do the shards commit
//!   ([`Cluster::execute_multi`]);
//! * **recovery** — a shard crash between prepare and decision leaves the
//!   transaction in doubt; [`recover_cluster`] resolves it against the
//!   coordinator's decision log (presumed abort when no decision exists).
//!
//! The crate sits between `tebaldi-core` and the workloads in the
//! dependency stack: `storage → cc → core → cluster → workloads/bench`.

pub mod cluster;
pub mod coordinator;
pub mod router;
pub mod worker;

pub use cluster::{
    recover_cluster, Cluster, ClusterBuilder, ClusterClock, ClusterConfig, ClusterStats, ShardPart,
};
pub use coordinator::{CoordinatorStats, TxnCoordinator};
pub use router::{Partitioning, Routing, ShardRouter};
pub use worker::{ShardOp, ShardWorkers, Ticket, Vote};
