//! Primary/backup WAL shipping with quorum-gated acknowledgement and
//! follower reads.
//!
//! Every shard primary streams its WAL to N backups as length-prefixed
//! frames — the same wire idiom `tcp.rs`/`wire.rs` speak — and the group-
//! commit completion loop waits for a quorum of replica acks before a batch
//! is acknowledged to clients. Replication therefore rides the existing
//! coalesced-flush path: one `sync()` call per hardened batch, not one
//! blocking seam per transaction.
//!
//! The shipping protocol is deliberately idempotent. A shipper always
//! resumes from the replica's *acknowledged* LSN (a record index into the
//! durable log), so dropped or partitioned frames cost lag, never
//! divergence; a replica applies a batch only where it extends its applied
//! prefix and re-acks its current LSN otherwise, which doubles as the
//! resync handshake after a reconnect.
//!
//! Followers materialize a read snapshot from their shipped log via the
//! standard recovery replay ([`recover_with_resolver`]) and serve
//! bounded-staleness reads and read-only participant votes: a follower
//! whose applied LSN is behind the caller's minimum refuses (or waits out)
//! the read rather than serving a snapshot it cannot justify. Because the
//! primary ships only *durable* records in order, a follower's log is
//! always a durable prefix of the primary's — sealing the epochs it holds
//! before replay is exactly as safe as the primary's own group-commit ack
//! discipline.
//!
//! Failover: [`ShardReplication::promote`] stops shipping and hands back
//! the chosen backup's log (sealed) for the cluster to recover a fresh
//! primary from; [`truncate_divergent_suffix`] cuts a rejoining old
//! primary's unreplicated tail so records past the surviving quorum never
//! resurface.

use crate::faults::{FaultPlan, LogLinkVerdict, ReplicaLinkLane};
use crate::wire::{read_frame, write_frame};
use parking_lot::{Condvar, Mutex};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tebaldi_obs::{Counter, MaxGauge, MetricsRegistry};
use tebaldi_storage::codec::{ByteReader, ByteWriter};
use tebaldi_storage::recovery::recover_with_resolver;
use tebaldi_storage::wal::{LogDevice, LogRecord, MemLogDevice};
use tebaldi_storage::{Key, MvStore, ReadSpec, Value};

/// Records per shipped frame. Bounds frame size well under
/// `wire::MAX_FRAME_LEN` while keeping per-frame overhead negligible.
const SHIP_CHUNK: usize = 256;

/// How a replication group is sized and how long the group-commit path
/// waits for replica acknowledgements before degrading to local-only
/// durability for that batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Backups per shard.
    pub replicas: usize,
    /// Acks (out of `replicas`) required before a hardened batch is
    /// acknowledged. Clamped to `replicas`; zero disables the gate.
    pub quorum: usize,
    /// Upper bound on the quorum wait per batch. On expiry the batch is
    /// acked on local durability alone and `replication.acks_timed_out`
    /// is incremented — replication lag must not wedge the pipeline.
    pub ack_timeout_ms: u64,
}

impl ReplicationConfig {
    /// `replicas` backups with a majority quorum and a generous timeout.
    pub fn majority(replicas: usize) -> Self {
        ReplicationConfig {
            replicas,
            quorum: replicas / 2 + usize::from(replicas > 0),
            ack_timeout_ms: 2_000,
        }
    }

    /// The effective quorum (clamped to the replica count).
    pub fn effective_quorum(&self) -> usize {
        self.quorum.min(self.replicas)
    }
}

/// A follower could not serve a read at the required LSN within the wait
/// budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleFollower {
    /// The follower's applied LSN at refusal time.
    pub applied: u64,
    /// The LSN the caller required.
    pub required: u64,
}

impl std::fmt::Display for StaleFollower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "follower at lsn {} cannot serve reads at lsn {}",
            self.applied, self.required
        )
    }
}

/// Serializes a shipped batch: start LSN, record count, then each record
/// as a length-prefixed JSON blob (the `FileLogDevice` on-disk idiom).
fn encode_batch(start: u64, records: &[LogRecord]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(start);
    w.put_u32(records.len() as u32);
    for record in records {
        let blob = serde_json::to_string(record).expect("log records serialize");
        w.put_bytes(blob.as_bytes());
    }
    w.into_bytes()
}

/// Decodes a shipped batch. Malformed frames yield an error and tear the
/// connection down — the shipper reconnects and resyncs from the ack.
fn decode_batch(bytes: &[u8]) -> Result<(u64, Vec<LogRecord>), String> {
    let mut r = ByteReader::new(bytes);
    let start = r.u64().map_err(|e| e.to_string())?;
    let count = r.u32().map_err(|e| e.to_string())? as usize;
    let mut records = Vec::with_capacity(count.min(SHIP_CHUNK));
    for _ in 0..count {
        let blob = r.bytes().map_err(|e| e.to_string())?;
        let text = std::str::from_utf8(blob).map_err(|e| e.to_string())?;
        let record = serde_json::from_str(text).map_err(|e| e.to_string())?;
        records.push(record);
    }
    r.expect_end().map_err(|e| e.to_string())?;
    Ok((start, records))
}

fn encode_ack(applied: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(applied);
    w.into_bytes()
}

fn decode_ack(bytes: &[u8]) -> Result<u64, String> {
    let mut r = ByteReader::new(bytes);
    let applied = r.u64().map_err(|e| e.to_string())?;
    r.expect_end().map_err(|e| e.to_string())?;
    Ok(applied)
}

/// The largest GCP epoch named anywhere in `records`.
fn max_epoch(records: &[LogRecord]) -> u64 {
    records
        .iter()
        .map(|r| match r {
            LogRecord::Precommit { gcp_epoch, .. } => *gcp_epoch,
            LogRecord::Commit { global_epoch, .. } => *global_epoch,
            LogRecord::EpochSeal { epoch } => *epoch,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// An immutable record list masquerading as a log device so recovery can
/// replay it. Used to materialize follower snapshots without mutating the
/// follower's real log.
struct FrozenLog {
    records: Vec<LogRecord>,
}

impl LogDevice for FrozenLog {
    fn append(&self, _record: &LogRecord) {}
    fn flush(&self) {}
    fn read_back(&self) -> Vec<LogRecord> {
        self.records.clone()
    }
}

/// Replays `records` into a fresh store with all held epochs sealed.
/// Sealing is sound because every shipped record was durable on the
/// primary before it was sent (ship-after-flush discipline); in-doubt
/// prepares resolve through `resolver` exactly as in crash recovery.
fn materialize(
    records: Vec<LogRecord>,
    store_shards: usize,
    resolver: &dyn Fn(u64) -> Option<u64>,
) -> MvStore {
    let mut records = records;
    records.push(LogRecord::EpochSeal {
        epoch: max_epoch(&records),
    });
    let frozen = FrozenLog { records };
    let (store, _report) = recover_with_resolver(&frozen, MvStore::new(store_shards), resolver);
    store
}

/// Read-snapshot cache: rebuilt only when the applied LSN moves.
#[derive(Default)]
struct SnapshotCache {
    lsn: u64,
    store: Option<Arc<MvStore>>,
}

/// A backup for one shard: a TCP listener that applies shipped batches
/// into its own in-memory log and serves bounded-staleness reads from a
/// snapshot materialized via crash-recovery replay.
pub struct ReplicaNode {
    log: Arc<MemLogDevice>,
    applied: Mutex<u64>,
    applied_cv: Condvar,
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
    conns: Mutex<Vec<TcpStream>>,
    store_shards: usize,
    cache: Mutex<SnapshotCache>,
}

impl ReplicaNode {
    /// Binds a loopback listener and starts the apply loop.
    /// `store_shards` is the shard count for materialized read stores
    /// (the engine's `DbConfig::shards`).
    pub fn spawn(store_shards: usize) -> std::io::Result<Arc<Self>> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let node = Arc::new(ReplicaNode {
            log: Arc::new(MemLogDevice::new()),
            applied: Mutex::new(0),
            applied_cv: Condvar::new(),
            addr,
            stopping: Arc::new(AtomicBool::new(false)),
            accept_handle: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
            store_shards,
            cache: Mutex::new(SnapshotCache::default()),
        });
        let accept_node = Arc::clone(&node);
        let handle = std::thread::spawn(move || {
            let mut serving = Vec::new();
            for conn in listener.incoming() {
                if accept_node.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if let Ok(clone) = stream.try_clone() {
                    accept_node.conns.lock().push(clone);
                }
                let serve_node = Arc::clone(&accept_node);
                serving.push(std::thread::spawn(move || serve_node.serve(stream)));
            }
            for h in serving {
                let _ = h.join();
            }
        });
        *node.accept_handle.lock() = Some(handle);
        Ok(node)
    }

    /// The listener address a shipper connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Records applied so far (the follower's LSN).
    pub fn applied_lsn(&self) -> u64 {
        *self.applied.lock()
    }

    /// The follower's own log (a faithful durable prefix of the
    /// primary's). Promotion recovers a new primary from this.
    pub fn log(&self) -> Arc<MemLogDevice> {
        Arc::clone(&self.log)
    }

    /// Blocks until the applied LSN reaches `lsn` or `timeout` expires.
    pub fn wait_applied(&self, lsn: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut applied = self.applied.lock();
        while *applied < lsn {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.applied_cv.wait_for(&mut applied, deadline - now);
        }
        true
    }

    /// The follower's current read snapshot: (applied LSN, store).
    /// Rebuilt by recovery replay only when the LSN has moved since the
    /// last call; in-doubt prepares read as aborted (their writes are
    /// invisible until a shipped decision resolves them).
    pub fn snapshot(&self) -> (u64, Arc<MvStore>) {
        let applied = *self.applied.lock();
        let mut cache = self.cache.lock();
        if cache.store.is_none() || cache.lsn != applied {
            let store = materialize(self.log.read_back(), self.store_shards, &|_| None);
            cache.lsn = applied;
            cache.store = Some(Arc::new(store));
        }
        (applied, Arc::clone(cache.store.as_ref().expect("cached")))
    }

    /// One shipper connection: apply batches, ack the applied LSN.
    fn serve(&self, mut stream: TcpStream) {
        loop {
            if self.stopping.load(Ordering::SeqCst) {
                return;
            }
            let payload = match read_frame(&mut stream) {
                Ok(Some(p)) => p,
                Ok(None) | Err(_) => return,
            };
            let applied = match decode_batch(&payload) {
                Ok((start, records)) => self.apply(start, records),
                Err(_) => return,
            };
            if write_frame(&mut stream, &encode_ack(applied)).is_err() {
                return;
            }
        }
    }

    /// Applies a batch where it extends the applied prefix; overlapping
    /// resends are deduplicated, gapped batches ignored. Always returns
    /// the current applied LSN — the re-ack is the resync handshake.
    fn apply(&self, start: u64, records: Vec<LogRecord>) -> u64 {
        let mut applied = self.applied.lock();
        if start <= *applied {
            let skip = (*applied - start) as usize;
            if skip < records.len() {
                for record in &records[skip..] {
                    self.log.append(record);
                }
                self.log.flush();
                *applied += (records.len() - skip) as u64;
                self.applied_cv.notify_all();
            }
        }
        *applied
    }

    /// Stops the listener and all connection threads.
    pub fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept_handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ShipGate {
    paused: bool,
}

/// Primary-side replication for one shard: per-replica shipper threads,
/// the quorum gate the completion loop blocks on, and the follower-read
/// entry points.
pub struct ShardReplication {
    cfg: ReplicationConfig,
    log: Arc<dyn LogDevice>,
    replicas: Vec<Arc<ReplicaNode>>,
    acked: Vec<Arc<AtomicU64>>,
    gate: Mutex<ShipGate>,
    ship_cv: Condvar,
    quorum_mx: Mutex<()>,
    quorum_cv: Condvar,
    stopping: Arc<AtomicBool>,
    shippers: Mutex<Vec<JoinHandle<()>>>,
    shipped_records: Arc<Counter>,
    shipped_bytes: Arc<Counter>,
    lag_records: Arc<MaxGauge>,
    lag_bytes: Arc<MaxGauge>,
    quorum_waits: Arc<Counter>,
    quorum_wait_ns: Arc<Counter>,
    acks_timed_out: Arc<Counter>,
    follower_reads: Arc<Counter>,
    follower_read_refusals: Arc<Counter>,
    frames_dropped: Arc<Counter>,
    frames_delayed: Arc<Counter>,
    frames_partitioned: Arc<Counter>,
}

impl ShardReplication {
    /// Spawns the replica nodes and one shipper thread per replica.
    /// `log` is the primary's device (records ship strictly from its
    /// durable prefix); `store_shards` sizes follower read stores;
    /// `faults` carves per-link lanes out of the cluster fault plan.
    pub fn spawn(
        shard: usize,
        cfg: ReplicationConfig,
        log: Arc<dyn LogDevice>,
        store_shards: usize,
        metrics: &MetricsRegistry,
        faults: Option<&FaultPlan>,
    ) -> Result<Arc<Self>, String> {
        let mut replicas = Vec::with_capacity(cfg.replicas);
        for _ in 0..cfg.replicas {
            replicas.push(ReplicaNode::spawn(store_shards).map_err(|e| e.to_string())?);
        }
        let acked: Vec<Arc<AtomicU64>> = (0..cfg.replicas)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        let repl = Arc::new(ShardReplication {
            cfg,
            log,
            replicas,
            acked,
            gate: Mutex::new(ShipGate { paused: false }),
            ship_cv: Condvar::new(),
            quorum_mx: Mutex::new(()),
            quorum_cv: Condvar::new(),
            stopping: Arc::new(AtomicBool::new(false)),
            shippers: Mutex::new(Vec::new()),
            shipped_records: metrics.counter("replication.shipped_records"),
            shipped_bytes: metrics.counter("replication.shipped_bytes"),
            lag_records: metrics.max_gauge("replication.lag_records"),
            lag_bytes: metrics.max_gauge("replication.lag_bytes"),
            quorum_waits: metrics.counter("replication.quorum_waits"),
            quorum_wait_ns: metrics.counter("replication.quorum_wait_ns"),
            acks_timed_out: metrics.counter("replication.acks_timed_out"),
            follower_reads: metrics.counter("replication.follower_reads"),
            follower_read_refusals: metrics.counter("replication.follower_read_refusals"),
            frames_dropped: metrics.counter("replication.frames_dropped"),
            frames_delayed: metrics.counter("replication.frames_delayed"),
            frames_partitioned: metrics.counter("replication.frames_partitioned"),
        });
        let mut shippers = Vec::with_capacity(cfg.replicas);
        for index in 0..cfg.replicas {
            let shipper = Arc::clone(&repl);
            let lane = faults.map(|plan| plan.replica_lane(shard, index));
            shippers.push(std::thread::spawn(move || shipper.run_shipper(index, lane)));
        }
        *repl.shippers.lock() = shippers;
        Ok(repl)
    }

    /// The replication configuration in force.
    pub fn config(&self) -> ReplicationConfig {
        self.cfg
    }

    /// The replica at `index`, if any.
    pub fn replica(&self, index: usize) -> Option<&Arc<ReplicaNode>> {
        self.replicas.get(index)
    }

    /// Number of backups.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// LSN the replica at `index` has acknowledged.
    pub fn acked_lsn(&self, index: usize) -> u64 {
        self.acked
            .get(index)
            .map(|a| a.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Times the quorum gate expired and a batch was acknowledged on
    /// local durability alone (the `replication.acks_timed_out` counter).
    pub fn acks_timed_out(&self) -> u64 {
        self.acks_timed_out.get()
    }

    /// The highest LSN any replica holds — what survives the loss of the
    /// primary, and the truncation point for its rejoin.
    pub fn replicated_len(&self) -> usize {
        self.acked
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0) as usize
    }

    /// The LSN acknowledged by at least `quorum` replicas (the k-th
    /// highest ack). `u64::MAX` when the gate is disabled.
    pub fn quorum_lsn(&self) -> u64 {
        let quorum = self.cfg.effective_quorum();
        if quorum == 0 {
            return u64::MAX;
        }
        let mut acks: Vec<u64> = self
            .acked
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        acks[quorum - 1]
    }

    /// The quorum gate: blocks until a quorum of replicas has
    /// acknowledged everything durable on the primary right now, or the
    /// configured ack timeout expires. Returns `false` on timeout — the
    /// caller proceeds on local durability (degraded mode) so a dead
    /// replica cannot wedge the commit pipeline, and the timeout is
    /// counted for the operator.
    pub fn sync(&self) -> bool {
        let target = self.log.durable_len() as u64;
        if self.quorum_lsn() >= target {
            return true;
        }
        self.quorum_waits.inc();
        let start = Instant::now();
        let deadline = start + Duration::from_millis(self.cfg.ack_timeout_ms.max(1));
        self.ship_cv.notify_all();
        let mut guard = self.quorum_mx.lock();
        let ok = loop {
            if self.quorum_lsn() >= target {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            // Short slices: a missed notify costs a millisecond, not the
            // remainder of the timeout.
            let slice = (deadline - now).min(Duration::from_millis(1));
            self.quorum_cv.wait_for(&mut guard, slice);
        };
        drop(guard);
        self.quorum_wait_ns.add(start.elapsed().as_nanos() as u64);
        if !ok {
            self.acks_timed_out.inc();
        }
        ok
    }

    /// Pauses or resumes shipping (fault-injection hook for staleness
    /// tests; the quorum gate keeps timing out while paused).
    pub fn set_paused(&self, paused: bool) {
        self.gate.lock().paused = paused;
        self.ship_cv.notify_all();
    }

    /// A bounded-staleness read served by the replica at `index`: waits
    /// up to `wait` for the follower to reach `min_lsn`, then reads the
    /// latest committed version from its materialized snapshot. Refuses
    /// with [`StaleFollower`] if the follower cannot catch up in time.
    pub fn follower_read(
        &self,
        index: usize,
        key: &Key,
        min_lsn: u64,
        wait: Duration,
    ) -> Result<Option<Value>, StaleFollower> {
        let applied = self.follower_vote_gate(index, min_lsn, wait)?;
        let node = &self.replicas[index];
        let (_lsn, store) = node.snapshot();
        self.follower_reads.inc();
        let _ = applied;
        Ok(store.read_visible(key, ReadSpec::LatestCommitted))
    }

    /// The staleness gate behind a follower-served read-only participant
    /// vote: succeeds (returning the follower's applied LSN, its vote
    /// serialization point) only once the follower has applied at least
    /// `min_lsn`. A refused vote falls back to the primary — the
    /// ReadOnly-vote-serializes-at-vote-time contract is preserved
    /// because the follower votes only on a prefix it actually holds.
    pub fn follower_vote_gate(
        &self,
        index: usize,
        min_lsn: u64,
        wait: Duration,
    ) -> Result<u64, StaleFollower> {
        let node = match self.replicas.get(index) {
            Some(node) => node,
            None => {
                self.follower_read_refusals.inc();
                return Err(StaleFollower {
                    applied: 0,
                    required: min_lsn,
                });
            }
        };
        if !node.wait_applied(min_lsn, wait) {
            self.follower_read_refusals.inc();
            return Err(StaleFollower {
                applied: node.applied_lsn(),
                required: min_lsn,
            });
        }
        Ok(node.applied_lsn())
    }

    /// Stops shipping and the replica listeners, then hands back the
    /// promoted backup's log with its shipped epochs sealed — the
    /// recovery source for the new primary. Sealing what the follower
    /// holds is sound because only primary-durable records were ever
    /// shipped.
    pub fn promote(&self, index: usize) -> Result<Arc<MemLogDevice>, String> {
        let node = self
            .replicas
            .get(index)
            .ok_or_else(|| format!("no replica {index}"))?;
        self.stop_shipping();
        let log = node.log();
        let records = log.read_back();
        log.append(&LogRecord::EpochSeal {
            epoch: max_epoch(&records),
        });
        log.flush();
        Ok(log)
    }

    /// Stops the shipper threads (idempotent); replica listeners stay up.
    ///
    /// Failover calls this as a fence *before* stopping the old primary:
    /// with shipping stopped, any prepare still in flight on the primary
    /// fails its quorum gate and votes abort instead of yes.
    pub fn stop_shipping(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.ship_cv.notify_all();
        for handle in self.shippers.lock().drain(..) {
            let _ = handle.join();
        }
    }

    /// Full teardown: shippers and replica nodes.
    pub fn shutdown(&self) {
        self.stop_shipping();
        for node in &self.replicas {
            node.shutdown();
        }
    }

    /// One shipper: follows the primary's durable log from the replica's
    /// acknowledged LSN, shipping chunked frames through the fault lane.
    fn run_shipper(&self, index: usize, mut lane: Option<ReplicaLinkLane>) {
        let addr = self.replicas[index].addr();
        let acked = Arc::clone(&self.acked[index]);
        let mut stream: Option<TcpStream> = None;
        while !self.stopping.load(Ordering::SeqCst) {
            {
                let mut gate = self.gate.lock();
                if gate.paused {
                    self.ship_cv.wait_for(&mut gate, Duration::from_millis(20));
                    continue;
                }
            }
            let from = acked.load(Ordering::Relaxed) as usize;
            let durable = self.log.durable_len();
            if durable <= from {
                let mut gate = self.gate.lock();
                if !self.stopping.load(Ordering::SeqCst) {
                    self.ship_cv.wait_for(&mut gate, Duration::from_millis(5));
                }
                continue;
            }
            let records = self.log.read_from(from);
            self.lag_records.observe(records.len() as u64);
            let mut attempt_bytes = 0u64;
            let mut start = from as u64;
            for chunk in records.chunks(SHIP_CHUNK) {
                let payload = encode_batch(start, chunk);
                attempt_bytes += payload.len() as u64;
                match lane.as_mut().map(|l| l.judge()) {
                    Some(LogLinkVerdict::Drop) => {
                        self.frames_dropped.inc();
                        break;
                    }
                    Some(LogLinkVerdict::Partitioned) => {
                        self.frames_partitioned.inc();
                        break;
                    }
                    Some(LogLinkVerdict::Delay(delay)) => {
                        self.frames_delayed.inc();
                        std::thread::sleep(delay);
                    }
                    Some(LogLinkVerdict::Deliver) | None => {}
                }
                if stream.is_none() {
                    stream = TcpStream::connect(addr).ok();
                }
                let Some(conn) = stream.as_mut() else {
                    std::thread::sleep(Duration::from_millis(1));
                    break;
                };
                let shipped = write_frame(conn, &payload).and_then(|_| read_frame(conn));
                match shipped {
                    Ok(Some(ack_bytes)) => match decode_ack(&ack_bytes) {
                        Ok(ack) => {
                            acked.store(ack, Ordering::Relaxed);
                            self.shipped_records.add(chunk.len() as u64);
                            self.shipped_bytes.add(payload.len() as u64);
                            self.quorum_cv.notify_all();
                            if ack != start + chunk.len() as u64 {
                                // Resync: the replica applied from a
                                // different prefix; restart from its ack.
                                break;
                            }
                            start = ack;
                        }
                        Err(_) => {
                            stream = None;
                            break;
                        }
                    },
                    _ => {
                        stream = None;
                        break;
                    }
                }
            }
            self.lag_bytes.observe(attempt_bytes);
        }
    }
}

impl Drop for ShardReplication {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cuts a rejoining old primary's divergent suffix: every record past
/// what the surviving replication quorum holds is discarded (buffered
/// tail included) so it cannot resurface on recovery. Returns `false`
/// when the device does not support truncation.
pub fn truncate_divergent_suffix(device: &dyn LogDevice, replicated_len: usize) -> bool {
    device.truncate_to(replicated_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_storage::schema::TableId;
    use tebaldi_storage::{Timestamp, TxnId};

    fn committed_write(txn: u64, id: u64, value: i64, epoch: u64) -> Vec<LogRecord> {
        vec![
            LogRecord::Precommit {
                txn: TxnId(txn),
                participants: 1,
                shard: 0,
                gcp_epoch: epoch,
                writes: vec![(Key::simple(TableId(1), id), Value::Int(value))],
            },
            LogRecord::Commit {
                txn: TxnId(txn),
                global_epoch: epoch,
                commit_ts: Timestamp(txn),
                hlc: 0,
            },
        ]
    }

    fn metrics() -> MetricsRegistry {
        MetricsRegistry::new()
    }

    #[test]
    fn batch_and_ack_codecs_roundtrip() {
        let records = committed_write(7, 3, 30, 2);
        let bytes = encode_batch(41, &records);
        let (start, back) = decode_batch(&bytes).unwrap();
        assert_eq!(start, 41);
        assert_eq!(back, records);
        assert_eq!(decode_ack(&encode_ack(99)).unwrap(), 99);
        assert!(decode_batch(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn ships_to_quorum_and_serves_follower_reads() {
        let log: Arc<dyn LogDevice> = Arc::new(MemLogDevice::new());
        let reg = metrics();
        let repl = ShardReplication::spawn(
            0,
            ReplicationConfig {
                replicas: 2,
                quorum: 2,
                ack_timeout_ms: 5_000,
            },
            Arc::clone(&log),
            4,
            &reg,
            None,
        )
        .unwrap();
        for record in committed_write(1, 5, 50, 1) {
            log.append(&record);
        }
        log.flush();
        assert!(repl.sync(), "both replicas must ack before the batch acks");
        assert_eq!(repl.quorum_lsn(), log.durable_len() as u64);
        let value = repl
            .follower_read(
                0,
                &Key::simple(TableId(1), 5),
                log.durable_len() as u64,
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(value, Some(Value::Int(50)));
        assert!(reg.counter("replication.follower_reads").get() >= 1);
        assert!(reg.counter("replication.shipped_records").get() >= 2);
        repl.shutdown();
    }

    #[test]
    fn stale_follower_refuses_until_caught_up() {
        let log: Arc<dyn LogDevice> = Arc::new(MemLogDevice::new());
        let reg = metrics();
        let repl = ShardReplication::spawn(
            0,
            ReplicationConfig {
                replicas: 1,
                quorum: 1,
                ack_timeout_ms: 40,
            },
            Arc::clone(&log),
            4,
            &reg,
            None,
        )
        .unwrap();
        repl.set_paused(true);
        for record in committed_write(2, 8, 80, 1) {
            log.append(&record);
        }
        log.flush();
        let want = log.durable_len() as u64;
        let refused = repl.follower_read(0, &Key::simple(TableId(1), 8), want, Duration::ZERO);
        assert_eq!(
            refused,
            Err(StaleFollower {
                applied: 0,
                required: want
            })
        );
        assert!(!repl.sync(), "paused shipping must time the quorum out");
        assert_eq!(reg.counter("replication.acks_timed_out").get(), 1);
        repl.set_paused(false);
        let value = repl
            .follower_read(0, &Key::simple(TableId(1), 8), want, Duration::from_secs(2))
            .unwrap();
        assert_eq!(value, Some(Value::Int(80)));
        repl.shutdown();
    }

    #[test]
    fn hostile_lane_lags_but_converges() {
        let log: Arc<dyn LogDevice> = Arc::new(MemLogDevice::new());
        let reg = metrics();
        let plan = FaultPlan::hostile(0xfeed);
        let repl = ShardReplication::spawn(
            3,
            ReplicationConfig {
                replicas: 1,
                quorum: 1,
                ack_timeout_ms: 10_000,
            },
            Arc::clone(&log),
            4,
            &reg,
            Some(&plan),
        )
        .unwrap();
        for txn in 1..=20u64 {
            for record in committed_write(txn, txn, txn as i64, 1) {
                log.append(&record);
            }
            log.flush();
        }
        assert!(repl.sync(), "drops and partitions cost lag, not loss");
        assert_eq!(repl.acked_lsn(0), log.durable_len() as u64);
        repl.shutdown();
    }

    #[test]
    fn promote_seals_shipped_epochs_and_recovers_acked_writes() {
        let log: Arc<dyn LogDevice> = Arc::new(MemLogDevice::new());
        let reg = metrics();
        let repl = ShardReplication::spawn(
            0,
            ReplicationConfig {
                replicas: 1,
                quorum: 1,
                ack_timeout_ms: 5_000,
            },
            Arc::clone(&log),
            4,
            &reg,
            None,
        )
        .unwrap();
        for record in committed_write(3, 11, 110, 4) {
            log.append(&record);
        }
        log.flush();
        assert!(repl.sync());
        // The primary's device dies here; the follower log is the truth.
        let follower_log = repl.promote(0).unwrap();
        let (store, report) =
            recover_with_resolver(follower_log.as_ref(), MvStore::new(4), &|_| None);
        assert_eq!(report.recovered_txns, 1);
        assert_eq!(report.discarded_unsealed_epoch, 0, "promotion seals epochs");
        assert_eq!(
            store.read_visible(&Key::simple(TableId(1), 11), ReadSpec::LatestCommitted),
            Some(Value::Int(110))
        );
        // Rejoin: the old primary had an unreplicated (never-acked,
        // never-shipped) suffix — truncate it to the replicated length.
        log.append(&committed_write(9, 99, 990, 5)[0]);
        log.flush();
        let replicated = repl.replicated_len();
        assert!(truncate_divergent_suffix(log.as_ref(), replicated));
        assert_eq!(log.durable_len(), replicated);
        repl.shutdown();
    }
}
