//! TCP/loopback shard transport: per-shard server loops in front of the
//! worker pools, and a multiplexed frame client.
//!
//! ## Server
//!
//! A [`TcpShardServer`] owns a listener bound to `127.0.0.1:0` and accepts
//! any number of connections. Each connection gets a reader thread and a
//! writer thread joined by an outbox channel:
//!
//! * the reader decodes `(req_id, ShardRequest)` frames. Body-running
//!   requests (`Execute`, `Prepare`) go through the shard's batched
//!   mailbox with a reply sink that forwards into the outbox, so a
//!   blocking prepare never stalls the connection; decisions and admin
//!   ops are handled inline on the reader thread — the same
//!   "decisions never queue behind prepares" rule the mailbox enforces
//!   in process;
//! * the writer drains the outbox and writes `(req_id, ShardResult)`
//!   frames in completion order.
//!
//! A malformed frame (truncated, oversized, garbage) drops the connection;
//! the server itself stays up and keeps serving other connections.
//!
//! ## Client
//!
//! [`TcpTransport`] keeps one connection per shard. Requests are tagged
//! with a fresh id, registered in a pending map, and written under a small
//! send lock; a per-shard reader thread resolves tickets as reply frames
//! arrive. A lost connection fails every pending ticket with a clean
//! `CcError` (the waiting transactions abort) instead of hanging them.

use crate::api::{ShardRequest, ShardResult};
use crate::transport::{ShardTransport, TransportStats};
use crate::wire;
use crate::worker::{ShardWorkers, Ticket};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tebaldi_cc::CcError;

/// Default per-connection bound on body-running requests the server admits
/// into the shard pipeline at once. One bursty (or hostile) client then
/// stops being *read* once its budget is full — kernel-level TCP
/// backpressure — instead of monopolizing the shard's submission queue and
/// starving other connections. Well-behaved clients bound themselves with
/// the same window and never hit the server-side cap.
pub const DEFAULT_CONN_INFLIGHT: usize = 256;

/// How long a client submission may wait for the per-shard in-flight
/// window to open before failing the request (a full pipeline on a wedged
/// shard must not turn into an unbounded head-of-line hang).
const DEFAULT_WINDOW_WAIT: Duration = Duration::from_secs(10);

/// How long the server waits for a connection's admission budget to open
/// before giving up on the connection entirely. A client that keeps its
/// whole budget saturated this long is wedged or hostile; dropping the
/// connection fails its pending tickets cleanly and returns the budget,
/// instead of parking the reader forever.
const CONN_BUDGET_DEADLINE: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// One shard's RPC server loop.
pub struct TcpShardServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    /// Streams of live connections, keyed by a connection id, kept so
    /// shutdown can unblock their reader threads. Each connection handler
    /// removes its own entry when it exits — a long-running server with
    /// client churn must not accumulate dead descriptors.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpShardServer {
    /// Binds a loopback listener and starts accepting connections served
    /// by `workers`, with the default per-connection in-flight budget
    /// ([`DEFAULT_CONN_INFLIGHT`]).
    pub fn spawn(shard_index: usize, workers: Arc<ShardWorkers>) -> std::io::Result<Arc<Self>> {
        TcpShardServer::spawn_with_window(shard_index, workers, DEFAULT_CONN_INFLIGHT)
    }

    /// [`spawn`](TcpShardServer::spawn) with an explicit per-connection
    /// bound on concurrently admitted body-running requests (`0` disables
    /// the bound). A connection at its budget stops being read until one of
    /// its requests completes, so no single client can starve the others
    /// out of the shard's submission queue.
    pub fn spawn_with_window(
        shard_index: usize,
        workers: Arc<ShardWorkers>,
        conn_inflight: usize,
    ) -> std::io::Result<Arc<Self>> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let server = Arc::new(TcpShardServer {
            addr,
            stopping: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(HashMap::new())),
            accept_thread: Mutex::new(None),
        });
        let stopping = Arc::clone(&server.stopping);
        let conns = Arc::clone(&server.conns);
        let handle = std::thread::Builder::new()
            .name(format!("tebaldi-shard-{shard_index}-rpc-accept"))
            .spawn(move || {
                let mut next_conn_id = 0u64;
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().insert(conn_id, clone);
                    }
                    // Re-check after registering: shutdown() may have set
                    // `stopping` and drained the map between the loop-top
                    // check and the insert, in which case nobody else will
                    // ever close this socket.
                    if stopping.load(Ordering::SeqCst) {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        conns.lock().remove(&conn_id);
                        return;
                    }
                    let workers = Arc::clone(&workers);
                    let conns = Arc::clone(&conns);
                    let conn_stopping = Arc::clone(&stopping);
                    let _ = std::thread::Builder::new()
                        .name(format!("tebaldi-shard-{shard_index}-rpc-conn"))
                        .spawn(move || {
                            serve_connection(stream, workers, conn_inflight, conn_stopping);
                            // Drop this connection's shutdown handle so a
                            // long-running server never leaks descriptors.
                            conns.lock().remove(&conn_id);
                        });
                }
            })
            .expect("spawn shard rpc acceptor");
        *server.accept_thread.lock() = Some(handle);
        Ok(server)
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every live connection, and joins the
    /// acceptor.
    pub fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpShardServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reader half of one server connection. Returns (dropping the connection)
/// on the first I/O or protocol error.
fn serve_connection(
    stream: TcpStream,
    workers: Arc<ShardWorkers>,
    conn_inflight: usize,
    stopping: Arc<AtomicBool>,
) {
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    // Completion-order writer: jobs finish on worker threads and forward
    // their framed results here.
    let (outbox, outbox_rx) = mpsc::channel::<(u64, ShardResult)>();
    let writer_handle = std::thread::spawn(move || {
        let mut stream = stream;
        while let Ok((req_id, result)) = outbox_rx.recv() {
            let payload = wire::encode_result(req_id, &result);
            if wire::write_frame(&mut stream, &payload).is_err() {
                return;
            }
            if stream.flush().is_err() {
                return;
            }
        }
    });

    // This connection's share of the shard pipeline: body-running requests
    // currently admitted on its behalf. When the budget is exhausted the
    // reader stops pulling frames — the kernel socket buffer fills and the
    // peer blocks — so one connection's burst cannot crowd every other
    // client out of the submission queue. A well-behaved client bounds
    // itself with the same window client-side and never trips this.
    //
    // Known limitation of stop-reading backpressure: frames already behind
    // the throttled body frame in this connection's stream (including the
    // client's own phase-two decisions) are not decoded until the budget
    // opens. A budget-matched client never gets here; a client that wedges
    // its whole budget (e.g. bursting lock-blocked prepares whose decision
    // sits behind them) is dropped after `CONN_BUDGET_DEADLINE`, failing
    // its tickets cleanly — other connections are unaffected throughout.
    let admitted = Arc::new(InflightGate::new(conn_inflight, "connection".to_string()));

    // A clean close, I/O error, or oversized frame ends the loop and drops
    // the connection. Pending pipeline jobs still complete; their replies
    // are discarded when the outbox disconnects.
    while let Ok(Some(payload)) = wire::read_frame(&mut reader) {
        let (req_id, request) = match wire::decode_request(&payload) {
            Ok(decoded) => decoded,
            // Garbage frame: protocol error, drop the connection (the
            // client fails its pending tickets cleanly).
            Err(_) => break,
        };
        if request.runs_body() {
            // Wait for budget in short slices so server shutdown stays
            // prompt even with a throttled connection parked here.
            let deadline = Instant::now() + CONN_BUDGET_DEADLINE;
            let admitted_ok = loop {
                if stopping.load(Ordering::SeqCst) {
                    break false;
                }
                if admitted.acquire(Duration::from_millis(50)).is_ok() {
                    break true;
                }
                if Instant::now() >= deadline {
                    break false;
                }
            };
            if !admitted_ok {
                break;
            }
            let outbox = outbox.clone();
            let admitted = Arc::clone(&admitted);
            workers.submit_request(
                request,
                Box::new(move |result| {
                    admitted.release();
                    let _ = outbox.send((req_id, result));
                }),
            );
        } else {
            // Decisions/admin inline on the reader thread — never queued
            // behind blocking prepares and never counted against the
            // admission budget.
            let result = workers.handle_inline(request);
            let _ = outbox.send((req_id, result));
        }
    }
    // Actively shut the socket down: the server's shutdown list holds
    // another clone of this stream, so merely dropping ours would never
    // send FIN and the peer would block forever.
    let _ = reader.shutdown(std::net::Shutdown::Both);
    drop(outbox);
    let _ = writer_handle.join();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Pending entry: the reply sender plus whether the request counted
/// against the connection's in-flight window (body-running requests do;
/// decisions and admin ops bypass it — backpressuring a phase-two decision
/// behind queued prepares would stretch the prepared-lock window).
type PendingMap = Arc<Mutex<Option<HashMap<u64, (mpsc::Sender<ShardResult>, bool)>>>>;

/// Bound on concurrently admitted body-running requests, used on both
/// sides of a connection: the client gates its outstanding submissions per
/// shard (the transport's backpressure), the server gates each
/// connection's share of the shard pipeline. Acquire blocks (bounded by
/// the given wait) while the window is full and fails fast once the gate
/// is closed.
struct InflightGate {
    /// 0 = unbounded.
    limit: usize,
    /// Who the gate protects, for error messages ("shard 3", "connection").
    label: String,
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    inflight: usize,
    closed: bool,
}

impl InflightGate {
    fn new(limit: usize, label: String) -> Self {
        InflightGate {
            limit,
            label,
            state: Mutex::new(GateState {
                inflight: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Takes one window slot, waiting at most `timeout` for one to open.
    fn acquire(&self, timeout: Duration) -> Result<(), CcError> {
        if self.limit == 0 {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(CcError::Internal(format!(
                    "connection to {} is down",
                    self.label
                )));
            }
            if state.inflight < self.limit {
                state.inflight += 1;
                return Ok(());
            }
            if self.cv.wait_until(&mut state, deadline).timed_out() {
                // The pipeline stayed full for the whole wait: it is
                // wedged or hopelessly backlogged. Failing here keeps the
                // prepare-timeout promise for requests that never even
                // reached the wire.
                return Err(CcError::Internal(format!(
                    "{}'s in-flight window stayed full past the timeout",
                    self.label
                )));
            }
        }
    }

    fn release(&self) {
        if self.limit == 0 {
            return;
        }
        let mut state = self.state.lock();
        state.inflight = state.inflight.saturating_sub(1);
        drop(state);
        self.cv.notify_one();
    }

    /// Marks the connection dead: waiters fail immediately instead of
    /// sitting out the timeout on slots that can never free up.
    fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.cv.notify_all();
    }
}

struct ShardConn {
    /// Write half, serialized by a lock (frames are small and atomic).
    writer: Mutex<TcpStream>,
    pending: PendingMap,
    next_id: AtomicU64,
    gate: Arc<InflightGate>,
    reader_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Counters shared between connections.
#[derive(Default)]
struct WireCounters {
    messages_sent: AtomicU64,
    bytes_on_wire: AtomicU64,
}

/// The frame client: one multiplexed connection per shard.
pub struct TcpTransport {
    conns: Vec<Arc<ShardConn>>,
    counters: Arc<WireCounters>,
    /// How long a submission may wait for the in-flight window.
    window_wait: Duration,
    /// The per-shard servers, when this transport owns them (the default
    /// loopback deployment). Kept so shutdown tears both halves down.
    servers: Vec<Arc<TcpShardServer>>,
    stopping: AtomicBool,
}

impl TcpTransport {
    /// Spawns a loopback server in front of every worker pool and connects
    /// to each with an unbounded in-flight window: the single-process
    /// deployment of the wire protocol.
    pub fn over_loopback(shards: &[Arc<ShardWorkers>]) -> Result<Self, String> {
        TcpTransport::over_loopback_with_window(shards, 0, DEFAULT_WINDOW_WAIT)
    }

    /// [`over_loopback`](TcpTransport::over_loopback) with a bounded
    /// in-flight window: at most `window` body-running requests outstanding
    /// per shard connection (`0` = unbounded), waiting at most
    /// `window_wait` for a slot before failing the submission. The same
    /// bound is installed server-side as each connection's admission
    /// budget.
    pub fn over_loopback_with_window(
        shards: &[Arc<ShardWorkers>],
        window: usize,
        window_wait: Duration,
    ) -> Result<Self, String> {
        let conn_inflight = if window == 0 {
            DEFAULT_CONN_INFLIGHT
        } else {
            window
        };
        let mut servers = Vec::with_capacity(shards.len());
        for (index, workers) in shards.iter().enumerate() {
            servers.push(
                TcpShardServer::spawn_with_window(index, Arc::clone(workers), conn_inflight)
                    .map_err(|err| format!("shard {index} rpc server: {err}"))?,
            );
        }
        let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.addr()).collect();
        let mut transport = TcpTransport::connect_with_window(&addrs, window, window_wait)?;
        transport.servers = servers;
        Ok(transport)
    }

    /// Connects to already-running shard servers (which may live in other
    /// processes; this client does not own them), with an unbounded
    /// in-flight window.
    pub fn connect(addrs: &[SocketAddr]) -> Result<Self, String> {
        TcpTransport::connect_with_window(addrs, 0, DEFAULT_WINDOW_WAIT)
    }

    /// [`connect`](TcpTransport::connect) with a bounded in-flight window
    /// per shard connection (`0` = unbounded; see
    /// [`over_loopback_with_window`](TcpTransport::over_loopback_with_window)).
    pub fn connect_with_window(
        addrs: &[SocketAddr],
        window: usize,
        window_wait: Duration,
    ) -> Result<Self, String> {
        let counters = Arc::new(WireCounters::default());
        let mut conns = Vec::with_capacity(addrs.len());
        for (shard, addr) in addrs.iter().enumerate() {
            let stream = TcpStream::connect(addr)
                .map_err(|err| format!("connect to shard {shard} at {addr}: {err}"))?;
            stream.set_nodelay(true).ok();
            let reader_stream = stream
                .try_clone()
                .map_err(|err| format!("clone shard {shard} stream: {err}"))?;
            let pending: PendingMap = Arc::new(Mutex::new(Some(HashMap::new())));
            let gate = Arc::new(InflightGate::new(window, format!("shard {shard}")));
            let conn = Arc::new(ShardConn {
                writer: Mutex::new(stream),
                pending: Arc::clone(&pending),
                next_id: AtomicU64::new(1),
                gate: Arc::clone(&gate),
                reader_thread: Mutex::new(None),
            });
            let reader_counters = Arc::clone(&counters);
            let handle = std::thread::Builder::new()
                .name(format!("tebaldi-rpc-client-shard-{shard}"))
                .spawn(move || {
                    let mut stream = reader_stream;
                    while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
                        reader_counters
                            .bytes_on_wire
                            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
                        let Ok((req_id, result)) = wire::decode_result(&payload) else {
                            // Garbage reply: the stream is no longer
                            // trustworthy.
                            break;
                        };
                        let entry = pending.lock().as_mut().and_then(|map| map.remove(&req_id));
                        if let Some((sender, windowed)) = entry {
                            if windowed {
                                gate.release();
                            }
                            let _ = sender.send(result);
                        }
                    }
                    // Connection lost: fail every pending ticket (dropping
                    // the senders resolves the tickets with a disconnect
                    // error), reject future submissions, and release the
                    // window waiters so they fail fast too.
                    pending.lock().take();
                    gate.close();
                })
                .expect("spawn rpc client reader");
            *conn.reader_thread.lock() = Some(handle);
            conns.push(conn);
        }
        Ok(TcpTransport {
            conns,
            counters,
            window_wait,
            servers: Vec::new(),
            stopping: AtomicBool::new(false),
        })
    }

    /// The addresses of the servers this transport owns (empty when it
    /// only connected to external servers).
    pub fn server_addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.addr()).collect()
    }
}

impl ShardTransport for TcpTransport {
    fn shard_count(&self) -> usize {
        self.conns.len()
    }

    fn submit(&self, shard: usize, request: ShardRequest) -> Ticket<ShardResult> {
        let Some(conn) = self.conns.get(shard) else {
            return Ticket::ready(Err(CcError::Internal(format!(
                "request targets shard {shard}, but the transport reaches {}",
                self.conns.len()
            ))));
        };
        // Backpressure: body-running requests take a window slot (released
        // when their reply lands). Decisions and admin ops bypass the
        // window — stalling a phase-two decision behind queued prepares
        // would stretch every prepared participant's lock window.
        let windowed = request.runs_body();
        if windowed {
            if let Err(err) = conn.gate.acquire(self.window_wait) {
                return Ticket::ready(Err(err));
            }
        }
        let req_id = conn.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, ticket) = Ticket::pending();
        {
            let mut pending = conn.pending.lock();
            match pending.as_mut() {
                Some(map) => {
                    map.insert(req_id, (tx, windowed));
                }
                None => {
                    if windowed {
                        conn.gate.release();
                    }
                    return Ticket::ready(Err(CcError::Internal(format!(
                        "connection to shard {shard} is down"
                    ))));
                }
            }
        }
        let payload = wire::encode_request(req_id, &request);
        let write_result = {
            let mut writer = conn.writer.lock();
            wire::write_frame(&mut *writer, &payload).and_then(|n| writer.flush().map(|()| n))
        };
        match write_result {
            Ok(frame_len) => {
                self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_on_wire
                    .fetch_add(frame_len as u64, Ordering::Relaxed);
                ticket
            }
            Err(err) => {
                if let Some(map) = conn.pending.lock().as_mut() {
                    map.remove(&req_id);
                }
                if windowed {
                    conn.gate.release();
                }
                Ticket::ready(Err(CcError::Internal(format!(
                    "send to shard {shard} failed: {err}"
                ))))
            }
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            messages_sent: self.counters.messages_sent.load(Ordering::Relaxed),
            bytes_on_wire: self.counters.bytes_on_wire.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        for conn in &self.conns {
            // Wake window waiters first so no submitter sits out its full
            // window wait against a transport that is going away.
            conn.gate.close();
            let _ = conn.writer.lock().shutdown(std::net::Shutdown::Both);
        }
        for conn in &self.conns {
            if let Some(handle) = conn.reader_thread.lock().take() {
                let _ = handle.join();
            }
        }
        for server in &self.servers {
            server.shutdown();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        ShardTransport::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_core::{Database, DbConfig, ProcId, ProcRegistry, ProcedureCall};
    use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);
    const BUMP: ProcId = ProcId(1);

    fn pool() -> Arc<ShardWorkers> {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        let db = Arc::new(
            Database::builder(DbConfig::for_tests())
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .build()
                .unwrap(),
        );
        db.load(Key::simple(TABLE, 1), Value::Int(0));
        let mut reg = ProcRegistry::new();
        reg.register_fn(BUMP, |txn, _args| {
            txn.increment(Key::simple(TABLE, 1), 0, 1).map(Value::Int)
        });
        ShardWorkers::spawn(0, db, 2, Arc::new(reg))
    }

    fn execute() -> ShardRequest {
        ShardRequest::Execute {
            proc: BUMP,
            call: ProcedureCall::new(TY),
            args: Vec::new(),
            max_attempts: 10,
            trace: tebaldi_obs::TraceCtx::NONE,
        }
    }

    #[test]
    fn loopback_roundtrip_counts_wire_traffic() {
        let workers = pool();
        let transport = TcpTransport::over_loopback(&[Arc::clone(&workers)]).unwrap();
        let (value, _) = transport
            .call(0, execute())
            .unwrap()
            .into_executed()
            .unwrap();
        assert_eq!(value, Value::Int(1));
        let ticket = transport.submit(0, execute());
        ticket.wait().unwrap().unwrap();
        let stats = ShardTransport::stats(&transport);
        assert_eq!(stats.messages_sent, 2);
        assert!(stats.bytes_on_wire > 0);
        ShardTransport::shutdown(&transport);
        workers.shutdown();
    }

    #[test]
    fn garbage_frame_drops_connection_but_server_survives() {
        let workers = pool();
        let server = TcpShardServer::spawn(0, Arc::clone(&workers)).unwrap();

        // A hostile client: raw garbage bytes.
        {
            let mut raw = TcpStream::connect(server.addr()).unwrap();
            // A plausible length prefix followed by garbage payload.
            let mut frame = (8u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04]);
            raw.write_all(&frame).unwrap();
            raw.flush().unwrap();
            // The server must close the connection (clean EOF or reset),
            // not panic or answer.
            assert!(!matches!(wire::read_frame(&mut raw), Ok(Some(_))));
        }

        // An oversized frame announcement is also rejected.
        {
            let mut raw = TcpStream::connect(server.addr()).unwrap();
            raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
            raw.flush().unwrap();
            assert!(!matches!(wire::read_frame(&mut raw), Ok(Some(_))));
        }

        // A well-formed client still gets served afterwards.
        let transport = TcpTransport::connect(&[server.addr()]).unwrap();
        let (value, _) = transport
            .call(0, execute())
            .unwrap()
            .into_executed()
            .unwrap();
        assert_eq!(value, Value::Int(1));
        ShardTransport::shutdown(&transport);
        server.shutdown();
        workers.shutdown();
    }

    #[test]
    fn lost_connection_fails_pending_tickets_cleanly() {
        let workers = pool();
        let server = TcpShardServer::spawn(0, Arc::clone(&workers)).unwrap();
        let transport = TcpTransport::connect(&[server.addr()]).unwrap();
        // Kill the server, then submit: either the send fails or the
        // pending ticket resolves with a disconnect error — never a hang.
        server.shutdown();
        let ticket = transport.submit(0, execute());
        let outcome = ticket.wait_timeout(std::time::Duration::from_secs(5));
        match outcome {
            Ok(inner) => assert!(inner.is_err(), "request cannot succeed on a dead server"),
            Err(err) => assert!(matches!(err, CcError::Internal(_))),
        }
        ShardTransport::shutdown(&transport);
        workers.shutdown();
    }
}
