//! TCP/loopback shard transport: per-shard server loops in front of the
//! worker pools, and a multiplexed frame client.
//!
//! ## Server
//!
//! A [`TcpShardServer`] owns a listener bound to `127.0.0.1:0` and accepts
//! any number of connections. Each connection gets a reader thread and a
//! writer thread joined by an outbox channel:
//!
//! * the reader decodes `(req_id, ShardRequest)` frames. Body-running
//!   requests (`Execute`, `Prepare`) go through the shard's batched
//!   mailbox with a reply sink that forwards into the outbox, so a
//!   blocking prepare never stalls the connection; decisions and admin
//!   ops are handled inline on the reader thread — the same
//!   "decisions never queue behind prepares" rule the mailbox enforces
//!   in process;
//! * the writer drains the outbox and writes `(req_id, ShardResult)`
//!   frames in completion order.
//!
//! A malformed frame (truncated, oversized, garbage) drops the connection;
//! the server itself stays up and keeps serving other connections.
//!
//! ## Client
//!
//! [`TcpTransport`] keeps one connection per shard. Requests are tagged
//! with a fresh id, registered in a pending map, and written under a small
//! send lock; a per-shard reader thread resolves tickets as reply frames
//! arrive. A lost connection fails every pending ticket with a clean
//! [`CcError::Unreachable`] (the waiting transactions abort) instead of
//! hanging them — and then the transport *re-dials*: the next submission
//! establishes a fresh connection (a new [`Link`] generation) under a
//! capped exponential backoff ([`ReconnectPolicy`]), so a restarted
//! [`TcpShardServer`] becomes reachable again without rebuilding the
//! transport. While the backoff window is closed, submissions fail fast
//! with a retryable `Unreachable` instead of dialing a dead address in a
//! tight loop. [`TcpTransport::set_shard_addr`] re-points one shard at a
//! new address (a server restarted on a different port).

use crate::api::{ShardRequest, ShardResult};
use crate::transport::{ShardTransport, TransportStats};
use crate::wire;
use crate::worker::{ShardWorkers, Ticket};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tebaldi_cc::CcError;
use tebaldi_core::Hlc;

/// Default per-connection bound on body-running requests the server admits
/// into the shard pipeline at once. One bursty (or hostile) client then
/// stops being *read* once its budget is full — kernel-level TCP
/// backpressure — instead of monopolizing the shard's submission queue and
/// starving other connections. Well-behaved clients bound themselves with
/// the same window and never hit the server-side cap.
pub const DEFAULT_CONN_INFLIGHT: usize = 256;

/// How long a client submission may wait for the per-shard in-flight
/// window to open before failing the request (a full pipeline on a wedged
/// shard must not turn into an unbounded head-of-line hang).
const DEFAULT_WINDOW_WAIT: Duration = Duration::from_secs(10);

/// How long the server waits for a connection's admission budget to open
/// before giving up on the connection entirely. A client that keeps its
/// whole budget saturated this long is wedged or hostile; dropping the
/// connection fails its pending tickets cleanly and returns the budget,
/// instead of parking the reader forever.
const CONN_BUDGET_DEADLINE: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// One shard's RPC server loop.
pub struct TcpShardServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    /// Streams of live connections, keyed by a connection id, kept so
    /// shutdown can unblock their reader threads. Each connection handler
    /// removes its own entry when it exits — a long-running server with
    /// client churn must not accumulate dead descriptors.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpShardServer {
    /// Binds a loopback listener and starts accepting connections served
    /// by `workers`, with the default per-connection in-flight budget
    /// ([`DEFAULT_CONN_INFLIGHT`]).
    pub fn spawn(shard_index: usize, workers: Arc<ShardWorkers>) -> std::io::Result<Arc<Self>> {
        TcpShardServer::spawn_with_window(shard_index, workers, DEFAULT_CONN_INFLIGHT)
    }

    /// [`spawn`](TcpShardServer::spawn) with an explicit per-connection
    /// bound on concurrently admitted body-running requests (`0` disables
    /// the bound). A connection at its budget stops being read until one of
    /// its requests completes, so no single client can starve the others
    /// out of the shard's submission queue.
    pub fn spawn_with_window(
        shard_index: usize,
        workers: Arc<ShardWorkers>,
        conn_inflight: usize,
    ) -> std::io::Result<Arc<Self>> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let server = Arc::new(TcpShardServer {
            addr,
            stopping: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(HashMap::new())),
            accept_thread: Mutex::new(None),
        });
        let stopping = Arc::clone(&server.stopping);
        let conns = Arc::clone(&server.conns);
        let handle = std::thread::Builder::new()
            .name(format!("tebaldi-shard-{shard_index}-rpc-accept"))
            .spawn(move || {
                let mut next_conn_id = 0u64;
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    match stream.try_clone() {
                        Ok(clone) => {
                            conns.lock().insert(conn_id, clone);
                        }
                        Err(_) => {
                            // Serving a connection that is not registered
                            // in `conns` would leave its reader thread
                            // invisible to shutdown(), which could then
                            // never unblock it. Refuse the connection
                            // instead; the client sees a disconnect and
                            // reconnects.
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                            continue;
                        }
                    }
                    // Re-check after registering: shutdown() may have set
                    // `stopping` and drained the map between the loop-top
                    // check and the insert, in which case nobody else will
                    // ever close this socket.
                    if stopping.load(Ordering::SeqCst) {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        conns.lock().remove(&conn_id);
                        return;
                    }
                    let workers = Arc::clone(&workers);
                    let conns = Arc::clone(&conns);
                    let conn_stopping = Arc::clone(&stopping);
                    let _ = std::thread::Builder::new()
                        .name(format!("tebaldi-shard-{shard_index}-rpc-conn"))
                        .spawn(move || {
                            serve_connection(stream, workers, conn_inflight, conn_stopping);
                            // Drop this connection's shutdown handle so a
                            // long-running server never leaks descriptors.
                            conns.lock().remove(&conn_id);
                        });
                }
            })
            .expect("spawn shard rpc acceptor");
        *server.accept_thread.lock() = Some(handle);
        Ok(server)
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every live connection, and joins the
    /// acceptor.
    pub fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpShardServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reader half of one server connection. Returns (dropping the connection)
/// on the first I/O or protocol error.
fn serve_connection(
    stream: TcpStream,
    workers: Arc<ShardWorkers>,
    conn_inflight: usize,
    stopping: Arc<AtomicBool>,
) {
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    // Completion-order writer: jobs finish on worker threads and forward
    // their framed results here. Every reply frame carries the shard's
    // current HLC reading, so the client's clock converges on the shard's
    // within one reply delay.
    let reply_clock = Arc::clone(workers.db().hlc());
    let (outbox, outbox_rx) = mpsc::channel::<(u64, ShardResult)>();
    let writer_handle = std::thread::spawn(move || {
        let mut stream = stream;
        while let Ok((req_id, result)) = outbox_rx.recv() {
            let payload = wire::encode_result(req_id, reply_clock.last(), &result);
            if wire::write_frame(&mut stream, &payload).is_err() {
                return;
            }
            if stream.flush().is_err() {
                return;
            }
        }
    });

    // This connection's share of the shard pipeline: body-running requests
    // currently admitted on its behalf. When the budget is exhausted the
    // reader stops pulling frames — the kernel socket buffer fills and the
    // peer blocks — so one connection's burst cannot crowd every other
    // client out of the submission queue. A well-behaved client bounds
    // itself with the same window client-side and never trips this.
    //
    // Known limitation of stop-reading backpressure: frames already behind
    // the throttled body frame in this connection's stream (including the
    // client's own phase-two decisions) are not decoded until the budget
    // opens. A budget-matched client never gets here; a client that wedges
    // its whole budget (e.g. bursting lock-blocked prepares whose decision
    // sits behind them) is dropped after `CONN_BUDGET_DEADLINE`, failing
    // its tickets cleanly — other connections are unaffected throughout.
    let admitted = Arc::new(InflightGate::new(conn_inflight, "connection".to_string()));

    // A clean close, I/O error, or oversized frame ends the loop and drops
    // the connection. Pending pipeline jobs still complete; their replies
    // are discarded when the outbox disconnects.
    while let Ok(Some(payload)) = wire::read_frame(&mut reader) {
        let (req_id, frame_hlc, request) = match wire::decode_request(&payload) {
            Ok(decoded) => decoded,
            // Garbage frame: protocol error, drop the connection (the
            // client fails its pending tickets cleanly).
            Err(_) => break,
        };
        // Merge the sender's clock before dispatching: whatever the sender
        // had seen when it built this frame happens-before everything the
        // shard does on the frame's behalf.
        workers.db().hlc().observe(frame_hlc);
        if request.runs_body() {
            // Wait for budget in short slices so server shutdown stays
            // prompt even with a throttled connection parked here.
            let deadline = Instant::now() + CONN_BUDGET_DEADLINE;
            let admitted_ok = loop {
                if stopping.load(Ordering::SeqCst) {
                    break false;
                }
                if admitted.acquire(Duration::from_millis(50)).is_ok() {
                    break true;
                }
                if Instant::now() >= deadline {
                    break false;
                }
            };
            if !admitted_ok {
                break;
            }
            let outbox = outbox.clone();
            let admitted = Arc::clone(&admitted);
            workers.submit_request(
                request,
                Box::new(move |result| {
                    admitted.release();
                    let _ = outbox.send((req_id, result));
                }),
            );
        } else {
            // Decisions/admin inline on the reader thread — never queued
            // behind blocking prepares and never counted against the
            // admission budget.
            let result = workers.handle_inline(request);
            let _ = outbox.send((req_id, result));
        }
    }
    // Actively shut the socket down: the server's shutdown list holds
    // another clone of this stream, so merely dropping ours would never
    // send FIN and the peer would block forever.
    let _ = reader.shutdown(std::net::Shutdown::Both);
    drop(outbox);
    let _ = writer_handle.join();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Pending entry: the reply sender plus whether the request counted
/// against the connection's in-flight window (body-running requests do;
/// decisions and admin ops bypass it — backpressuring a phase-two decision
/// behind queued prepares would stretch the prepared-lock window).
type PendingMap = Arc<Mutex<Option<HashMap<u64, (mpsc::Sender<ShardResult>, bool)>>>>;

/// Bound on concurrently admitted body-running requests, used on both
/// sides of a connection: the client gates its outstanding submissions per
/// shard (the transport's backpressure), the server gates each
/// connection's share of the shard pipeline. Acquire blocks (bounded by
/// the given wait) while the window is full and fails fast once the gate
/// is closed.
struct InflightGate {
    /// 0 = unbounded.
    limit: usize,
    /// Who the gate protects, for error messages ("shard 3", "connection").
    label: String,
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    inflight: usize,
    closed: bool,
}

impl InflightGate {
    fn new(limit: usize, label: String) -> Self {
        InflightGate {
            limit,
            label,
            state: Mutex::new(GateState {
                inflight: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Takes one window slot, waiting at most `timeout` for one to open.
    fn acquire(&self, timeout: Duration) -> Result<(), CcError> {
        if self.limit == 0 {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if state.closed {
                // The connection died while this submission waited for a
                // slot: the request was never written, so a retry is safe.
                return Err(CcError::unreachable(self.label.clone(), false));
            }
            if state.inflight < self.limit {
                state.inflight += 1;
                return Ok(());
            }
            if self.cv.wait_until(&mut state, deadline).timed_out() {
                // The pipeline stayed full for the whole wait: it is
                // wedged or hopelessly backlogged. Failing here keeps the
                // prepare-timeout promise for requests that never even
                // reached the wire.
                return Err(CcError::Internal(format!(
                    "{}'s in-flight window stayed full past the timeout",
                    self.label
                )));
            }
        }
    }

    fn release(&self) {
        if self.limit == 0 {
            return;
        }
        let mut state = self.state.lock();
        state.inflight = state.inflight.saturating_sub(1);
        drop(state);
        self.cv.notify_one();
    }

    /// Marks the connection dead: waiters fail immediately instead of
    /// sitting out the timeout on slots that can never free up.
    fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.cv.notify_all();
    }
}

/// How a [`TcpTransport`] re-dials a shard whose connection died: the
/// first re-dial happens immediately (a clean server restart should be
/// invisible beyond the tickets that were in flight), and each consecutive
/// *failed* dial doubles the wait before the next attempt, capped at
/// `max`. While the backoff window is closed, submissions fail fast with a
/// retryable [`CcError::Unreachable`] instead of hammering a dead address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Delay after the first failed dial; doubles per consecutive failure.
    pub base: Duration,
    /// Upper bound on the delay.
    pub max: Duration,
}

impl ReconnectPolicy {
    /// A policy with the given base and cap.
    pub const fn new(base: Duration, max: Duration) -> Self {
        ReconnectPolicy { base, max }
    }

    /// How long to wait after `failures` consecutive failed dials
    /// (`failures` >= 1): `base * 2^(failures-1)`, capped at `max`.
    fn delay_after(&self, failures: u32) -> Duration {
        let exp = failures.saturating_sub(1).min(16);
        self.base.saturating_mul(1u32 << exp).min(self.max)
    }
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base: Duration::from_millis(20),
            max: Duration::from_secs(1),
        }
    }
}

/// One connection generation to a shard. A died link is retired whole —
/// pending map, window gate, reader thread — and the next submission
/// dials a fresh one, so late frames from an old generation can never
/// resolve tickets of a new one.
struct Link {
    /// Write half, serialized by a lock (frames are small and atomic).
    writer: Mutex<TcpStream>,
    pending: PendingMap,
    gate: Arc<InflightGate>,
    reader_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Link {
    /// Tears the link down: closes the socket (unblocking the reader,
    /// which fails the pending tickets) and the window gate.
    fn retire(&self) {
        self.gate.close();
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

/// Per-shard connection state: the live link (if any) plus the re-dial
/// bookkeeping.
struct LinkState {
    addr: SocketAddr,
    live: Option<Arc<Link>>,
    /// Consecutive failed dials since the last success.
    failures: u32,
    /// Earliest instant the next dial may be attempted (`None` = now).
    next_attempt: Option<Instant>,
}

struct ShardConn {
    shard: usize,
    /// Client-side in-flight window limit for each link (0 = unbounded).
    window: usize,
    state: Mutex<LinkState>,
    /// Request ids stay unique across link generations (diagnostics only;
    /// correctness needs uniqueness per link, which this also gives).
    next_id: AtomicU64,
}

/// Counters shared between connections.
#[derive(Default)]
struct WireCounters {
    messages_sent: AtomicU64,
    bytes_on_wire: AtomicU64,
    reconnects: AtomicU64,
}

/// Dials `addr` and spawns the reader thread that resolves this link's
/// tickets. On connection loss the reader fails every pending ticket with
/// [`CcError::Unreachable`] (`maybe_delivered = true`: the request reached
/// the wire, its *reply* is what was lost) and closes the window gate.
fn dial(
    shard: usize,
    addr: SocketAddr,
    window: usize,
    counters: Arc<WireCounters>,
    clock: Arc<Hlc>,
) -> std::io::Result<Arc<Link>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let reader_stream = stream.try_clone()?;
    let pending: PendingMap = Arc::new(Mutex::new(Some(HashMap::new())));
    let gate = Arc::new(InflightGate::new(window, format!("shard {shard}")));
    let link = Arc::new(Link {
        writer: Mutex::new(stream),
        pending: Arc::clone(&pending),
        gate: Arc::clone(&gate),
        reader_thread: Mutex::new(None),
    });
    let handle = std::thread::Builder::new()
        .name(format!("tebaldi-rpc-client-shard-{shard}"))
        .spawn(move || {
            let mut stream = reader_stream;
            while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
                counters
                    .bytes_on_wire
                    .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
                let Ok((req_id, frame_hlc, result)) = wire::decode_result(&payload) else {
                    // Garbage reply: the stream is no longer trustworthy.
                    break;
                };
                // Merge the shard's clock: whatever the shard committed
                // before building this reply is now below the client's
                // clock reading.
                clock.observe(frame_hlc);
                let entry = pending.lock().as_mut().and_then(|map| map.remove(&req_id));
                if let Some((sender, windowed)) = entry {
                    if windowed {
                        gate.release();
                    }
                    let _ = sender.send(result);
                }
            }
            // Connection lost: fail every pending ticket with an explicit
            // shard-unreachable error — the request was written, so it
            // *may* have executed; only its reply is known lost — then
            // reject future submissions on this link and release the
            // window waiters so they fail fast too.
            if let Some(map) = pending.lock().take() {
                for (_, (sender, _)) in map {
                    let _ = sender.send(Err(CcError::unreachable(format!("shard {shard}"), true)));
                }
            }
            gate.close();
        })?;
    *link.reader_thread.lock() = Some(handle);
    Ok(link)
}

/// The frame client: one multiplexed connection per shard, re-dialed
/// under [`ReconnectPolicy`] when it dies.
pub struct TcpTransport {
    conns: Vec<Arc<ShardConn>>,
    counters: Arc<WireCounters>,
    /// The client-side hybrid logical clock: stamped onto every request
    /// frame and merged from every reply frame, so it tracks the highest
    /// clock of every shard this transport talks to (within one message
    /// delay). The cluster layer shares this instance for drawing snapshot
    /// timestamps.
    clock: Arc<Hlc>,
    /// How long a submission may wait for the in-flight window.
    window_wait: Duration,
    /// Backoff applied to re-dials after a lost connection.
    policy: ReconnectPolicy,
    /// The per-shard servers, when this transport owns them (the default
    /// loopback deployment). Kept so shutdown tears both halves down.
    servers: Vec<Arc<TcpShardServer>>,
    stopping: AtomicBool,
}

impl TcpTransport {
    /// Spawns a loopback server in front of every worker pool and connects
    /// to each with an unbounded in-flight window: the single-process
    /// deployment of the wire protocol.
    pub fn over_loopback(shards: &[Arc<ShardWorkers>]) -> Result<Self, String> {
        TcpTransport::over_loopback_with_window(shards, 0, DEFAULT_WINDOW_WAIT)
    }

    /// [`over_loopback`](TcpTransport::over_loopback) with a bounded
    /// in-flight window: at most `window` body-running requests outstanding
    /// per shard connection (`0` = unbounded), waiting at most
    /// `window_wait` for a slot before failing the submission. The same
    /// bound is installed server-side as each connection's admission
    /// budget.
    pub fn over_loopback_with_window(
        shards: &[Arc<ShardWorkers>],
        window: usize,
        window_wait: Duration,
    ) -> Result<Self, String> {
        let conn_inflight = if window == 0 {
            DEFAULT_CONN_INFLIGHT
        } else {
            window
        };
        let mut servers = Vec::with_capacity(shards.len());
        for (index, workers) in shards.iter().enumerate() {
            servers.push(
                TcpShardServer::spawn_with_window(index, Arc::clone(workers), conn_inflight)
                    .map_err(|err| format!("shard {index} rpc server: {err}"))?,
            );
        }
        let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.addr()).collect();
        let mut transport = TcpTransport::connect_with_window(&addrs, window, window_wait)?;
        transport.servers = servers;
        Ok(transport)
    }

    /// Connects to already-running shard servers (which may live in other
    /// processes; this client does not own them), with an unbounded
    /// in-flight window.
    pub fn connect(addrs: &[SocketAddr]) -> Result<Self, String> {
        TcpTransport::connect_with_window(addrs, 0, DEFAULT_WINDOW_WAIT)
    }

    /// [`connect`](TcpTransport::connect) with a bounded in-flight window
    /// per shard connection (`0` = unbounded; see
    /// [`over_loopback_with_window`](TcpTransport::over_loopback_with_window)).
    pub fn connect_with_window(
        addrs: &[SocketAddr],
        window: usize,
        window_wait: Duration,
    ) -> Result<Self, String> {
        let counters = Arc::new(WireCounters::default());
        let clock = Arc::new(Hlc::new());
        let mut conns = Vec::with_capacity(addrs.len());
        for (shard, addr) in addrs.iter().enumerate() {
            let link = dial(
                shard,
                *addr,
                window,
                Arc::clone(&counters),
                Arc::clone(&clock),
            )
            .map_err(|err| format!("connect to shard {shard} at {addr}: {err}"))?;
            conns.push(Arc::new(ShardConn {
                shard,
                window,
                state: Mutex::new(LinkState {
                    addr: *addr,
                    live: Some(link),
                    failures: 0,
                    next_attempt: None,
                }),
                next_id: AtomicU64::new(1),
            }));
        }
        Ok(TcpTransport {
            conns,
            counters,
            clock,
            window_wait,
            policy: ReconnectPolicy::default(),
            servers: Vec::new(),
            stopping: AtomicBool::new(false),
        })
    }

    /// Replaces the re-dial backoff policy (builder-style, before the
    /// transport is shared).
    pub fn set_reconnect_policy(&mut self, policy: ReconnectPolicy) {
        self.policy = policy;
    }

    /// The transport's hybrid logical clock — stamped onto request frames,
    /// merged from reply frames. The cluster layer shares this instance so
    /// snapshot timestamps it draws track every shard it has heard from.
    pub fn clock(&self) -> &Arc<Hlc> {
        &self.clock
    }

    /// Re-points `shard` at a new address — a shard server restarted on a
    /// different port — retiring the current link (its pending tickets
    /// fail as unreachable) and clearing the backoff so the next
    /// submission dials the new address immediately.
    pub fn set_shard_addr(&self, shard: usize, addr: SocketAddr) {
        let Some(conn) = self.conns.get(shard) else {
            return;
        };
        let retired = {
            let mut state = conn.state.lock();
            state.addr = addr;
            state.failures = 0;
            state.next_attempt = None;
            state.live.take()
        };
        if let Some(link) = retired {
            link.retire();
        }
    }

    /// The addresses of the servers this transport owns (empty when it
    /// only connected to external servers).
    pub fn server_addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.addr()).collect()
    }

    /// Returns `shard`'s live link, re-dialing within the backoff policy
    /// when the previous connection died. Fails fast with a retryable
    /// [`CcError::Unreachable`] while the backoff window is closed or the
    /// dial fails.
    fn live_link(&self, conn: &ShardConn) -> Result<Arc<Link>, CcError> {
        let mut state = conn.state.lock();
        if let Some(link) = &state.live {
            // A link whose reader died has its pending map taken; detect
            // that here so this submission re-dials instead of queueing on
            // a corpse.
            if link.pending.lock().is_some() {
                return Ok(Arc::clone(link));
            }
            let dead = Arc::clone(link);
            state.live = None;
            dead.retire();
        }
        if self.stopping.load(Ordering::SeqCst) {
            return Err(CcError::unreachable(
                format!("shard {} (transport shut down)", conn.shard),
                false,
            ));
        }
        let now = Instant::now();
        if let Some(at) = state.next_attempt {
            if now < at {
                return Err(CcError::unreachable(
                    format!("shard {} (reconnect backoff)", conn.shard),
                    false,
                ));
            }
        }
        match dial(
            conn.shard,
            state.addr,
            conn.window,
            Arc::clone(&self.counters),
            Arc::clone(&self.clock),
        ) {
            Ok(link) => {
                state.live = Some(Arc::clone(&link));
                state.failures = 0;
                state.next_attempt = None;
                self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                Ok(link)
            }
            Err(err) => {
                state.failures += 1;
                state.next_attempt = Some(now + self.policy.delay_after(state.failures));
                Err(CcError::unreachable(
                    format!("shard {} ({err})", conn.shard),
                    false,
                ))
            }
        }
    }

    /// Retires `link` after a send failure: closes it (failing its other
    /// pending tickets) and clears it from the shard's state so the next
    /// submission re-dials.
    fn retire_link(&self, conn: &ShardConn, link: &Arc<Link>) {
        {
            let mut state = conn.state.lock();
            if state
                .live
                .as_ref()
                .is_some_and(|live| Arc::ptr_eq(live, link))
            {
                state.live = None;
            }
        }
        link.retire();
    }
}

impl ShardTransport for TcpTransport {
    fn shard_count(&self) -> usize {
        self.conns.len()
    }

    fn supports_repoint(&self) -> bool {
        true
    }

    fn repoint(&self, shard: usize, addr: SocketAddr) -> bool {
        if shard >= self.conns.len() {
            return false;
        }
        self.set_shard_addr(shard, addr);
        true
    }

    fn submit(&self, shard: usize, request: ShardRequest) -> Ticket<ShardResult> {
        let Some(conn) = self.conns.get(shard) else {
            return Ticket::ready(Err(CcError::Internal(format!(
                "request targets shard {shard}, but the transport reaches {}",
                self.conns.len()
            ))));
        };
        // A live link, re-dialed if the previous one died (bounded by the
        // backoff policy — within the window this fails fast).
        let link = match self.live_link(conn) {
            Ok(link) => link,
            Err(err) => return Ticket::ready(Err(err)),
        };
        // Backpressure: body-running requests take a window slot (released
        // when their reply lands). Decisions and admin ops bypass the
        // window — stalling a phase-two decision behind queued prepares
        // would stretch every prepared participant's lock window.
        let windowed = request.runs_body();
        if windowed {
            if let Err(err) = link.gate.acquire(self.window_wait) {
                return Ticket::ready(Err(err));
            }
        }
        let req_id = conn.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, ticket) = Ticket::pending();
        {
            let mut pending = link.pending.lock();
            match pending.as_mut() {
                Some(map) => {
                    map.insert(req_id, (tx, windowed));
                }
                None => {
                    if windowed {
                        link.gate.release();
                    }
                    // The link died between lookup and registration: the
                    // request was never written, retry is safe.
                    return Ticket::ready(Err(CcError::unreachable(
                        format!("shard {shard}"),
                        false,
                    )));
                }
            }
        }
        let payload = wire::encode_request(req_id, self.clock.last(), &request);
        let write_result = {
            let mut writer = link.writer.lock();
            wire::write_frame(&mut *writer, &payload).and_then(|n| writer.flush().map(|()| n))
        };
        match write_result {
            Ok(frame_len) => {
                self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_on_wire
                    .fetch_add(frame_len as u64, Ordering::Relaxed);
                ticket
            }
            Err(err) => {
                if let Some(map) = link.pending.lock().as_mut() {
                    map.remove(&req_id);
                }
                if windowed {
                    link.gate.release();
                }
                self.retire_link(conn, &link);
                // A failed or partial write never decodes server-side (the
                // length-prefixed frame is incomplete, which drops the
                // connection), so the request provably did not execute.
                Ticket::ready(Err(CcError::unreachable(
                    format!("shard {shard} ({err})"),
                    false,
                )))
            }
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            messages_sent: self.counters.messages_sent.load(Ordering::Relaxed),
            bytes_on_wire: self.counters.bytes_on_wire.load(Ordering::Relaxed),
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        for conn in &self.conns {
            let link = conn.state.lock().live.take();
            if let Some(link) = link {
                // Close the gate first so no submitter sits out its full
                // window wait against a transport that is going away.
                link.retire();
                if let Some(handle) = link.reader_thread.lock().take() {
                    let _ = handle.join();
                }
            }
        }
        for server in &self.servers {
            server.shutdown();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        ShardTransport::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_core::{Database, DbConfig, ProcId, ProcRegistry, ProcedureCall};
    use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);
    const BUMP: ProcId = ProcId(1);

    fn pool() -> Arc<ShardWorkers> {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "bump",
            vec![(TABLE, AccessMode::Write)],
        ));
        let db = Arc::new(
            Database::builder(DbConfig::for_tests())
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .build()
                .unwrap(),
        );
        db.load(Key::simple(TABLE, 1), Value::Int(0));
        let mut reg = ProcRegistry::new();
        reg.register_fn(BUMP, |txn, _args| {
            txn.increment(Key::simple(TABLE, 1), 0, 1).map(Value::Int)
        });
        ShardWorkers::spawn(0, db, 2, Arc::new(reg))
    }

    fn execute() -> ShardRequest {
        ShardRequest::Execute {
            proc: BUMP,
            call: ProcedureCall::new(TY),
            args: Vec::new(),
            max_attempts: 10,
            trace: tebaldi_obs::TraceCtx::NONE,
        }
    }

    #[test]
    fn loopback_roundtrip_counts_wire_traffic() {
        let workers = pool();
        let transport = TcpTransport::over_loopback(&[Arc::clone(&workers)]).unwrap();
        let (value, _) = transport
            .call(0, execute())
            .unwrap()
            .into_executed()
            .unwrap();
        assert_eq!(value, Value::Int(1));
        let ticket = transport.submit(0, execute());
        ticket.wait().unwrap().unwrap();
        let stats = ShardTransport::stats(&transport);
        assert_eq!(stats.messages_sent, 2);
        assert!(stats.bytes_on_wire > 0);
        ShardTransport::shutdown(&transport);
        workers.shutdown();
    }

    #[test]
    fn garbage_frame_drops_connection_but_server_survives() {
        let workers = pool();
        let server = TcpShardServer::spawn(0, Arc::clone(&workers)).unwrap();

        // A hostile client: raw garbage bytes.
        {
            let mut raw = TcpStream::connect(server.addr()).unwrap();
            // A plausible length prefix followed by garbage payload.
            let mut frame = (8u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04]);
            raw.write_all(&frame).unwrap();
            raw.flush().unwrap();
            // The server must close the connection (clean EOF or reset),
            // not panic or answer.
            assert!(!matches!(wire::read_frame(&mut raw), Ok(Some(_))));
        }

        // An oversized frame announcement is also rejected.
        {
            let mut raw = TcpStream::connect(server.addr()).unwrap();
            raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
            raw.flush().unwrap();
            assert!(!matches!(wire::read_frame(&mut raw), Ok(Some(_))));
        }

        // A well-formed client still gets served afterwards.
        let transport = TcpTransport::connect(&[server.addr()]).unwrap();
        let (value, _) = transport
            .call(0, execute())
            .unwrap()
            .into_executed()
            .unwrap();
        assert_eq!(value, Value::Int(1));
        ShardTransport::shutdown(&transport);
        server.shutdown();
        workers.shutdown();
    }

    #[test]
    fn lost_connection_fails_pending_tickets_cleanly() {
        let workers = pool();
        let server = TcpShardServer::spawn(0, Arc::clone(&workers)).unwrap();
        let transport = TcpTransport::connect(&[server.addr()]).unwrap();
        // Kill the server, then submit: either the send fails or the
        // pending ticket resolves with a shard-unreachable error — never a
        // hang, and never a generic internal error a retry loop cannot
        // classify.
        server.shutdown();
        let ticket = transport.submit(0, execute());
        let outcome = ticket.wait_timeout(std::time::Duration::from_secs(5));
        match outcome {
            Ok(Err(err)) => assert!(err.is_unreachable(), "classifiable error, got {err}"),
            Ok(Ok(_)) => panic!("request cannot succeed on a dead server"),
            Err(err) => assert!(err.is_unreachable(), "classifiable error, got {err}"),
        }
        ShardTransport::shutdown(&transport);
        workers.shutdown();
    }

    #[test]
    fn reconnects_to_restarted_server_without_rebuilding() {
        let workers = pool();
        let server = TcpShardServer::spawn(0, Arc::clone(&workers)).unwrap();
        let mut transport = TcpTransport::connect(&[server.addr()]).unwrap();
        transport.set_reconnect_policy(ReconnectPolicy::new(
            Duration::from_millis(5),
            Duration::from_millis(50),
        ));
        let (value, _) = transport
            .call(0, execute())
            .unwrap()
            .into_executed()
            .unwrap();
        assert_eq!(value, Value::Int(1));

        // Kill the server. Requests fail as unreachable (never hang)...
        server.shutdown();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match transport.submit(0, execute()).wait() {
                Ok(Err(err)) if err.is_unreachable() => break,
                Err(err) if err.is_unreachable() => break,
                Ok(Err(err)) | Err(err) => panic!("expected unreachable, got {err}"),
                Ok(Ok(_)) => assert!(
                    Instant::now() < deadline,
                    "server gone, requests must start failing"
                ),
            }
        }

        // ...until a replacement comes up (a fresh port: loopback binds to
        // port 0) and the transport is re-pointed at it. Traffic resumes
        // on the same transport — no rebuild.
        let restarted = TcpShardServer::spawn(0, Arc::clone(&workers)).unwrap();
        transport.set_shard_addr(0, restarted.addr());
        let deadline = Instant::now() + Duration::from_secs(10);
        let value = loop {
            match transport.call(0, execute()) {
                Ok(response) => break response.into_executed().unwrap().0,
                Err(err) => {
                    assert!(
                        err.is_unreachable(),
                        "only unreachable during re-dial: {err}"
                    );
                    assert!(Instant::now() < deadline, "reconnect must succeed");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        assert_eq!(value, Value::Int(2));
        assert!(
            ShardTransport::stats(&transport).reconnects >= 1,
            "the re-dial must be counted"
        );
        ShardTransport::shutdown(&transport);
        restarted.shutdown();
        workers.shutdown();
    }

    #[test]
    fn backoff_fails_fast_while_the_window_is_closed() {
        let workers = pool();
        let server = TcpShardServer::spawn(0, Arc::clone(&workers)).unwrap();
        let mut transport = TcpTransport::connect(&[server.addr()]).unwrap();
        transport.set_reconnect_policy(ReconnectPolicy::new(
            Duration::from_secs(60),
            Duration::from_secs(60),
        ));
        server.shutdown();
        // Exhaust the live link, then force one failed dial to open the
        // (deliberately huge) backoff window.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut failures = 0;
        while failures < 2 {
            match transport.submit(0, execute()).wait() {
                Ok(Err(_)) | Err(_) => failures += 1,
                Ok(Ok(_)) => {
                    assert!(Instant::now() < deadline, "dead server must fail requests");
                }
            }
        }
        // Now every submission fails fast without touching the network.
        let started = Instant::now();
        for _ in 0..100 {
            let err = match transport.submit(0, execute()).wait() {
                Ok(Err(err)) | Err(err) => err,
                Ok(Ok(_)) => panic!("no server to answer"),
            };
            assert!(err.is_unreachable());
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "backoff submissions must fail fast, took {:?}",
            started.elapsed()
        );
        ShardTransport::shutdown(&transport);
        workers.shutdown();
    }
}
