//! Table registry.
//!
//! Tables matter to the concurrency-control layer in two ways:
//!
//! * Runtime pipelining's static analysis orders *tables*, not keys
//!   (§4.4.2): its pipeline steps are computed from the per-transaction-type
//!   table access sequences.
//! * The engine's garbage collector and the benchmark loaders iterate over
//!   tables.
//!
//! A [`Schema`] is a small immutable registry mapping table names to
//! [`TableId`]s plus per-table metadata.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

// Lets `HashMap<TableId, _>` serialize as a JSON object, matching serde's
// integer-keyed-map stringification.
impl serde::JsonKey for TableId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }

    fn from_key(s: &str) -> Result<Self, serde::DeError> {
        s.parse()
            .map(TableId)
            .map_err(|_| serde::DeError::msg(format!("bad TableId key {s:?}")))
    }
}

/// Static description of a table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableDef {
    /// Table identifier.
    pub id: TableId,
    /// Human-readable name (e.g. `"district"`).
    pub name: String,
    /// Whether rows of this table are frequently updated. Used only for
    /// reporting; the CC layer discovers contention dynamically.
    pub hot: bool,
}

/// An immutable set of table definitions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<TableDef>,
    by_name: HashMap<String, TableId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds a table and returns its id. Panics if the name already exists —
    /// schemas are built once at workload setup time.
    pub fn add_table(&mut self, name: &str) -> TableId {
        self.add_table_with(name, false)
    }

    /// Adds a table, marking whether it is expected to be hot.
    pub fn add_table_with(&mut self, name: &str, hot: bool) -> TableId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate table name {name:?}"
        );
        let id = TableId(self.tables.len() as u32);
        self.tables.push(TableDef {
            id,
            name: name.to_string(),
            hot,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Returns the definition of a table.
    pub fn def(&self, id: TableId) -> Option<&TableDef> {
        self.tables.get(id.0 as usize)
    }

    /// Returns the name of a table, or `"<unknown>"`.
    pub fn name(&self, id: TableId) -> &str {
        self.def(id).map(|d| d.name.as_str()).unwrap_or("<unknown>")
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no table has been registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over all table definitions.
    pub fn iter(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let w = s.add_table("warehouse");
        let d = s.add_table_with("district", true);
        assert_eq!(s.table("warehouse"), Some(w));
        assert_eq!(s.table("district"), Some(d));
        assert_eq!(s.table("nope"), None);
        assert_eq!(s.name(d), "district");
        assert!(s.def(d).unwrap().hot);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn ids_are_dense() {
        let mut s = Schema::new();
        for i in 0..10 {
            let id = s.add_table(&format!("t{i}"));
            assert_eq!(id.0, i);
        }
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let mut s = Schema::new();
        s.add_table("a");
        s.add_table("a");
    }
}
