//! Version chains.
//!
//! Tebaldi's storage module "keeps all the committed and uncommitted writes
//! on each object" (§4.3) so that both single-version and multiversion
//! concurrency controls can be composed. A [`VersionChain`] is the ordered
//! history of one key; the concurrency-control mechanisms decide *which*
//! version a read returns, storage only maintains the chain.

use crate::types::{Timestamp, TxnId};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Unique identifier of a version (diagnostics only).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct VersionId(pub u64);

/// Lifecycle state of a version.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VersionState {
    /// Installed by an in-flight transaction.
    Uncommitted,
    /// The writing transaction committed.
    Committed,
}

/// One version of one key.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Version {
    /// Diagnostics identifier, unique within the store.
    pub id: VersionId,
    /// Transaction that installed the version.
    pub writer: TxnId,
    /// The value; [`Value::Null`] models a delete.
    pub value: Value,
    /// Current state.
    pub state: VersionState,
    /// Commit timestamp, set when the writer commits.
    pub commit_ts: Option<Timestamp>,
    /// Ordering timestamp used by timestamp-ordering CCs, assigned at write
    /// time (before commit). `None` for CCs that order at commit time.
    pub order_ts: Option<Timestamp>,
    /// Cluster-wide hybrid-logical-clock stamp assigned at commit. `0`
    /// means "unstamped" (bootstrap loads, pre-HLC recovered state, CC
    /// unit tests) and is visible to every snapshot. Unlike `commit_ts` —
    /// which is shard-local — equal stamps on different shards name the
    /// same global commit, which is what makes cross-shard snapshot reads
    /// consistent (see `tebaldi_core::hlc`).
    pub hlc: u64,
}

impl Version {
    /// True if the writer has committed.
    pub fn is_committed(&self) -> bool {
        self.state == VersionState::Committed
    }

    /// The timestamp used to order this version in the chain: the explicit
    /// ordering timestamp when present, otherwise the commit timestamp,
    /// otherwise "not yet ordered".
    pub fn sort_ts(&self) -> Option<Timestamp> {
        self.order_ts.or(self.commit_ts)
    }
}

/// Read-only view of a version chain, newest version first.
///
/// Concurrency-control mechanisms inspect chains through this trait so the
/// same code runs against both representations: the owned [`VersionChain`]
/// (tests, recovery, serialization) and the arena-backed lock-free chains
/// of the store's hot path. Every provided method is defined in terms of
/// one newest-first traversal, which is the natural direction of the
/// arena's linked chains.
///
/// Implementations must maintain the **position-order invariant**: walking
/// newest-first, committed versions appear in descending commit-timestamp
/// order and `order_ts`-carrying versions in descending `order_ts` order
/// (installs splice at the ordering position; commits keep the install
/// position, and the mechanisms' dependency waits make per-key commit
/// order follow it). The timestamp queries below exploit the invariant to
/// stop a walk at the first decisive version instead of scanning the whole
/// chain — on a hot key between GC cycles that is the difference between
/// O(1) and O(thousands) per access.
pub trait ChainRead {
    /// Number of versions (committed and uncommitted).
    fn len(&self) -> usize;

    /// Visits versions newest-first; the visitor returns `false` to stop.
    fn for_each_newest_first<'a>(&'a self, f: &mut dyn FnMut(&'a Version) -> bool);

    /// True when the chain holds no version at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first version (newest-first) matching `pred`.
    fn find_newest_first<'a>(
        &'a self,
        pred: &mut dyn FnMut(&Version) -> bool,
    ) -> Option<&'a Version> {
        let mut found = None;
        self.for_each_newest_first(&mut |v| {
            if pred(v) {
                found = Some(v);
                false
            } else {
                true
            }
        });
        found
    }

    /// The most recently committed version (by chain position).
    fn latest_committed(&self) -> Option<&Version> {
        self.find_newest_first(&mut |v| v.is_committed())
    }

    /// The latest committed version whose commit timestamp is strictly
    /// smaller than `ts` (snapshot-isolation visibility rule).
    fn committed_before(&self, ts: Timestamp) -> Option<&Version> {
        // Committed versions run newest-first in descending commit-ts
        // order, so the first one below `ts` is the visible one (and, for
        // equal timestamps, the newest by position — matching the Vec
        // representation's last-maximal `max_by_key`).
        let mut best: Option<&Version> = None;
        self.for_each_newest_first(&mut |v| {
            if v.is_committed() && matches!(v.commit_ts, Some(c) if c < ts) {
                best = Some(v);
                return false;
            }
            true
        });
        best
    }

    /// The latest committed version whose commit timestamp is `<= ts`
    /// (visibility rule for snapshot timestamps that *are* commit
    /// timestamps of applied commits).
    fn committed_at_or_before(&self, ts: Timestamp) -> Option<&Version> {
        // Same early exit as `committed_before`: descending commit-ts
        // order makes the first match the visible one.
        let mut best: Option<&Version> = None;
        self.for_each_newest_first(&mut |v| {
            if v.is_committed() && matches!(v.commit_ts, Some(c) if c <= ts) {
                best = Some(v);
                return false;
            }
            true
        });
        best
    }

    /// The latest version (committed or not) whose ordering timestamp is
    /// `<= ts` (multiversion timestamp-ordering visibility rule).
    fn visible_at_order_ts(&self, ts: Timestamp) -> Option<&Version> {
        // Sort timestamps run descending newest-first (the position-order
        // invariant), so the first version at or below `ts` wins.
        let mut best: Option<&Version> = None;
        self.for_each_newest_first(&mut |v| {
            if matches!(v.sort_ts(), Some(o) if o <= ts) {
                best = Some(v);
                return false;
            }
            true
        });
        best
    }

    /// The uncommitted version written by `writer`, if any (chains hold at
    /// most one uncommitted version per writer).
    fn uncommitted_by(&self, writer: TxnId) -> Option<&Version> {
        self.find_newest_first(&mut |v| v.writer == writer && !v.is_committed())
    }

    /// The version written by `writer`, committed or not (newest first).
    fn by_writer(&self, writer: TxnId) -> Option<&Version> {
        self.find_newest_first(&mut |v| v.writer == writer)
    }

    /// True if some transaction other than `txn` has an uncommitted
    /// version on this key.
    fn has_other_uncommitted(&self, txn: TxnId) -> bool {
        self.find_newest_first(&mut |v| !v.is_committed() && v.writer != txn)
            .is_some()
    }

    /// True if a version committed with a timestamp `> ts` exists
    /// (first-committer-wins check of snapshot isolation).
    fn committed_after(&self, ts: Timestamp) -> bool {
        // The first committed version seen carries the chain's largest
        // commit timestamp (position-order invariant), so it alone decides.
        let mut found = false;
        self.for_each_newest_first(&mut |v| {
            if v.is_committed() {
                found = matches!(v.commit_ts, Some(c) if c > ts);
                return false;
            }
            true
        });
        found
    }

    /// True if a version committed with a timestamp `>= ts` exists.
    fn committed_at_or_after(&self, ts: Timestamp) -> bool {
        let mut found = false;
        self.for_each_newest_first(&mut |v| {
            if v.is_committed() {
                found = matches!(v.commit_ts, Some(c) if c >= ts);
                return false;
            }
            true
        });
        found
    }

    /// The most recent version regardless of state, in chain order.
    fn last(&self) -> Option<&Version> {
        self.find_newest_first(&mut |_| true)
    }
}

impl ChainRead for VersionChain {
    fn len(&self) -> usize {
        self.versions.len()
    }

    fn for_each_newest_first<'a>(&'a self, f: &mut dyn FnMut(&'a Version) -> bool) {
        for v in self.versions.iter().rev() {
            if !f(v) {
                return;
            }
        }
    }
}

/// The ordered version history of a single key.
///
/// Invariants maintained by this type:
/// * committed versions appear in commit-timestamp order,
/// * versions carrying an `order_ts` (TSO) are kept sorted by that
///   timestamp,
/// * at most one uncommitted version per writer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain::default()
    }

    /// Number of versions (committed and uncommitted).
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when the chain holds no version at all.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// All versions, oldest first.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Installs a new uncommitted version. If the writer already has an
    /// uncommitted version on this key it is overwritten in place (last
    /// write of a transaction wins), otherwise the version is inserted at
    /// its ordering position.
    pub fn install(&mut self, version: Version) {
        if let Some(existing) = self
            .versions
            .iter_mut()
            .find(|v| v.writer == version.writer && !v.is_committed())
        {
            existing.value = version.value;
            existing.order_ts = version.order_ts.or(existing.order_ts);
            return;
        }
        match version.order_ts {
            Some(ts) => {
                // Keep order_ts-carrying versions sorted among themselves;
                // versions without an order_ts stay where installation put
                // them (they are ordered by commit later).
                let pos = self
                    .versions
                    .iter()
                    .position(|v| matches!(v.order_ts, Some(other) if other > ts))
                    .unwrap_or(self.versions.len());
                self.versions.insert(pos, version);
            }
            None => self.versions.push(version),
        }
    }

    /// Marks the version written by `writer` as committed with `commit_ts`.
    /// Returns `true` if a version was found.
    ///
    /// The version keeps its chain position: position order is the order in
    /// which the concurrency-control tree serialized the installs, and the
    /// mechanisms' dependency waits make per-key commit order follow it.
    /// Moving the version (e.g. to the end) would jump over uncommitted
    /// versions installed after it, hiding a later write from
    /// position-based readers — the lost-update bug this comment guards
    /// against.
    pub fn commit(&mut self, writer: TxnId, commit_ts: Timestamp) -> bool {
        self.commit_stamped(writer, commit_ts, 0)
    }

    /// [`commit`](VersionChain::commit) carrying the cluster-wide HLC
    /// stamp of the commit (see [`Version::hlc`]).
    pub fn commit_stamped(&mut self, writer: TxnId, commit_ts: Timestamp, hlc: u64) -> bool {
        let Some(v) = self
            .versions
            .iter_mut()
            .find(|v| v.writer == writer && !v.is_committed())
        else {
            return false;
        };
        v.state = VersionState::Committed;
        v.commit_ts = Some(commit_ts);
        v.hlc = hlc;
        true
    }

    /// Removes the uncommitted version installed by `writer`, if any.
    /// Returns `true` if a version was removed.
    pub fn abort(&mut self, writer: TxnId) -> bool {
        let before = self.versions.len();
        self.versions
            .retain(|v| v.writer != writer || v.is_committed());
        before != self.versions.len()
    }

    /// The most recently committed version.
    pub fn latest_committed(&self) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.is_committed())
    }

    /// The latest committed version whose commit timestamp is strictly
    /// smaller than `ts` (snapshot-isolation visibility rule).
    pub fn committed_before(&self, ts: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .filter(|v| v.is_committed())
            .filter(|v| matches!(v.commit_ts, Some(c) if c < ts))
            .max_by_key(|v| v.commit_ts)
    }

    /// The latest committed version whose commit timestamp is `<= ts`.
    /// This is the visibility rule for snapshot timestamps obtained from
    /// [`TsOracle::snapshot_ts`](../../tebaldi_cc/oracle/struct.TsOracle.html):
    /// such a timestamp *is* the commit timestamp of the newest fully
    /// applied commit, which must be inside the snapshot.
    pub fn committed_at_or_before(&self, ts: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .filter(|v| v.is_committed())
            .filter(|v| matches!(v.commit_ts, Some(c) if c <= ts))
            .max_by_key(|v| v.commit_ts)
    }

    /// The latest version (committed or not) whose ordering timestamp is
    /// `<= ts` (multiversion timestamp-ordering visibility rule). Versions
    /// without an ordering timestamp fall back to their commit timestamp.
    pub fn visible_at_order_ts(&self, ts: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .filter(|v| matches!(v.sort_ts(), Some(o) if o <= ts))
            .max_by_key(|v| v.sort_ts())
    }

    /// The uncommitted version written by `writer`, if any.
    pub fn uncommitted_by(&self, writer: TxnId) -> Option<&Version> {
        self.versions
            .iter()
            .find(|v| v.writer == writer && !v.is_committed())
    }

    /// The version written by `writer`, committed or not.
    pub fn by_writer(&self, writer: TxnId) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.writer == writer)
    }

    /// All uncommitted versions.
    pub fn uncommitted(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter().filter(|v| !v.is_committed())
    }

    /// True if some transaction other than `txn` has an uncommitted version
    /// on this key.
    pub fn has_other_uncommitted(&self, txn: TxnId) -> bool {
        self.versions
            .iter()
            .any(|v| !v.is_committed() && v.writer != txn)
    }

    /// True if a version committed with a timestamp `> ts` exists
    /// (first-committer-wins check of snapshot isolation).
    pub fn committed_after(&self, ts: Timestamp) -> bool {
        self.versions
            .iter()
            .any(|v| v.is_committed() && matches!(v.commit_ts, Some(c) if c > ts))
    }

    /// True if a version committed with a timestamp `>= ts` exists. Snapshot
    /// readers whose start timestamp may coincide with an existing commit
    /// timestamp (snapshot timestamps are not freshly issued) must treat a
    /// commit *at* their start timestamp as outside their snapshot, so the
    /// first-committer-wins check has to flag it as a conflict too.
    pub fn committed_at_or_after(&self, ts: Timestamp) -> bool {
        self.versions
            .iter()
            .any(|v| v.is_committed() && matches!(v.commit_ts, Some(c) if c >= ts))
    }

    /// The most recent version regardless of state, in chain order.
    pub fn last(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Drops committed versions strictly older than `keep_after`, always
    /// keeping at least the latest committed version. Returns the number of
    /// versions removed. This is the per-key primitive used by the GC
    /// service (§4.5.3).
    pub fn prune(&mut self, keep_after: Timestamp) -> usize {
        let latest_commit_ts = self.latest_committed().and_then(|v| v.commit_ts);
        let before = self.versions.len();
        self.versions.retain(|v| {
            if !v.is_committed() {
                return true;
            }
            let ts = v.commit_ts.unwrap_or(Timestamp::ZERO);
            ts >= keep_after || Some(ts) == latest_commit_ts
        });
        before - self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ver(id: u64, writer: u64, val: i64) -> Version {
        Version {
            id: VersionId(id),
            writer: TxnId(writer),
            value: Value::Int(val),
            state: VersionState::Uncommitted,
            commit_ts: None,
            order_ts: None,
            hlc: 0,
        }
    }

    /// The trait-object query paths stop walks early by relying on the
    /// position-order invariant; the inherent `VersionChain` methods scan
    /// the whole Vec. On a chain built through the normal install/commit
    /// flow both must agree, for every probe timestamp.
    #[test]
    fn dyn_chain_queries_match_inherent_scans() {
        // Commit-ordered chain: committed history at ts 10, 20, 30 with
        // two uncommitted writes on top (the shape every commit-time CC
        // produces).
        let mut chain = VersionChain::new();
        for (i, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
            chain.install(ver(i, i, i as i64));
            chain.commit(TxnId(i), Timestamp(ts));
        }
        chain.install(ver(4, 4, 4));
        chain.install(ver(5, 5, 5));

        let dy: &dyn ChainRead = &chain;
        for probe in [0u64, 10, 15, 20, 25, 30, 40] {
            let ts = Timestamp(probe);
            assert_eq!(
                dy.committed_before(ts).map(|v| v.id),
                chain.committed_before(ts).map(|v| v.id),
                "committed_before({probe})"
            );
            assert_eq!(
                dy.committed_at_or_before(ts).map(|v| v.id),
                chain.committed_at_or_before(ts).map(|v| v.id),
                "committed_at_or_before({probe})"
            );
            assert_eq!(
                dy.committed_after(ts),
                chain.committed_after(ts),
                "committed_after({probe})"
            );
            assert_eq!(
                dy.committed_at_or_after(ts),
                chain.committed_at_or_after(ts),
                "committed_at_or_after({probe})"
            );
        }
        assert_eq!(
            dy.uncommitted_by(TxnId(5)).map(|v| v.id),
            Some(VersionId(5))
        );
        assert!(dy.uncommitted_by(TxnId(9)).is_none());
        assert!(dy.has_other_uncommitted(TxnId(5)));

        // Timestamp-ordered chain: every version carries an order_ts (the
        // shape TSO produces — committed versions keep their order_ts).
        let mut tso = VersionChain::new();
        for (i, ots) in [(10u64, 10u64), (11, 20), (12, 30)] {
            let mut v = ver(i, i, i as i64);
            v.order_ts = Some(Timestamp(ots));
            tso.install(v);
        }
        tso.commit(TxnId(10), Timestamp(10));
        tso.commit(TxnId(11), Timestamp(20));
        let dy_tso: &dyn ChainRead = &tso;
        for probe in [0u64, 10, 15, 20, 25, 30, 40] {
            let ts = Timestamp(probe);
            assert_eq!(
                dy_tso.visible_at_order_ts(ts).map(|v| v.id),
                tso.visible_at_order_ts(ts).map(|v| v.id),
                "visible_at_order_ts({probe})"
            );
        }
    }

    #[test]
    fn install_commit_read() {
        let mut c = VersionChain::new();
        c.install(ver(1, 1, 10));
        assert!(c.latest_committed().is_none());
        assert!(c.commit(TxnId(1), Timestamp(5)));
        assert_eq!(c.latest_committed().unwrap().value.as_int(), Some(10));
        assert_eq!(
            c.committed_before(Timestamp(6)).unwrap().value.as_int(),
            Some(10)
        );
        assert!(c.committed_before(Timestamp(5)).is_none());
    }

    #[test]
    fn commit_keeps_position_before_later_uncommitted_writes() {
        // T1 installs, then T2 installs (a later write exposed by a
        // pipelining CC). T1 committing must NOT move its version past T2's
        // uncommitted one: the chain's last version must stay T2's so
        // position-based readers keep seeing the newer write.
        let mut c = VersionChain::new();
        c.install(ver(1, 1, 10));
        c.install(ver(2, 2, 20));
        assert!(c.commit(TxnId(1), Timestamp(5)));
        assert_eq!(c.last().unwrap().writer, TxnId(2));
        assert_eq!(c.latest_committed().unwrap().writer, TxnId(1));
        // T2 then commits with a larger timestamp; both position and commit
        // order agree.
        assert!(c.commit(TxnId(2), Timestamp(7)));
        assert_eq!(c.latest_committed().unwrap().writer, TxnId(2));
        assert_eq!(
            c.committed_at_or_before(Timestamp(6)).unwrap().writer,
            TxnId(1)
        );
    }

    #[test]
    fn overwrite_same_writer() {
        let mut c = VersionChain::new();
        c.install(ver(1, 1, 10));
        c.install(ver(2, 1, 20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.uncommitted_by(TxnId(1)).unwrap().value.as_int(), Some(20));
    }

    #[test]
    fn abort_removes_uncommitted() {
        let mut c = VersionChain::new();
        c.install(ver(1, 1, 10));
        c.install(ver(2, 2, 20));
        assert!(c.abort(TxnId(1)));
        assert!(!c.abort(TxnId(1)));
        assert_eq!(c.len(), 1);
        assert!(c.has_other_uncommitted(TxnId(1)));
        assert!(!c.has_other_uncommitted(TxnId(2)));
    }

    #[test]
    fn snapshot_visibility_ordering() {
        let mut c = VersionChain::new();
        c.install(ver(1, 1, 10));
        c.commit(TxnId(1), Timestamp(10));
        c.install(ver(2, 2, 20));
        c.commit(TxnId(2), Timestamp(20));
        assert_eq!(
            c.committed_before(Timestamp(15)).unwrap().value.as_int(),
            Some(10)
        );
        assert_eq!(
            c.committed_before(Timestamp(25)).unwrap().value.as_int(),
            Some(20)
        );
        assert!(c.committed_after(Timestamp(15)));
        assert!(!c.committed_after(Timestamp(25)));
    }

    #[test]
    fn order_ts_insertion_and_visibility() {
        let mut c = VersionChain::new();
        let mut v1 = ver(1, 1, 10);
        v1.order_ts = Some(Timestamp(100));
        let mut v2 = ver(2, 2, 20);
        v2.order_ts = Some(Timestamp(50));
        c.install(v1);
        c.install(v2); // earlier order_ts inserted before
        assert_eq!(c.versions()[0].writer, TxnId(2));
        assert_eq!(
            c.visible_at_order_ts(Timestamp(60)).unwrap().value.as_int(),
            Some(20)
        );
        assert_eq!(
            c.visible_at_order_ts(Timestamp(200))
                .unwrap()
                .value
                .as_int(),
            Some(10)
        );
        assert!(c.visible_at_order_ts(Timestamp(10)).is_none());
    }

    #[test]
    fn prune_keeps_latest_committed_and_uncommitted() {
        let mut c = VersionChain::new();
        for i in 1..=5u64 {
            c.install(ver(i, i, i as i64));
            c.commit(TxnId(i), Timestamp(i * 10));
        }
        c.install(ver(99, 99, 99));
        let removed = c.prune(Timestamp(45));
        assert_eq!(removed, 4);
        assert_eq!(c.latest_committed().unwrap().value.as_int(), Some(5));
        assert!(c.uncommitted_by(TxnId(99)).is_some());

        // Pruning with a horizon beyond everything keeps the latest.
        let mut c2 = VersionChain::new();
        c2.install(ver(1, 1, 1));
        c2.commit(TxnId(1), Timestamp(10));
        assert_eq!(c2.prune(Timestamp(1000)), 0);
        assert!(c2.latest_committed().is_some());
    }
}
