//! The sharded multiversion store.
//!
//! The paper's cluster architecture (§4.5.1) splits the database across
//! *data servers* holding partitions of the data. In this reproduction a
//! data server is a shard: a hash-partitioned map from [`Key`] to
//! [`VersionChain`] protected by its own lock. Transaction coordinators are
//! the client threads of the engine crate. An optional [`sim`](crate::sim)
//! delay emulates the datacenter network round trip between coordinator and
//! data server.

use crate::key::Key;
use crate::sim::SimNet;
use crate::types::{Sequence, Timestamp, TxnId};
use crate::value::Value;
use crate::version::{Version, VersionChain, VersionId, VersionState};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a convenience read should select a version.
///
/// Concurrency-control mechanisms normally inspect the chain directly via
/// [`MvStore::with_chain`]; `ReadSpec` exists for loaders, examples, tests
/// and recovery.
#[derive(Clone, Copy, Debug)]
pub enum ReadSpec {
    /// The most recently committed version.
    LatestCommitted,
    /// Snapshot read: latest version committed strictly before the
    /// timestamp.
    SnapshotBefore(Timestamp),
    /// The version written by the given transaction (committed or not),
    /// falling back to the latest committed version.
    OwnOrCommitted(TxnId),
}

/// Result of installing a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// True if another transaction currently holds an uncommitted version
    /// of the same key (useful for CCs that abort on dirty write-write
    /// overlap).
    pub other_uncommitted: bool,
    /// Commit timestamp of the latest committed version at install time.
    pub latest_committed_ts: Option<Timestamp>,
}

/// Aggregate statistics, used by GC, benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct keys.
    pub keys: usize,
    /// Total number of versions across all chains.
    pub versions: usize,
    /// Number of uncommitted versions.
    pub uncommitted: usize,
}

struct Shard {
    chains: RwLock<HashMap<Key, VersionChain>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            chains: RwLock::new(HashMap::new()),
        }
    }
}

/// The multiversion key-value store.
pub struct MvStore {
    shards: Vec<Shard>,
    version_ids: Sequence,
    net: Option<Arc<SimNet>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl std::fmt::Debug for MvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvStore")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl MvStore {
    /// Creates a store with `shards` data-server partitions.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        MvStore {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            version_ids: Sequence::default(),
            net: None,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Creates a store with a simulated coordinator↔data-server network.
    pub fn with_network(shards: usize, net: Arc<SimNet>) -> Self {
        let mut s = MvStore::new(shards);
        s.net = Some(net);
        s
    }

    /// Number of shards ("data servers").
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The index of the shard ("data server") holding `key`. Exposed so the
    /// durability layer can attribute precommit records to participants.
    pub fn shard_index(&self, key: &Key) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn shard_of(&self, key: &Key) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    fn maybe_delay(&self) {
        if let Some(net) = &self.net {
            net.round_trip();
        }
    }

    /// Runs `f` with shared access to the version chain of `key` (an empty
    /// chain is provided if the key has never been written).
    pub fn with_chain<R>(&self, key: &Key, f: impl FnOnce(&VersionChain) -> R) -> R {
        self.maybe_delay();
        self.reads.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(key);
        let chains = shard.chains.read();
        match chains.get(key) {
            Some(chain) => f(chain),
            None => f(&VersionChain::new()),
        }
    }

    /// Runs `f` with exclusive access to the version chain of `key`,
    /// creating the chain if needed.
    pub fn with_chain_mut<R>(&self, key: &Key, f: impl FnOnce(&mut VersionChain) -> R) -> R {
        self.maybe_delay();
        self.writes.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(key);
        let mut chains = shard.chains.write();
        f(chains.entry(*key).or_default())
    }

    /// Installs an uncommitted version for `txn` on `key`.
    pub fn write(&self, key: &Key, txn: TxnId, value: Value) -> WriteOutcome {
        self.write_with_order_ts(key, txn, value, None)
    }

    /// Installs an uncommitted version carrying an explicit ordering
    /// timestamp (used by timestamp-ordering CCs).
    pub fn write_with_order_ts(
        &self,
        key: &Key,
        txn: TxnId,
        value: Value,
        order_ts: Option<Timestamp>,
    ) -> WriteOutcome {
        let id = VersionId(self.version_ids.issue());
        self.with_chain_mut(key, |chain| {
            let outcome = WriteOutcome {
                other_uncommitted: chain.has_other_uncommitted(txn),
                latest_committed_ts: chain.latest_committed().and_then(|v| v.commit_ts),
            };
            chain.install(Version {
                id,
                writer: txn,
                value,
                state: VersionState::Uncommitted,
                commit_ts: None,
                order_ts,
            });
            outcome
        })
    }

    /// Convenience read used by loaders, recovery and tests.
    pub fn read(&self, key: &Key, spec: ReadSpec) -> Option<Value> {
        self.with_chain(key, |chain| {
            let v = match spec {
                ReadSpec::LatestCommitted => chain.latest_committed(),
                ReadSpec::SnapshotBefore(ts) => chain.committed_before(ts),
                ReadSpec::OwnOrCommitted(txn) => chain
                    .uncommitted_by(txn)
                    .or_else(|| chain.latest_committed()),
            };
            v.map(|v| v.value.clone())
        })
    }

    /// [`MvStore::read`] with delete-tombstone filtering: a visible
    /// [`Value::Null`] version means the key was deleted, so presence
    /// checks must treat it as absent. Use this instead of re-implementing
    /// the `is_null` filter at every call site.
    pub fn read_visible(&self, key: &Key, spec: ReadSpec) -> Option<Value> {
        self.read(key, spec).filter(|v| !v.is_null())
    }

    /// Marks `txn`'s uncommitted versions on `keys` as committed with
    /// `commit_ts`.
    pub fn commit_writes(&self, txn: TxnId, keys: &[Key], commit_ts: Timestamp) {
        for key in keys {
            self.with_chain_mut(key, |chain| {
                chain.commit(txn, commit_ts);
            });
        }
    }

    /// Removes `txn`'s uncommitted versions on `keys`.
    pub fn abort_writes(&self, txn: TxnId, keys: &[Key]) {
        for key in keys {
            self.with_chain_mut(key, |chain| {
                chain.abort(txn);
            });
        }
    }

    /// Installs an already-committed version, bypassing the uncommitted
    /// state. Used by the initial loader and by recovery.
    pub fn load(&self, key: &Key, value: Value) {
        let id = VersionId(self.version_ids.issue());
        self.with_chain_mut(key, |chain| {
            chain.install(Version {
                id,
                writer: TxnId::BOOTSTRAP,
                value,
                state: VersionState::Uncommitted,
                commit_ts: None,
                order_ts: None,
            });
            chain.commit(TxnId::BOOTSTRAP, Timestamp::ZERO);
        });
    }

    /// Prunes committed versions older than `horizon` from every chain,
    /// keeping at least the latest committed version of each key. Returns
    /// the number of versions removed.
    pub fn prune_before(&self, horizon: Timestamp) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut chains = shard.chains.write();
            for chain in chains.values_mut() {
                removed += chain.prune(horizon);
            }
        }
        removed
    }

    /// Visits every key currently present in the store.
    pub fn for_each_key(&self, mut f: impl FnMut(&Key, &VersionChain)) {
        for shard in &self.shards {
            let chains = shard.chains.read();
            for (k, chain) in chains.iter() {
                f(k, chain);
            }
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats::default();
        self.for_each_key(|_, chain| {
            s.keys += 1;
            s.versions += chain.len();
            s.uncommitted += chain.uncommitted().count();
        });
        s
    }

    /// Number of chain accesses performed so far (reads, writes). Exposed
    /// for the overhead experiments of §4.6.5.
    pub fn access_counts(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Drops every chain. Used between benchmark configurations.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.chains.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    fn key(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    #[test]
    fn write_commit_read() {
        let store = MvStore::new(4);
        let k = key(1);
        let out = store.write(&k, TxnId(1), Value::Int(7));
        assert!(!out.other_uncommitted);
        assert_eq!(store.read(&k, ReadSpec::LatestCommitted), None);
        assert_eq!(
            store.read(&k, ReadSpec::OwnOrCommitted(TxnId(1))),
            Some(Value::Int(7))
        );
        store.commit_writes(TxnId(1), &[k], Timestamp(10));
        assert_eq!(
            store.read(&k, ReadSpec::LatestCommitted),
            Some(Value::Int(7))
        );
        assert_eq!(
            store.read(&k, ReadSpec::SnapshotBefore(Timestamp(10))),
            None
        );
        assert_eq!(
            store.read(&k, ReadSpec::SnapshotBefore(Timestamp(11))),
            Some(Value::Int(7))
        );
    }

    #[test]
    fn read_visible_filters_delete_tombstones() {
        let store = MvStore::new(2);
        let k = key(7);
        store.load(&k, Value::Int(1));
        assert_eq!(
            store.read_visible(&k, ReadSpec::LatestCommitted),
            Some(Value::Int(1))
        );
        // A committed delete surfaces as a Null version in `read`...
        store.write(&k, TxnId(1), Value::Null);
        store.commit_writes(TxnId(1), &[k], Timestamp(5));
        assert_eq!(store.read(&k, ReadSpec::LatestCommitted), Some(Value::Null));
        // ...which `read_visible` reports as absent.
        assert_eq!(store.read_visible(&k, ReadSpec::LatestCommitted), None);
    }

    #[test]
    fn abort_discards_writes() {
        let store = MvStore::new(2);
        let k = key(2);
        store.write(&k, TxnId(1), Value::Int(1));
        store.abort_writes(TxnId(1), &[k]);
        assert_eq!(store.read(&k, ReadSpec::OwnOrCommitted(TxnId(1))), None);
        assert_eq!(store.stats().versions, 0);
    }

    #[test]
    fn detects_other_uncommitted_writer() {
        let store = MvStore::new(2);
        let k = key(3);
        store.write(&k, TxnId(1), Value::Int(1));
        let out = store.write(&k, TxnId(2), Value::Int(2));
        assert!(out.other_uncommitted);
    }

    #[test]
    fn load_and_stats() {
        let store = MvStore::new(8);
        for i in 0..100 {
            store.load(&key(i), Value::Int(i as i64));
        }
        let stats = store.stats();
        assert_eq!(stats.keys, 100);
        assert_eq!(stats.versions, 100);
        assert_eq!(stats.uncommitted, 0);
        assert_eq!(
            store.read(&key(42), ReadSpec::LatestCommitted),
            Some(Value::Int(42))
        );
    }

    #[test]
    fn prune_removes_old_versions() {
        let store = MvStore::new(2);
        let k = key(9);
        for i in 1..=5u64 {
            store.write(&k, TxnId(i), Value::Int(i as i64));
            store.commit_writes(TxnId(i), &[k], Timestamp(i * 10));
        }
        let removed = store.prune_before(Timestamp(100));
        assert_eq!(removed, 4);
        assert_eq!(
            store.read(&k, ReadSpec::LatestCommitted),
            Some(Value::Int(5))
        );
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let store = Arc::new(MvStore::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let k = key(t * 1000 + i);
                    let txn = TxnId(t * 1000 + i + 1);
                    store.write(&k, txn, Value::Int(i as i64));
                    store.commit_writes(txn, &[k], Timestamp(i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats().keys, 1000);
        assert_eq!(store.stats().uncommitted, 0);
    }
}
