//! The sharded multiversion store.
//!
//! The paper's cluster architecture (§4.5.1) splits the database across
//! *data servers* holding partitions of the data. In this reproduction a
//! data server is a shard. Since the main-memory rework the shard is **not**
//! a locked map: keys hash into a fixed array of lock-free buckets holding
//! append-only entry lists, and each entry points at a version chain of
//! [`VersionArena`] slots linked by atomic generation-tagged handles.
//!
//! * **Readers take no lock at all.** [`MvStore::with_chain`] pins the
//!   reclamation epoch ([`crate::ebr`]), walks bucket → entry → chain with
//!   `Acquire` loads, and hands the closure a [`ChainRead`] view. A reader
//!   completes even while another thread holds the write latch of the same
//!   key (or any other).
//! * **Writers serialize per key**, not per shard: [`MvStore::with_chain_mut`]
//!   takes a tiny per-entry spin latch. Chain mutation is splice-based —
//!   commit/overwrite allocate a replacement slot, link it in place and
//!   retire the old slot to the epoch limbo list, so concurrent readers
//!   always observe fully formed versions.
//! * **Reclamation is epoch-based**: retired slots park on per-epoch limbo
//!   bins and are freed only when the global epoch and every pinned thread
//!   have advanced two epochs past the retirement (no global pause).
//!
//! Aggregate statistics (`keys` / `versions` / `uncommitted`) are O(1)
//! atomics maintained by the mutation paths; [`MvStore::stats_scanned`]
//! recomputes them by full scan so tests can assert consistency.
//!
//! An optional [`sim`](crate::sim) delay emulates the datacenter network
//! round trip between coordinator and data server.

use crate::arena::{VersionArena, NIL};
use crate::ebr;
use crate::key::Key;
use crate::sim::SimNet;
use crate::types::{Sequence, Timestamp, TxnId};
use crate::value::Value;
use crate::version::{ChainRead, Version, VersionId, VersionState};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use tebaldi_obs::metrics::{Counter, MaxGauge, MetricsRegistry};

/// How a convenience read should select a version.
///
/// Concurrency-control mechanisms normally inspect the chain directly via
/// [`MvStore::with_chain`]; `ReadSpec` exists for loaders, examples, tests
/// and recovery.
#[derive(Clone, Copy, Debug)]
pub enum ReadSpec {
    /// The most recently committed version.
    LatestCommitted,
    /// Snapshot read: latest version committed strictly before the
    /// timestamp.
    SnapshotBefore(Timestamp),
    /// The version written by the given transaction (committed or not),
    /// falling back to the latest committed version.
    OwnOrCommitted(TxnId),
}

/// Result of an HLC-snapshot read (see [`MvStore::read_snapshot_hlc`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotRead {
    /// The value visible at the snapshot (`None`: key absent or deleted).
    Value(Option<Value>),
    /// An uncommitted writer newer than the visible candidate is still in
    /// flight and may commit with a stamp inside the snapshot; the caller
    /// must wait it out (or refuse) and retry.
    Blocked,
}

/// Result of installing a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// True if another transaction currently holds an uncommitted version
    /// of the same key (useful for CCs that abort on dirty write-write
    /// overlap).
    pub other_uncommitted: bool,
    /// Commit timestamp of the latest committed version at install time.
    pub latest_committed_ts: Option<Timestamp>,
}

/// Aggregate statistics, used by GC, benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct keys.
    pub keys: usize,
    /// Total number of versions across all chains.
    pub versions: usize,
    /// Number of uncommitted versions.
    pub uncommitted: usize,
}

/// Buckets per shard (power of two).
const BUCKET_BITS: usize = 14;
const BUCKETS: usize = 1 << BUCKET_BITS;
const BUCKET_MASK: usize = BUCKETS - 1;

/// Key entries per chunk of the entry arena.
const ENTRY_CHUNK_BITS: u32 = 12;
const ENTRY_CHUNK_SIZE: usize = 1 << ENTRY_CHUNK_BITS;
const ENTRY_CHUNK_MASK: u64 = (ENTRY_CHUNK_SIZE as u64) - 1;
const ENTRY_MAX_CHUNKS: usize = 1 << 12;

/// One key's slot in the lock-free index. Entries are append-only: once
/// published into a bucket list they are never unlinked (only [`MvStore::clear`]
/// recycles them, under documented quiescence).
struct KeyEntry {
    /// The key, split into atomics so index readers are race-free even
    /// against entry recycling.
    key_table: AtomicU64,
    key_row_hi: AtomicU64,
    key_row_lo: AtomicU64,
    /// Next entry in the same bucket (entry index, or [`NIL`]).
    bucket_next: AtomicU64,
    /// Head of the version chain (packed arena handle, or [`NIL`]).
    /// Newest version first.
    head: AtomicU64,
    /// Chain length, maintained by the latched writer.
    versions: AtomicU64,
    /// Uncommitted versions currently on the chain, maintained by the
    /// latched writer. Lets readers skip the uncommitted-version scan
    /// entirely in the (overwhelmingly common) zero case, and lets the
    /// latched writer bound its scans by the number of uncommitted
    /// versions instead of the chain length.
    uncommitted: AtomicU64,
    /// Per-key writer latch.
    latch: AtomicBool,
}

impl KeyEntry {
    fn init(&self, key: &Key) {
        self.key_table.store(key.table.0 as u64, Ordering::Relaxed);
        self.key_row_hi
            .store((key.row >> 64) as u64, Ordering::Relaxed);
        self.key_row_lo.store(key.row as u64, Ordering::Relaxed);
        self.head.store(NIL, Ordering::Relaxed);
        self.versions.store(0, Ordering::Relaxed);
        self.uncommitted.store(0, Ordering::Relaxed);
        self.latch.store(false, Ordering::Relaxed);
        self.bucket_next.store(NIL, Ordering::Relaxed);
    }

    fn key(&self) -> Key {
        let table = crate::schema::TableId(self.key_table.load(Ordering::Relaxed) as u32);
        let row = ((self.key_row_hi.load(Ordering::Relaxed) as u128) << 64)
            | self.key_row_lo.load(Ordering::Relaxed) as u128;
        Key::new(table, row)
    }

    fn key_matches(&self, key: &Key) -> bool {
        self.key_table.load(Ordering::Relaxed) == key.table.0 as u64
            && self.key_row_lo.load(Ordering::Relaxed) == key.row as u64
            && self.key_row_hi.load(Ordering::Relaxed) == (key.row >> 64) as u64
    }

    fn lock_latch(&self) -> LatchGuard<'_> {
        let mut spins = 0u32;
        while self
            .latch
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        LatchGuard(&self.latch)
    }
}

/// RAII unlock of a [`KeyEntry`] latch (also on panic inside the closure).
struct LatchGuard<'a>(&'a AtomicBool);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Chunked, append-only arena of [`KeyEntry`]s. Entries are addressed by a
/// plain index (no generation: they are never freed while the store is
/// live).
struct EntryArena {
    spine: Box<[AtomicPtr<KeyEntry>]>,
    bump: AtomicU64,
    grow_lock: Mutex<()>,
}

unsafe impl Send for EntryArena {}
unsafe impl Sync for EntryArena {}

impl EntryArena {
    fn new() -> Self {
        EntryArena {
            spine: (0..ENTRY_MAX_CHUNKS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            bump: AtomicU64::new(0),
            grow_lock: Mutex::new(()),
        }
    }

    fn len(&self) -> u64 {
        self.bump.load(Ordering::Acquire)
    }

    fn get(&self, idx: u64) -> &KeyEntry {
        let chunk = self.spine[(idx >> ENTRY_CHUNK_BITS) as usize].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null());
        unsafe { &*chunk.add((idx & ENTRY_CHUNK_MASK) as usize) }
    }

    fn alloc(&self) -> (u64, &KeyEntry) {
        let idx = self.bump.fetch_add(1, Ordering::AcqRel);
        assert!(
            idx < (ENTRY_MAX_CHUNKS * ENTRY_CHUNK_SIZE) as u64,
            "key-entry arena exhausted"
        );
        let chunk_idx = (idx >> ENTRY_CHUNK_BITS) as usize;
        if self.spine[chunk_idx].load(Ordering::Acquire).is_null() {
            let _g = self.grow_lock.lock();
            if self.spine[chunk_idx].load(Ordering::Acquire).is_null() {
                let chunk: Box<[KeyEntry]> = (0..ENTRY_CHUNK_SIZE)
                    .map(|_| KeyEntry {
                        key_table: AtomicU64::new(0),
                        key_row_hi: AtomicU64::new(0),
                        key_row_lo: AtomicU64::new(0),
                        bucket_next: AtomicU64::new(NIL),
                        head: AtomicU64::new(NIL),
                        versions: AtomicU64::new(0),
                        uncommitted: AtomicU64::new(0),
                        latch: AtomicBool::new(false),
                    })
                    .collect();
                let ptr = Box::into_raw(chunk) as *mut KeyEntry;
                self.spine[chunk_idx].store(ptr, Ordering::Release);
            }
        }
        (idx, self.get(idx))
    }
}

impl Drop for EntryArena {
    fn drop(&mut self) {
        for slot in self.spine.iter() {
            let ptr = slot.load(Ordering::Relaxed);
            if !ptr.is_null() {
                drop(unsafe {
                    Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, ENTRY_CHUNK_SIZE))
                });
            }
        }
    }
}

struct Shard {
    /// Bucket heads: entry index or [`NIL`].
    buckets: Box<[AtomicU64]>,
    /// Serializes new-key insertion only; lookups and chain access never
    /// touch it.
    insert_lock: Mutex<()>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(NIL)).collect(),
            insert_lock: Mutex::new(()),
        }
    }
}

/// One retired-slot bin, reclaimable once every epoch pin has advanced two
/// epochs past `epoch`.
struct LimboBin {
    epoch: u64,
    handles: Vec<u64>,
    bytes: u64,
}

/// Lock-free read view of one key's version chain (possibly empty).
///
/// The chain head is re-loaded (`Acquire`) on every traversal rather than
/// captured once: mechanisms interleave their own bookkeeping (reader
/// registration, timestamp recording) with chain walks, and their
/// correctness arguments need walks to observe every version installed
/// before the walk started — a cached head would silently pin an older
/// snapshot.
pub struct ChainRef<'a> {
    arena: &'a VersionArena,
    entry: Option<&'a KeyEntry>,
}

impl ChainRead for ChainRef<'_> {
    fn len(&self) -> usize {
        self.entry
            .map(|e| e.versions.load(Ordering::Relaxed) as usize)
            .unwrap_or(0)
    }

    fn for_each_newest_first<'s>(&'s self, f: &mut dyn FnMut(&'s Version) -> bool) {
        let Some(entry) = self.entry else {
            return;
        };
        let mut cur = entry.head.load(Ordering::Acquire);
        while cur != NIL {
            let Some((v, next)) = self.arena.read(cur) else {
                break;
            };
            if !f(v) {
                return;
            }
            cur = next;
        }
    }

    /// Read-your-own-writes probe, on the read path of every `get`. When
    /// the uncommitted count is zero the chain cannot hold our version, so
    /// the walk is skipped outright — the common case on a hot key whose
    /// chain has grown long between GC cycles. (The count is only a
    /// fast-path filter here: this view is lock-free, so a non-zero count
    /// falls back to the plain walk rather than trusting a racing value.
    /// The zero case is sound because our own install happened-before this
    /// read on the same thread, so it is always included in the load.)
    fn uncommitted_by(&self, writer: TxnId) -> Option<&Version> {
        let entry = self.entry?;
        if entry.uncommitted.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.find_newest_first(&mut |v| v.writer == writer && !v.is_committed())
    }

    fn has_other_uncommitted(&self, txn: TxnId) -> bool {
        let Some(entry) = self.entry else {
            return false;
        };
        if entry.uncommitted.load(Ordering::Relaxed) == 0 {
            return false;
        }
        self.find_newest_first(&mut |v| !v.is_committed() && v.writer != txn)
            .is_some()
    }
}

/// Exclusive (per-key latched) view of one key's version chain, with the
/// mutation primitives of the old `VersionChain` — implemented as slot
/// replacement/splicing so lock-free readers stay safe mid-mutation.
pub struct ChainWrite<'a> {
    store: &'a MvStore,
    entry: &'a KeyEntry,
}

impl ChainRead for ChainWrite<'_> {
    fn len(&self) -> usize {
        self.entry.versions.load(Ordering::Relaxed) as usize
    }

    fn for_each_newest_first<'s>(&'s self, f: &mut dyn FnMut(&'s Version) -> bool) {
        let mut cur = self.entry.head.load(Ordering::Acquire);
        while cur != NIL {
            let Some((v, next)) = self.store.arena.read(cur) else {
                break;
            };
            if !f(v) {
                return;
            }
            cur = next;
        }
    }

    /// Exact bounded scan: the latch makes the uncommitted count stable,
    /// so the walk stops once every uncommitted version has been seen
    /// instead of running to the end of the chain.
    fn uncommitted_by(&self, writer: TxnId) -> Option<&Version> {
        let mut remaining = self.entry.uncommitted.load(Ordering::Relaxed);
        if remaining == 0 {
            return None;
        }
        let mut found = None;
        self.for_each_newest_first(&mut |v| {
            if !v.is_committed() {
                if v.writer == writer {
                    found = Some(v);
                    return false;
                }
                remaining -= 1;
                if remaining == 0 {
                    return false;
                }
            }
            true
        });
        found
    }

    fn has_other_uncommitted(&self, txn: TxnId) -> bool {
        let mut remaining = self.entry.uncommitted.load(Ordering::Relaxed);
        if remaining == 0 {
            return false;
        }
        let mut found = false;
        self.for_each_newest_first(&mut |v| {
            if !v.is_committed() {
                if v.writer != txn {
                    found = true;
                    return false;
                }
                remaining -= 1;
                if remaining == 0 {
                    return false;
                }
            }
            true
        });
        found
    }
}

impl<'a> ChainWrite<'a> {
    fn head(&self) -> u64 {
        self.entry.head.load(Ordering::Acquire)
    }

    /// Finds `writer`'s uncommitted version; returns
    /// `(prev_handle_or_NIL, handle, next_handle)`. The latch-stable
    /// uncommitted count bounds the walk: once every uncommitted version
    /// has been seen the target cannot be deeper, so long committed tails
    /// are never scanned.
    fn find_uncommitted_node(&self, writer: TxnId) -> Option<(u64, u64, u64)> {
        let mut remaining = self.entry.uncommitted.load(Ordering::Relaxed);
        if remaining == 0 {
            return None;
        }
        let arena = &self.store.arena;
        let mut prev = NIL;
        let mut cur = self.head();
        while cur != NIL {
            let (v, next) = arena.read(cur)?;
            if !v.is_committed() {
                if v.writer == writer {
                    return Some((prev, cur, next));
                }
                remaining -= 1;
                if remaining == 0 {
                    return None;
                }
            }
            prev = cur;
            cur = next;
        }
        None
    }

    /// Splices `replacement` into `old`'s chain position and retires `old`.
    fn replace(&mut self, prev: u64, old: u64, old_next: u64, replacement: Version) {
        let store = self.store;
        let new_h = store.arena.alloc(replacement);
        store.arena.set_next(new_h, old_next);
        if prev == NIL {
            self.entry.head.store(new_h, Ordering::Release);
        } else {
            store.arena.set_next(prev, new_h);
        }
        store.retire(old);
    }

    /// Unlinks a node and retires it (does not touch the uncommitted
    /// counter; callers know the node's state).
    fn unlink(&mut self, prev: u64, cur: u64, next: u64) {
        let store = self.store;
        if prev == NIL {
            self.entry.head.store(next, Ordering::Release);
        } else {
            store.arena.set_next(prev, next);
        }
        store.retire(cur);
        self.entry.versions.fetch_sub(1, Ordering::Relaxed);
        store.n_versions.fetch_sub(1, Ordering::Relaxed);
    }

    fn push_head(&mut self, version: Version) {
        let store = self.store;
        let new_h = store.arena.alloc(version);
        store.arena.set_next(new_h, self.head());
        self.entry.head.store(new_h, Ordering::Release);
        self.count_installed();
    }

    fn count_installed(&self) {
        let store = self.store;
        let len = self.entry.versions.fetch_add(1, Ordering::Relaxed) + 1;
        store.n_versions.fetch_add(1, Ordering::Relaxed);
        store.m_chain_len.observe(len);
    }

    /// Installs a new uncommitted version. If the writer already has an
    /// uncommitted version on this key it is replaced in place (last write
    /// of a transaction wins), otherwise the version is inserted at its
    /// ordering position.
    pub fn install(&mut self, version: Version) {
        let store: &'a MvStore = self.store;
        if let Some((prev, cur, next)) = self.find_uncommitted_node(version.writer) {
            let (existing, _) = store.arena.read(cur).expect("latched chain node");
            let replacement = Version {
                id: existing.id,
                writer: version.writer,
                value: version.value,
                state: VersionState::Uncommitted,
                commit_ts: None,
                order_ts: version.order_ts.or(existing.order_ts),
                hlc: 0,
            };
            self.replace(prev, cur, next, replacement);
            return;
        }
        store.n_uncommitted.fetch_add(1, Ordering::Relaxed);
        self.entry.uncommitted.fetch_add(1, Ordering::Relaxed);
        match version.order_ts {
            Some(ts) => {
                // Keep order_ts-carrying versions sorted among themselves:
                // insert before (older than) the first — in oldest-first
                // terms — version with a larger order_ts. Walking newest
                // first, that is "after the deepest node with order_ts >
                // ts"; order_ts versions run descending, so the walk stops
                // at the first one at or below ts.
                let arena = &store.arena;
                let mut deepest: Option<(u64, u64)> = None;
                let mut cur = self.head();
                while cur != NIL {
                    let Some((v, next)) = arena.read(cur) else {
                        break;
                    };
                    match v.order_ts {
                        Some(other) if other > ts => deepest = Some((cur, next)),
                        Some(_) => break,
                        None => {}
                    }
                    cur = next;
                }
                match deepest {
                    Some((d, d_next)) => {
                        let new_h = arena.alloc(version);
                        arena.set_next(new_h, d_next);
                        arena.set_next(d, new_h);
                        self.count_installed();
                    }
                    None => self.push_head(version),
                }
            }
            None => self.push_head(version),
        }
    }

    /// Installs an already-committed version at the head of the chain
    /// (bootstrap loads and recovery).
    pub fn install_committed(&mut self, version: Version) {
        debug_assert!(version.is_committed());
        self.push_head(version);
    }

    /// Marks the version written by `writer` as committed with `commit_ts`.
    /// Returns `true` if a version was found.
    ///
    /// The replacement keeps the old slot's chain position: position order
    /// is the order in which the concurrency-control tree serialized the
    /// installs, and the mechanisms' dependency waits make per-key commit
    /// order follow it. Moving the version (e.g. to the head) would jump
    /// over uncommitted versions installed after it, hiding a later write
    /// from position-based readers — the lost-update bug this comment
    /// guards against.
    pub fn commit(&mut self, writer: TxnId, commit_ts: Timestamp) -> bool {
        self.commit_stamped(writer, commit_ts, 0)
    }

    /// [`commit`](ChainWrite::commit) carrying the cluster-wide HLC stamp
    /// of the commit (see [`Version::hlc`]).
    pub fn commit_stamped(&mut self, writer: TxnId, commit_ts: Timestamp, hlc: u64) -> bool {
        let store: &'a MvStore = self.store;
        let Some((prev, cur, next)) = self.find_uncommitted_node(writer) else {
            return false;
        };
        let (existing, _) = store.arena.read(cur).expect("latched chain node");
        let replacement = Version {
            id: existing.id,
            writer: existing.writer,
            value: existing.value.clone(),
            state: VersionState::Committed,
            commit_ts: Some(commit_ts),
            order_ts: existing.order_ts,
            hlc,
        };
        self.replace(prev, cur, next, replacement);
        store.n_uncommitted.fetch_sub(1, Ordering::Relaxed);
        self.entry.uncommitted.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Removes the uncommitted version installed by `writer`, if any.
    /// Returns `true` if a version was removed.
    pub fn abort(&mut self, writer: TxnId) -> bool {
        let store: &'a MvStore = self.store;
        let mut removed = false;
        while let Some((prev, cur, next)) = self.find_uncommitted_node(writer) {
            self.unlink(prev, cur, next);
            store.n_uncommitted.fetch_sub(1, Ordering::Relaxed);
            self.entry.uncommitted.fetch_sub(1, Ordering::Relaxed);
            removed = true;
        }
        removed
    }

    /// Drops committed versions strictly older than `keep_after`, always
    /// keeping at least the latest committed version. Returns the number of
    /// versions removed.
    pub fn prune(&mut self, keep_after: Timestamp) -> usize {
        let store: &'a MvStore = self.store;
        let latest_commit_ts = ChainRead::latest_committed(self).and_then(|v| v.commit_ts);
        let arena = &store.arena;
        let mut removed = 0;
        let mut prev = NIL;
        let mut cur = self.head();
        while cur != NIL {
            let Some((v, next)) = arena.read(cur) else {
                break;
            };
            let ts = v.commit_ts.unwrap_or(Timestamp::ZERO);
            let drop_it = v.is_committed() && ts < keep_after && Some(ts) != latest_commit_ts;
            if drop_it {
                self.unlink(prev, cur, next);
                removed += 1;
            } else {
                prev = cur;
            }
            cur = next;
        }
        removed
    }
}

/// The multiversion key-value store.
pub struct MvStore {
    shards: Vec<Shard>,
    entries: EntryArena,
    arena: VersionArena,
    limbo: Mutex<VecDeque<LimboBin>>,
    limbo_nodes: AtomicU64,
    limbo_bytes: AtomicU64,
    retired_since_reclaim: AtomicU64,
    version_ids: Sequence,
    net: Option<Arc<SimNet>>,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Closed-timestamp watermark: highest HLC stamp on any committed
    /// version (see [`MvStore::hlc_watermark`]).
    commit_hlc: AtomicU64,
    // O(1) aggregate statistics.
    n_keys: AtomicU64,
    n_versions: AtomicU64,
    n_uncommitted: AtomicU64,
    // Metrics (standalone by default; `attach_metrics` rebinds them to a
    // registry so they surface in snapshots/Prometheus).
    m_retired: Arc<Counter>,
    m_limbo_bytes: Arc<MaxGauge>,
    m_epoch_lag: Arc<MaxGauge>,
    m_chain_len: Arc<MaxGauge>,
}

impl std::fmt::Debug for MvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvStore")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl MvStore {
    /// Creates a store with `shards` data-server partitions.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        MvStore {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            entries: EntryArena::new(),
            arena: VersionArena::new(),
            limbo: Mutex::new(VecDeque::new()),
            limbo_nodes: AtomicU64::new(0),
            limbo_bytes: AtomicU64::new(0),
            retired_since_reclaim: AtomicU64::new(0),
            version_ids: Sequence::default(),
            net: None,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            commit_hlc: AtomicU64::new(0),
            n_keys: AtomicU64::new(0),
            n_versions: AtomicU64::new(0),
            n_uncommitted: AtomicU64::new(0),
            m_retired: Arc::new(Counter::new()),
            m_limbo_bytes: Arc::new(MaxGauge::new()),
            m_epoch_lag: Arc::new(MaxGauge::new()),
            m_chain_len: Arc::new(MaxGauge::new()),
        }
    }

    /// Creates a store with a simulated coordinator↔data-server network.
    pub fn with_network(shards: usize, net: Arc<SimNet>) -> Self {
        let mut s = MvStore::new(shards);
        s.net = Some(net);
        s
    }

    /// Rebinds the store's GC/arena instruments to `registry` so they show
    /// up in metric snapshots (`gc.versions_retired`, `gc.limbo_bytes`,
    /// `gc.epoch_lag`, `store.chain_len`).
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.m_retired = registry.counter("gc.versions_retired");
        self.m_limbo_bytes = registry.max_gauge("gc.limbo_bytes");
        self.m_epoch_lag = registry.max_gauge("gc.epoch_lag");
        self.m_chain_len = registry.max_gauge("store.chain_len");
    }

    /// Number of shards ("data servers").
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn hash_key(key: &Key) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        hasher.finish()
    }

    /// The index of the shard ("data server") holding `key`. Exposed so the
    /// durability layer can attribute precommit records to participants.
    pub fn shard_index(&self, key: &Key) -> usize {
        (Self::hash_key(key) as usize) % self.shards.len()
    }

    fn locate(&self, key: &Key) -> (u64, usize, usize) {
        let h = Self::hash_key(key);
        let shard = (h as usize) % self.shards.len();
        let bucket = ((h >> 32) as usize ^ h as usize) & BUCKET_MASK;
        (h, shard, bucket)
    }

    fn maybe_delay(&self) {
        if let Some(net) = &self.net {
            net.round_trip();
        }
    }

    /// Lock-free index lookup (no shard lock, no latch).
    fn lookup(&self, key: &Key) -> Option<&KeyEntry> {
        let (_, shard, bucket) = self.locate(key);
        let mut idx = self.shards[shard].buckets[bucket].load(Ordering::Acquire);
        while idx != NIL {
            let entry = self.entries.get(idx);
            if entry.key_matches(key) {
                return Some(entry);
            }
            idx = entry.bucket_next.load(Ordering::Acquire);
        }
        None
    }

    fn lookup_or_insert(&self, key: &Key) -> &KeyEntry {
        if let Some(entry) = self.lookup(key) {
            return entry;
        }
        let (_, shard_idx, bucket) = self.locate(key);
        let shard = &self.shards[shard_idx];
        let _g = shard.insert_lock.lock();
        // Re-check under the insert lock: another writer may have raced us.
        if let Some(entry) = self.lookup(key) {
            return entry;
        }
        let (idx, entry) = self.entries.alloc();
        entry.init(key);
        let head = &shard.buckets[bucket];
        entry
            .bucket_next
            .store(head.load(Ordering::Relaxed), Ordering::Relaxed);
        // Publish: the insert lock serializes writers on this shard, so a
        // plain Release store suffices for the bucket head.
        head.store(idx, Ordering::Release);
        self.n_keys.fetch_add(1, Ordering::Relaxed);
        entry
    }

    /// Runs `f` with a lock-free shared view of the version chain of `key`
    /// (an empty chain is provided if the key has never been written). The
    /// call pins the reclamation epoch for its duration; no shard or chain
    /// lock is taken.
    pub fn with_chain<R>(&self, key: &Key, f: impl FnOnce(&dyn ChainRead) -> R) -> R {
        self.maybe_delay();
        self.reads.fetch_add(1, Ordering::Relaxed);
        let _pin = ebr::pin();
        f(&ChainRef {
            arena: &self.arena,
            entry: self.lookup(key),
        })
    }

    /// Runs `f` with exclusive access to the version chain of `key` (via
    /// the key's write latch), creating the chain if needed. Other keys —
    /// including keys of the same shard — stay fully accessible.
    pub fn with_chain_mut<R>(&self, key: &Key, f: impl FnOnce(&mut ChainWrite<'_>) -> R) -> R {
        self.maybe_delay();
        self.writes.fetch_add(1, Ordering::Relaxed);
        let _pin = ebr::pin();
        let entry = self.lookup_or_insert(key);
        let _latch = entry.lock_latch();
        let mut chain = ChainWrite { store: self, entry };
        f(&mut chain)
    }

    /// Installs an uncommitted version for `txn` on `key`.
    pub fn write(&self, key: &Key, txn: TxnId, value: Value) -> WriteOutcome {
        self.write_with_order_ts(key, txn, value, None)
    }

    /// Installs an uncommitted version carrying an explicit ordering
    /// timestamp (used by timestamp-ordering CCs).
    pub fn write_with_order_ts(
        &self,
        key: &Key,
        txn: TxnId,
        value: Value,
        order_ts: Option<Timestamp>,
    ) -> WriteOutcome {
        let id = VersionId(self.version_ids.issue());
        self.with_chain_mut(key, |chain| {
            let outcome = WriteOutcome {
                other_uncommitted: chain.has_other_uncommitted(txn),
                latest_committed_ts: chain.latest_committed().and_then(|v| v.commit_ts),
            };
            chain.install(Version {
                id,
                writer: txn,
                value,
                state: VersionState::Uncommitted,
                commit_ts: None,
                order_ts,
                hlc: 0,
            });
            outcome
        })
    }

    /// Convenience read used by loaders, recovery and tests.
    pub fn read(&self, key: &Key, spec: ReadSpec) -> Option<Value> {
        self.with_chain(key, |chain| {
            let v = match spec {
                ReadSpec::LatestCommitted => chain.latest_committed(),
                ReadSpec::SnapshotBefore(ts) => chain.committed_before(ts),
                ReadSpec::OwnOrCommitted(txn) => chain
                    .uncommitted_by(txn)
                    .or_else(|| chain.latest_committed()),
            };
            v.map(|v| v.value.clone())
        })
    }

    /// [`MvStore::read`] with delete-tombstone filtering: a visible
    /// [`Value::Null`] version means the key was deleted, so presence
    /// checks must treat it as absent. Use this instead of re-implementing
    /// the `is_null` filter at every call site.
    pub fn read_visible(&self, key: &Key, spec: ReadSpec) -> Option<Value> {
        self.read(key, spec).filter(|v| !v.is_null())
    }

    /// Marks `txn`'s uncommitted versions on `keys` as committed with
    /// `commit_ts` (no HLC stamp — standalone-engine and test callers).
    pub fn commit_writes(&self, txn: TxnId, keys: &[Key], commit_ts: Timestamp) {
        self.commit_writes_stamped(txn, keys, commit_ts, 0);
    }

    /// [`commit_writes`](MvStore::commit_writes) carrying the cluster-wide
    /// HLC stamp of the commit, and advancing the store's closed-timestamp
    /// watermark (the highest stamp any committed version carries).
    pub fn commit_writes_stamped(&self, txn: TxnId, keys: &[Key], commit_ts: Timestamp, hlc: u64) {
        for key in keys {
            self.with_chain_mut(key, |chain| {
                chain.commit_stamped(txn, commit_ts, hlc);
            });
        }
        if hlc > 0 {
            self.commit_hlc.fetch_max(hlc, Ordering::SeqCst);
        }
    }

    /// The closed-timestamp watermark: the highest HLC stamp carried by any
    /// version this store has committed or recovered. Observability and
    /// staleness accounting only — snapshot-read visibility is decided per
    /// chain (see [`MvStore::read_snapshot_hlc`]), not against this global.
    pub fn hlc_watermark(&self) -> u64 {
        self.commit_hlc.load(Ordering::SeqCst)
    }

    /// Reads `key` at the global HLC snapshot `h`: the newest committed
    /// version with stamp `<= h` (unstamped versions count as ancient and
    /// are always visible). Lock-free — the walk takes no latch and pins
    /// only the reclamation epoch.
    ///
    /// Returns [`SnapshotRead::Blocked`] when an uncommitted version sits
    /// at a chain position newer than the visible candidate: its writer may
    /// still commit with a 2PC decision stamp `<= h` (the caller observed
    /// `h` into the shard clock first, so only *already-voted* writers can
    /// do that — they resolve as soon as their decision arrives). Callers
    /// wait out the writer and retry rather than taking a lock.
    ///
    /// Within one chain the first committed version with stamp `<= h` is
    /// the right answer: per-key commit order follows chain position (the
    /// position-order invariant) and HLC stamps are monotone along it —
    /// a ww-predecessor commits before its successor's vote leaves the
    /// shard, and the decision stamp is drawn after observing that vote.
    pub fn read_snapshot_hlc(&self, key: &Key, h: u64) -> SnapshotRead {
        self.maybe_delay();
        self.reads.fetch_add(1, Ordering::Relaxed);
        let _pin = ebr::pin();
        let Some(entry) = self.lookup(key) else {
            return SnapshotRead::Value(None);
        };
        let chain = ChainRef {
            arena: &self.arena,
            entry: Some(entry),
        };
        let mut result = SnapshotRead::Value(None);
        chain.for_each_newest_first(&mut |v| {
            if !v.is_committed() {
                result = SnapshotRead::Blocked;
                return false;
            }
            if v.hlc <= h {
                result = SnapshotRead::Value(if v.value.is_null() {
                    None
                } else {
                    Some(v.value.clone())
                });
                return false;
            }
            true
        });
        result
    }

    /// Removes `txn`'s uncommitted versions on `keys`.
    pub fn abort_writes(&self, txn: TxnId, keys: &[Key]) {
        for key in keys {
            self.with_chain_mut(key, |chain| {
                chain.abort(txn);
            });
        }
    }

    /// Installs an already-committed version, bypassing the uncommitted
    /// state. Used by the initial loader and by recovery.
    pub fn load(&self, key: &Key, value: Value) {
        let id = VersionId(self.version_ids.issue());
        self.with_chain_mut(key, |chain| {
            chain.install_committed(Version {
                id,
                writer: TxnId::BOOTSTRAP,
                value,
                state: VersionState::Committed,
                commit_ts: Some(Timestamp::ZERO),
                order_ts: None,
                hlc: 0,
            });
        });
    }

    /// Prunes committed versions older than `horizon` from every chain,
    /// keeping at least the latest committed version of each key. Returns
    /// the number of versions removed (retired to the epoch limbo lists —
    /// the memory is reclaimed once every pin has moved on). Unlike the old
    /// locked-map store this takes no shard-wide lock: each key is latched
    /// individually, so readers and writers keep running throughout.
    pub fn prune_before(&self, horizon: Timestamp) -> usize {
        let _pin = ebr::pin();
        let mut removed = 0;
        let n = self.entries.len();
        for idx in 0..n {
            let entry = self.entries.get(idx);
            if entry.versions.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let _latch = entry.lock_latch();
            let mut chain = ChainWrite { store: self, entry };
            removed += chain.prune(horizon);
        }
        removed
    }

    /// Visits every key currently present in the store.
    pub fn for_each_key(&self, mut f: impl FnMut(&Key, &dyn ChainRead)) {
        let _pin = ebr::pin();
        let n = self.entries.len();
        for idx in 0..n {
            let entry = self.entries.get(idx);
            let key = entry.key();
            let chain = ChainRef {
                arena: &self.arena,
                entry: Some(entry),
            };
            f(&key, &chain);
        }
    }

    /// Aggregate statistics, maintained as O(1) atomics by the mutation
    /// paths (no scan).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            keys: self.n_keys.load(Ordering::Relaxed) as usize,
            versions: self.n_versions.load(Ordering::Relaxed) as usize,
            uncommitted: self.n_uncommitted.load(Ordering::Relaxed) as usize,
        }
    }

    /// Recomputes [`MvStore::stats`] by full scan. Exists so GC tests can
    /// assert the O(1) counters never drift from the truth.
    pub fn stats_scanned(&self) -> StoreStats {
        let mut s = StoreStats::default();
        self.for_each_key(|_, chain| {
            s.keys += 1;
            s.versions += chain.len();
            chain.for_each_newest_first(&mut |v| {
                if !v.is_committed() {
                    s.uncommitted += 1;
                }
                true
            });
        });
        s
    }

    /// Number of chain accesses performed so far (reads, writes). Exposed
    /// for the overhead experiments of §4.6.5.
    pub fn access_counts(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Retires a version slot to the current epoch's limbo bin.
    fn retire(&self, handle: u64) {
        let bytes = self
            .arena
            .read(handle)
            .map(|(v, _)| (std::mem::size_of::<Version>() + v.value.approx_size()) as u64)
            .unwrap_or(std::mem::size_of::<Version>() as u64);
        let epoch = ebr::domain().epoch();
        {
            let mut limbo = self.limbo.lock();
            match limbo.back_mut() {
                // `>=` keeps bins sorted even when a racing retire read a
                // stale (older) epoch after a newer bin was opened.
                Some(back) if back.epoch >= epoch => {
                    back.handles.push(handle);
                    back.bytes += bytes;
                }
                _ => limbo.push_back(LimboBin {
                    epoch,
                    handles: vec![handle],
                    bytes,
                }),
            }
        }
        self.limbo_nodes.fetch_add(1, Ordering::Relaxed);
        let total = self.limbo_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.m_retired.inc();
        self.m_limbo_bytes.observe(total);
        // Amortized housekeeping: advance the epoch and sweep reclaimable
        // bins every few dozen retirements.
        if self.retired_since_reclaim.fetch_add(1, Ordering::Relaxed) % 64 == 63 {
            ebr::domain().try_advance();
            self.collect_limbo();
        }
    }

    /// Frees every limbo bin that is two epochs behind both the global
    /// epoch and every pinned thread. Returns the number of slots freed.
    fn collect_limbo(&self) -> usize {
        let domain = ebr::domain();
        let global = domain.epoch();
        let min_pin = domain.min_pin();
        let mut freed = 0;
        let mut limbo = self.limbo.lock();
        if let Some(front) = limbo.front() {
            self.m_epoch_lag.observe(global.saturating_sub(front.epoch));
        }
        while let Some(front) = limbo.front() {
            let e = front.epoch;
            if global < e + 2 || min_pin.is_some_and(|m| m < e + 2) {
                break;
            }
            let bin = limbo.pop_front().expect("front checked");
            self.limbo_nodes
                .fetch_sub(bin.handles.len() as u64, Ordering::Relaxed);
            self.limbo_bytes.fetch_sub(bin.bytes, Ordering::Relaxed);
            for h in &bin.handles {
                self.arena.free(*h);
            }
            freed += bin.handles.len();
        }
        freed
    }

    /// Tries to advance the reclamation epoch and sweep limbo bins whose
    /// grace period has passed. Called by the GC cycle; also safe to call
    /// at any time. Returns the number of version slots freed.
    pub fn reclaim(&self) -> usize {
        ebr::domain().try_advance();
        self.collect_limbo()
    }

    /// (retired-but-not-yet-freed slots, their approximate bytes).
    pub fn limbo_stats(&self) -> (u64, u64) {
        (
            self.limbo_nodes.load(Ordering::Relaxed),
            self.limbo_bytes.load(Ordering::Relaxed),
        )
    }

    /// Generation-mismatched chain dereferences observed so far. Stays zero
    /// under correct epoch pinning; the reclamation proptest asserts on it.
    pub fn gen_mismatches(&self) -> u64 {
        self.arena.gen_mismatches()
    }

    /// Live version slots currently allocated in the arena.
    pub fn arena_occupied(&self) -> u64 {
        self.arena.occupied()
    }

    /// Drops every chain. Used between benchmark configurations.
    ///
    /// **Requires quiescence**: no concurrent store access and no live
    /// epoch pins (the old locked-map implementation blocked stragglers on
    /// the shard locks; this one recycles entries in place).
    pub fn clear(&self) {
        // Free everything parked in limbo first.
        {
            let mut limbo = self.limbo.lock();
            while let Some(bin) = limbo.pop_front() {
                for h in &bin.handles {
                    self.arena.free(*h);
                }
            }
        }
        self.limbo_nodes.store(0, Ordering::Relaxed);
        self.limbo_bytes.store(0, Ordering::Relaxed);
        // Free every chain node and reset the entries.
        let n = self.entries.len();
        for idx in 0..n {
            let entry = self.entries.get(idx);
            let mut cur = entry.head.swap(NIL, Ordering::Relaxed);
            while cur != NIL {
                let next = self.arena.read(cur).map(|(_, n)| n).unwrap_or(NIL);
                self.arena.free(cur);
                cur = next;
            }
            entry.versions.store(0, Ordering::Relaxed);
        }
        for shard in &self.shards {
            for bucket in shard.buckets.iter() {
                bucket.store(NIL, Ordering::Relaxed);
            }
        }
        self.entries.bump.store(0, Ordering::Release);
        self.n_keys.store(0, Ordering::Relaxed);
        self.n_versions.store(0, Ordering::Relaxed);
        self.n_uncommitted.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    fn key(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    #[test]
    fn write_commit_read() {
        let store = MvStore::new(4);
        let k = key(1);
        let out = store.write(&k, TxnId(1), Value::Int(7));
        assert!(!out.other_uncommitted);
        assert_eq!(store.read(&k, ReadSpec::LatestCommitted), None);
        assert_eq!(
            store.read(&k, ReadSpec::OwnOrCommitted(TxnId(1))),
            Some(Value::Int(7))
        );
        store.commit_writes(TxnId(1), &[k], Timestamp(10));
        assert_eq!(
            store.read(&k, ReadSpec::LatestCommitted),
            Some(Value::Int(7))
        );
        assert_eq!(
            store.read(&k, ReadSpec::SnapshotBefore(Timestamp(10))),
            None
        );
        assert_eq!(
            store.read(&k, ReadSpec::SnapshotBefore(Timestamp(11))),
            Some(Value::Int(7))
        );
    }

    #[test]
    fn read_visible_filters_delete_tombstones() {
        let store = MvStore::new(2);
        let k = key(7);
        store.load(&k, Value::Int(1));
        assert_eq!(
            store.read_visible(&k, ReadSpec::LatestCommitted),
            Some(Value::Int(1))
        );
        // A committed delete surfaces as a Null version in `read`...
        store.write(&k, TxnId(1), Value::Null);
        store.commit_writes(TxnId(1), &[k], Timestamp(5));
        assert_eq!(store.read(&k, ReadSpec::LatestCommitted), Some(Value::Null));
        // ...which `read_visible` reports as absent.
        assert_eq!(store.read_visible(&k, ReadSpec::LatestCommitted), None);
    }

    #[test]
    fn abort_discards_writes() {
        let store = MvStore::new(2);
        let k = key(2);
        store.write(&k, TxnId(1), Value::Int(1));
        store.abort_writes(TxnId(1), &[k]);
        assert_eq!(store.read(&k, ReadSpec::OwnOrCommitted(TxnId(1))), None);
        assert_eq!(store.stats().versions, 0);
    }

    #[test]
    fn detects_other_uncommitted_writer() {
        let store = MvStore::new(2);
        let k = key(3);
        store.write(&k, TxnId(1), Value::Int(1));
        let out = store.write(&k, TxnId(2), Value::Int(2));
        assert!(out.other_uncommitted);
    }

    #[test]
    fn load_and_stats() {
        let store = MvStore::new(8);
        for i in 0..100 {
            store.load(&key(i), Value::Int(i as i64));
        }
        let stats = store.stats();
        assert_eq!(stats.keys, 100);
        assert_eq!(stats.versions, 100);
        assert_eq!(stats.uncommitted, 0);
        assert_eq!(store.stats_scanned(), stats);
        assert_eq!(
            store.read(&key(42), ReadSpec::LatestCommitted),
            Some(Value::Int(42))
        );
    }

    #[test]
    fn prune_removes_old_versions() {
        let store = MvStore::new(2);
        let k = key(9);
        for i in 1..=5u64 {
            store.write(&k, TxnId(i), Value::Int(i as i64));
            store.commit_writes(TxnId(i), &[k], Timestamp(i * 10));
        }
        let removed = store.prune_before(Timestamp(100));
        assert_eq!(removed, 4);
        assert_eq!(
            store.read(&k, ReadSpec::LatestCommitted),
            Some(Value::Int(5))
        );
        assert_eq!(store.stats(), store.stats_scanned());
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let store = Arc::new(MvStore::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let k = key(t * 1000 + i);
                    let txn = TxnId(t * 1000 + i + 1);
                    store.write(&k, txn, Value::Int(i as i64));
                    store.commit_writes(txn, &[k], Timestamp(i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats().keys, 1000);
        assert_eq!(store.stats().uncommitted, 0);
        assert_eq!(store.stats(), store.stats_scanned());
    }

    #[test]
    fn reader_completes_while_key_latch_held() {
        // The acceptance test for "chain reads take no lock": a reader must
        // finish while another thread sits inside `with_chain_mut` (holding
        // the key's write latch — the only exclusion the store has left).
        let store = Arc::new(MvStore::new(2));
        let k = key(11);
        store.load(&k, Value::Int(1));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let s2 = Arc::clone(&store);
        let holder = std::thread::spawn(move || {
            s2.with_chain_mut(&k, |chain| {
                entered_tx.send(()).unwrap();
                // Park inside the latched section until the reader is done.
                release_rx.recv().unwrap();
                chain.len()
            })
        });
        entered_rx.recv().unwrap();
        // Reader on the SAME key, while its latch is held.
        let value = store.read(&k, ReadSpec::LatestCommitted);
        assert_eq!(value, Some(Value::Int(1)));
        release_tx.send(()).unwrap();
        assert_eq!(holder.join().unwrap(), 1);
    }

    #[test]
    fn retired_versions_reclaim_after_pins_advance() {
        let store = MvStore::new(2);
        let k = key(21);
        for i in 1..=20u64 {
            store.write(&k, TxnId(i), Value::Int(i as i64));
            store.commit_writes(TxnId(i), &[k], Timestamp(i));
        }
        // 20 commits retired 20 uncommitted slots; prune retires 19 more.
        assert_eq!(store.prune_before(Timestamp(100)), 19);
        let (nodes_before, _) = store.limbo_stats();
        assert!(nodes_before > 0);
        // A few reclaim rounds must drain limbo entirely (each round can
        // advance the epoch once, and bins need a two-epoch grace period).
        for _ in 0..8 {
            store.reclaim();
        }
        assert_eq!(store.limbo_stats().0, 0);
        assert_eq!(store.gen_mismatches(), 0);
        // Only the single surviving committed version is still allocated.
        assert_eq!(store.arena_occupied(), 1);
        assert_eq!(store.stats(), store.stats_scanned());
    }

    #[test]
    fn clear_resets_everything() {
        let store = MvStore::new(2);
        for i in 0..50 {
            store.load(&key(i), Value::Int(i as i64));
            store.write(&key(i), TxnId(i + 1), Value::Int(0));
        }
        store.clear();
        assert_eq!(store.stats(), StoreStats::default());
        assert_eq!(store.arena_occupied(), 0);
        assert_eq!(store.read(&key(3), ReadSpec::LatestCommitted), None);
        // The store is fully usable after clear.
        store.load(&key(3), Value::Int(33));
        assert_eq!(
            store.read(&key(3), ReadSpec::LatestCommitted),
            Some(Value::Int(33))
        );
        assert_eq!(store.stats(), store.stats_scanned());
    }
}
