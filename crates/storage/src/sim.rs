//! Simulated coordinator ↔ data-server network.
//!
//! The paper evaluates Tebaldi on a CloudLab cluster where a message between
//! machines takes 0.08–0.16 ms (§4.6). This reproduction runs in a single
//! process, so the shape of contention-driven results does not depend on the
//! network; the experiments that *do* reason about round trips (the latency
//! overhead study of §4.6.5, Table 4.1) can enable this simulated delay to
//! recover the paper's per-round-trip cost structure.
//!
//! The delay is implemented as a spin-wait for sub-millisecond values
//! (sleeping for tens of microseconds is unreliable on most schedulers) and
//! a sleep for larger values.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A configurable network delay injector.
#[derive(Debug)]
pub struct SimNet {
    round_trip_micros: u64,
    trips: AtomicU64,
}

impl SimNet {
    /// A network with the given one-way-equivalent round-trip latency in
    /// microseconds. Zero disables the delay but still counts trips.
    pub fn with_round_trip_micros(micros: u64) -> Self {
        SimNet {
            round_trip_micros: micros,
            trips: AtomicU64::new(0),
        }
    }

    /// A network modelling the paper's intra-datacenter ping (~0.1 ms).
    pub fn datacenter() -> Self {
        SimNet::with_round_trip_micros(100)
    }

    /// A zero-latency network that only counts round trips.
    pub fn counting_only() -> Self {
        SimNet::with_round_trip_micros(0)
    }

    /// Performs one round trip: blocks the caller for the configured delay.
    pub fn round_trip(&self) {
        self.trips.fetch_add(1, Ordering::Relaxed);
        let micros = self.round_trip_micros;
        if micros == 0 {
            return;
        }
        if micros >= 2_000 {
            std::thread::sleep(Duration::from_micros(micros));
            return;
        }
        let deadline = Instant::now() + Duration::from_micros(micros);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    /// Number of round trips performed so far.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Configured round-trip latency.
    pub fn latency(&self) -> Duration {
        Duration::from_micros(self.round_trip_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_trips() {
        let net = SimNet::counting_only();
        for _ in 0..5 {
            net.round_trip();
        }
        assert_eq!(net.trips(), 5);
    }

    #[test]
    fn delay_is_applied() {
        let net = SimNet::with_round_trip_micros(200);
        let start = Instant::now();
        for _ in 0..10 {
            net.round_trip();
        }
        assert!(start.elapsed() >= Duration::from_micros(2_000));
    }

    #[test]
    fn datacenter_profile() {
        let net = SimNet::datacenter();
        assert_eq!(net.latency(), Duration::from_micros(100));
    }
}
