//! Values stored by the multiversion store.
//!
//! Tebaldi supports variable-sized columns and read-modify-write operations
//! (§4.5). Workload rows are either a single integer counter (e.g. the
//! district's `next_order_id`), a fixed small tuple of integers, or an
//! opaque payload. `Value` covers all three without requiring a schema
//! compiler; cloning is cheap (numeric copies or reference-count bumps).

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A stored value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absent value — used to model deletes while keeping version history.
    Null,
    /// A single 64-bit integer (counters, balances in cents, flags).
    Int(i64),
    /// A small tuple of integers (fixed-width multi-column rows).
    Row(Arc<[i64]>),
    /// A string payload (customer data, item names).
    Str(Arc<str>),
    /// An opaque byte payload (filler columns of TPC-C rows). The vendored
    /// `bytes` stub implements the serde traits directly, so no `with`
    /// adapter is needed.
    Bytes(Bytes),
}

impl Value {
    /// Builds a multi-column integer row.
    pub fn row(fields: &[i64]) -> Value {
        Value::Row(Arc::from(fields))
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Builds a `Bytes` value from an owned buffer.
    pub fn bytes(buf: Vec<u8>) -> Value {
        Value::Bytes(Bytes::from(buf))
    }

    /// Returns the integer content of an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the `idx`-th field of a `Row` value (or the sole field of an
    /// `Int` value when `idx == 0`).
    pub fn field(&self, idx: usize) -> Option<i64> {
        match self {
            Value::Int(v) if idx == 0 => Some(*v),
            Value::Row(r) => r.get(idx).copied(),
            _ => None,
        }
    }

    /// Returns a copy of this row with field `idx` replaced by `v`.
    ///
    /// Read-modify-write transactions use this to update a single column.
    pub fn with_field(&self, idx: usize, v: i64) -> Value {
        match self {
            Value::Int(_) if idx == 0 => Value::Int(v),
            Value::Row(r) => {
                let mut fields: Vec<i64> = r.to_vec();
                if idx >= fields.len() {
                    fields.resize(idx + 1, 0);
                }
                fields[idx] = v;
                Value::row(&fields)
            }
            other => {
                // Promoting a non-row value to a row keeps workloads simple
                // when a column is added to an initially scalar row.
                let mut fields = vec![0i64; idx + 1];
                if let Some(base) = other.as_int() {
                    fields[0] = base;
                }
                fields[idx] = v;
                Value::row(&fields)
            }
        }
    }

    /// True when the value represents a deleted row.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory size in bytes, used by GC statistics.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Row(r) => 8 * r.len(),
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::Int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.field(0), Some(42));
        assert_eq!(v.field(1), None);
    }

    #[test]
    fn row_field_access_and_update() {
        let v = Value::row(&[1, 2, 3]);
        assert_eq!(v.field(1), Some(2));
        let v2 = v.with_field(1, 20);
        assert_eq!(v2.field(1), Some(20));
        // original untouched (persistent update)
        assert_eq!(v.field(1), Some(2));
    }

    #[test]
    fn with_field_extends_row() {
        let v = Value::row(&[1]);
        let v2 = v.with_field(3, 9);
        assert_eq!(v2.field(3), Some(9));
        assert_eq!(v2.field(2), Some(0));
    }

    #[test]
    fn with_field_promotes_scalar() {
        let v = Value::Int(5);
        let v2 = v.with_field(2, 7);
        assert_eq!(v2.field(0), Some(5));
        assert_eq!(v2.field(2), Some(7));
    }

    #[test]
    fn null_and_sizes() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert_eq!(Value::row(&[1, 2]).approx_size(), 16);
        assert_eq!(Value::str("abcd").approx_size(), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let v = Value::Bytes(Bytes::from_static(b"hello"));
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
