//! Write-ahead logging.
//!
//! Tebaldi's durability module (§4.5.4) is based on write-ahead logging and
//! two-phase commit. Data servers create *operation logs* for writes during
//! execution and a *precommit log* per participating data server when all
//! CCs pass precommit; a transaction is guaranteed to commit once all its
//! precommit logs are persistent.
//!
//! Tebaldi does not implement its own persistent storage: it outsources
//! persistence to any key-value-ish backend. Here the backend is a
//! [`LogDevice`]: an append-only record sink with a `flush` barrier and a
//! full `read_back`. Two devices are provided: an in-memory device (for
//! tests and for the durability-off configurations) and a file device.

use crate::key::Key;
use crate::types::{Timestamp, TxnId};
use crate::value::Value;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// A single log record.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum LogRecord {
    /// A write operation performed during the execution phase.
    Operation {
        /// Writing transaction.
        txn: TxnId,
        /// Written key.
        key: Key,
        /// Written value.
        value: Value,
    },
    /// Precommit record emitted by one participating data server.
    Precommit {
        /// Committing transaction.
        txn: TxnId,
        /// Number of data servers participating in the transaction.
        participants: u32,
        /// Index of the data server that produced this record.
        shard: u32,
        /// GCP epoch the record belongs to (asynchronous flushing, §4.5.4).
        gcp_epoch: u64,
        /// Ordered writes of this transaction on this shard, used to
        /// reconstruct the latest version of each object during recovery.
        writes: Vec<(Key, Value)>,
    },
    /// Commit notification carrying the transaction's global epoch id and
    /// commit timestamp.
    Commit {
        /// Committed transaction.
        txn: TxnId,
        /// The transaction's global GCP epoch (max over participants).
        global_epoch: u64,
        /// Commit timestamp.
        commit_ts: Timestamp,
        /// Cluster-wide HLC stamp of the commit (`0` = unstamped; see
        /// `Version::hlc`). Recovery re-installs it on the recovered
        /// versions and re-bases the shard clock past the maximum seen.
        hlc: u64,
    },
    /// Marker appended when a GCP epoch has been fully flushed; records with
    /// a larger epoch are discarded by recovery after a crash.
    EpochSeal {
        /// The sealed epoch.
        epoch: u64,
    },
    /// Participant prepare record of the cluster's cross-shard two-phase
    /// commit: local transaction `txn`, acting on behalf of cluster-global
    /// transaction `global`, has passed validation and holds every resource
    /// needed to commit on demand. Always flushed synchronously — the shard
    /// may vote "yes" only once this record is durable. A prepared
    /// transaction with neither a later `Commit` nor an `Abort` record is
    /// *in doubt* and is resolved against the coordinator's decision log
    /// during recovery.
    Prepare {
        /// Local (per-shard) transaction id.
        txn: TxnId,
        /// Cluster-global transaction id assigned by the coordinator.
        global: u64,
        /// Ordered writes of the transaction on this shard.
        writes: Vec<(Key, Value)>,
    },
    /// Abort marker: resolves a `Prepare` during recovery without consulting
    /// the coordinator (and lets diagnostics distinguish an explicit abort
    /// from a crash-induced in-doubt state).
    Abort {
        /// Aborted transaction.
        txn: TxnId,
    },
    /// Coordinator-side decision record of the cross-shard two-phase
    /// commit, appended (and flushed) to the coordinator's own decision log
    /// at the commit point — before any participant is told to commit.
    /// Never appears in a shard's log; shard recovery resolves in-doubt
    /// prepares against the set of these records.
    Decision {
        /// Cluster-global transaction id.
        global: u64,
        /// `true` for commit; abort decisions may be logged for diagnostics
        /// but are implied by absence (presumed abort).
        commit: bool,
        /// The coordinator-chosen HLC decision stamp: every participant
        /// stamps its committed versions with exactly this value, which is
        /// what makes a cross-shard commit atomically visible to snapshot
        /// reads. `0` on abort decisions and reservation markers.
        hlc: u64,
    },
}

/// An append-only log backend.
pub trait LogDevice: Send + Sync {
    /// Appends a record to the device buffer (not necessarily durable yet).
    fn append(&self, record: &LogRecord);
    /// Makes all previously appended records durable.
    fn flush(&self);
    /// Reads every durable record back, in append order.
    fn read_back(&self) -> Vec<LogRecord>;
    /// Number of durable records (diagnostics).
    fn durable_len(&self) -> usize {
        self.read_back().len()
    }
    /// Reads the durable records from index `from` onward, in append order
    /// — the incremental tail a log shipper follows. An index at or past
    /// the durable length yields an empty vector, never an error: the
    /// shipper polls ahead of the flusher all the time.
    fn read_from(&self, from: usize) -> Vec<LogRecord> {
        let mut records = self.read_back();
        if from >= records.len() {
            return Vec::new();
        }
        records.split_off(from)
    }
    /// Truncates the durable log to its first `len` records, discarding any
    /// buffered (unflushed) tail as well. Returns `false` when the device
    /// does not support truncation (the default), `true` on success — a
    /// no-op truncation (`len >= durable_len`) still counts as success.
    /// Used by replication to cut a rejoining primary's divergent suffix:
    /// records past what the surviving quorum replicated must not resurface
    /// on recovery.
    fn truncate_to(&self, _len: usize) -> bool {
        false
    }
}

/// An in-memory log device. "Durable" records survive only as long as the
/// process, which is exactly what the durability-off experiments need; a
/// simulated crash is modelled by dropping the unflushed buffer. An
/// optional flush latency emulates the write barrier of a real device
/// (an NVMe fsync is tens of microseconds), which is what makes group
/// commit measurable: only a flush that takes time lets concurrent
/// transactions pile onto the same barrier.
#[derive(Default)]
pub struct MemLogDevice {
    inner: Mutex<MemLogInner>,
    flush_latency: std::time::Duration,
}

#[derive(Default)]
struct MemLogInner {
    buffered: Vec<LogRecord>,
    durable: Vec<LogRecord>,
}

impl MemLogDevice {
    /// Creates an empty device with instantaneous flushes.
    pub fn new() -> Self {
        MemLogDevice::default()
    }

    /// Creates an empty device whose every flush blocks for `latency`
    /// (outside the buffer lock — appends proceed while a flush "waits on
    /// the hardware", exactly like a real write barrier).
    pub fn with_flush_latency(latency: std::time::Duration) -> Self {
        MemLogDevice {
            inner: Mutex::new(MemLogInner::default()),
            flush_latency: latency,
        }
    }

    /// Simulates a crash: unflushed records are lost.
    pub fn crash(&self) {
        self.inner.lock().buffered.clear();
    }
}

impl LogDevice for MemLogDevice {
    fn append(&self, record: &LogRecord) {
        self.inner.lock().buffered.push(record.clone());
    }

    fn flush(&self) {
        if !self.flush_latency.is_zero() {
            // Spin rather than sleep: OS sleep granularity (~50µs+) would
            // distort the tens-of-microseconds barriers being modelled.
            let start = std::time::Instant::now();
            while start.elapsed() < self.flush_latency {
                std::hint::spin_loop();
            }
        }
        let mut inner = self.inner.lock();
        let buffered = std::mem::take(&mut inner.buffered);
        inner.durable.extend(buffered);
    }

    fn read_back(&self) -> Vec<LogRecord> {
        self.inner.lock().durable.clone()
    }

    fn durable_len(&self) -> usize {
        self.inner.lock().durable.len()
    }

    fn read_from(&self, from: usize) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        match inner.durable.get(from..) {
            Some(tail) => tail.to_vec(),
            None => Vec::new(),
        }
    }

    fn truncate_to(&self, len: usize) -> bool {
        let mut inner = self.inner.lock();
        inner.durable.truncate(len);
        inner.buffered.clear();
        true
    }
}

/// A file-backed log device writing one JSON record per line.
pub struct FileLogDevice {
    writer: Mutex<BufWriter<File>>,
    path: std::path::PathBuf,
}

impl FileLogDevice {
    /// Opens (or creates) the log file at `path`, appending to existing
    /// content.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(FileLogDevice {
            writer: Mutex::new(BufWriter::new(file)),
            path,
        })
    }
}

impl LogDevice for FileLogDevice {
    fn append(&self, record: &LogRecord) {
        let mut writer = self.writer.lock();
        let line = serde_json::to_string(record).expect("log records serialize");
        writeln!(writer, "{line}").expect("log append");
    }

    fn flush(&self) {
        let mut writer = self.writer.lock();
        writer.flush().expect("log flush");
        writer.get_ref().sync_data().ok();
    }

    fn read_back(&self) -> Vec<LogRecord> {
        // Ensure buffered data is visible to the reader.
        self.flush();
        let file = match File::open(&self.path) {
            Ok(f) => f,
            Err(_) => return Vec::new(),
        };
        BufReader::new(file)
            .lines()
            .map_while(Result::ok)
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str(&l).ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    fn op(txn: u64, id: u64) -> LogRecord {
        LogRecord::Operation {
            txn: TxnId(txn),
            key: Key::simple(TableId(0), id),
            value: Value::Int(id as i64),
        }
    }

    #[test]
    fn mem_device_flush_and_crash() {
        let dev = MemLogDevice::new();
        dev.append(&op(1, 1));
        dev.append(&op(1, 2));
        assert_eq!(dev.read_back().len(), 0);
        dev.flush();
        assert_eq!(dev.read_back().len(), 2);
        dev.append(&op(2, 3));
        dev.crash();
        assert_eq!(dev.read_back().len(), 2, "unflushed records are lost");
    }

    #[test]
    fn mem_device_incremental_read_and_truncate() {
        let dev = MemLogDevice::new();
        for i in 0..5 {
            dev.append(&op(1, i));
        }
        dev.flush();
        assert_eq!(dev.durable_len(), 5);
        assert_eq!(dev.read_from(0).len(), 5);
        assert_eq!(dev.read_from(3), vec![op(1, 3), op(1, 4)]);
        assert_eq!(dev.read_from(5), Vec::new());
        assert_eq!(dev.read_from(99), Vec::new());
        // Truncation cuts the durable suffix and any buffered tail.
        dev.append(&op(2, 9));
        assert!(dev.truncate_to(2));
        assert_eq!(dev.read_back(), vec![op(1, 0), op(1, 1)]);
        dev.flush();
        assert_eq!(dev.durable_len(), 2, "buffered tail was discarded too");
        // No-op truncation past the end still succeeds.
        assert!(dev.truncate_to(10));
        assert_eq!(dev.durable_len(), 2);
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tebaldi-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let dev = FileLogDevice::open(&path).unwrap();
        dev.append(&op(1, 1));
        dev.append(&LogRecord::Commit {
            txn: TxnId(1),
            global_epoch: 3,
            commit_ts: Timestamp(7),
            hlc: 0,
        });
        dev.flush();
        let records = dev.read_back();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], op(1, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn precommit_record_roundtrip_serde() {
        let rec = LogRecord::Precommit {
            txn: TxnId(9),
            participants: 3,
            shard: 1,
            gcp_epoch: 12,
            writes: vec![(Key::simple(TableId(2), 5), Value::Int(50))],
        };
        let s = serde_json::to_string(&rec).unwrap();
        let back: LogRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(rec, back);
    }
}
