//! The version arena: a chunked slab of version slots addressed by
//! generation-tagged handles.
//!
//! Version chains are singly-linked lists of arena slots (newest first),
//! linked by atomic packed handles, so readers traverse a chain with plain
//! `Acquire` loads and zero locks. A handle packs a 32-bit slot index with
//! the slot's 32-bit **generation**; the generation is bumped every time a
//! slot is freed, so a stale handle to a recycled slot can never
//! dereference the new occupant (ABA protection). Slots are recycled
//! through a Treiber free list whose head is tagged with the head slot's
//! generation, making the pop CAS immune to the classic ABA race.
//!
//! Slot contents are **immutable while linked**: committing or
//! overwriting a version allocates a replacement slot and splices it into
//! the chain, retiring the old slot to the store's epoch limbo list (see
//! [`crate::ebr`]). That keeps `&Version` references handed to readers
//! valid without any per-field atomics.

use crate::version::Version;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

/// Slots per chunk (2^12 = 4096).
const CHUNK_BITS: u32 = 12;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: u32 = (CHUNK_SIZE as u32) - 1;
/// Maximum chunks: 4096 chunks * 4096 slots = ~16.7M live versions.
const MAX_CHUNKS: usize = 1 << 12;

/// The nil handle, used as the end-of-chain / empty-list marker.
pub const NIL: u64 = u64::MAX;

#[inline]
pub(crate) fn pack(gen: u32, idx: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

#[inline]
pub(crate) fn unpack(handle: u64) -> (u32, u32) {
    ((handle >> 32) as u32, handle as u32)
}

/// One version slot.
///
/// `gen` parity encodes occupancy: even = vacant, odd = occupied. The data
/// cell is written only between popping the slot off the free list (or
/// bump-allocating it) and publishing the odd generation, so a reader that
/// `Acquire`-loads a matching odd generation sees fully initialized data.
pub(crate) struct Slot {
    gen: AtomicU32,
    /// Chain link while occupied (handle of the next-older version, or
    /// [`NIL`]); free-list link while vacant.
    next: AtomicU64,
    data: UnsafeCell<MaybeUninit<Version>>,
}

/// A chunked slab of [`Slot`]s with generation-tagged handles.
pub struct VersionArena {
    /// Two-level spine: chunk pointers, published with `Release` so slot
    /// dereferences need no lock.
    spine: Box<[AtomicPtr<Slot>]>,
    /// Next never-used slot index.
    bump: AtomicU64,
    /// Treiber free-list head: packed (generation, index) of the head slot
    /// or [`NIL`].
    free_head: AtomicU64,
    /// Serializes chunk allocation only.
    grow_lock: Mutex<()>,
    /// Live (occupied) slots.
    occupied: AtomicU64,
    /// Reads that found a generation mismatch. Must stay zero while every
    /// reader holds an epoch pin; the reclamation proptest asserts on it.
    gen_mismatches: AtomicU64,
}

// Slots hold `UnsafeCell` data, but the occupancy protocol above makes
// cross-thread access race-free: data is written only while the slot is
// privately owned by the allocating thread and read only while occupied.
unsafe impl Send for VersionArena {}
unsafe impl Sync for VersionArena {}

impl Default for VersionArena {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionArena {
    pub fn new() -> Self {
        VersionArena {
            spine: (0..MAX_CHUNKS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            bump: AtomicU64::new(0),
            free_head: AtomicU64::new(NIL),
            grow_lock: Mutex::new(()),
            occupied: AtomicU64::new(0),
            gen_mismatches: AtomicU64::new(0),
        }
    }

    #[inline]
    fn slot(&self, idx: u32) -> &Slot {
        let chunk = self.spine[(idx >> CHUNK_BITS) as usize].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null(), "slot index {idx} beyond allocated chunks");
        unsafe { &*chunk.add((idx & CHUNK_MASK) as usize) }
    }

    fn ensure_chunk(&self, chunk_idx: usize) {
        assert!(
            chunk_idx < MAX_CHUNKS,
            "version arena exhausted ({} slots)",
            MAX_CHUNKS * CHUNK_SIZE
        );
        if !self.spine[chunk_idx].load(Ordering::Acquire).is_null() {
            return;
        }
        let _g = self.grow_lock.lock();
        if !self.spine[chunk_idx].load(Ordering::Acquire).is_null() {
            return;
        }
        let chunk: Box<[Slot]> = (0..CHUNK_SIZE)
            .map(|_| Slot {
                gen: AtomicU32::new(0),
                next: AtomicU64::new(NIL),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        let ptr = Box::into_raw(chunk) as *mut Slot;
        self.spine[chunk_idx].store(ptr, Ordering::Release);
    }

    /// Allocates a slot holding `version` and returns its packed handle.
    /// The slot's `next` link is initialized to [`NIL`]; the caller splices
    /// it into a chain.
    pub fn alloc(&self, version: Version) -> u64 {
        self.occupied.fetch_add(1, Ordering::Relaxed);
        // Fast path: recycle from the free list.
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            if head == NIL {
                break;
            }
            let (head_gen, head_idx) = unpack(head);
            let slot = self.slot(head_idx);
            let next = slot.next.load(Ordering::Acquire);
            if self
                .free_head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // The slot is privately ours: its generation is the (even)
            // value the free-list tag carried.
            debug_assert_eq!(slot.gen.load(Ordering::Relaxed), head_gen);
            unsafe { (*slot.data.get()).write(version) };
            slot.next.store(NIL, Ordering::Relaxed);
            let live_gen = head_gen.wrapping_add(1);
            slot.gen.store(live_gen, Ordering::Release);
            return pack(live_gen, head_idx);
        }
        // Slow path: bump-allocate a fresh slot.
        let idx64 = self.bump.fetch_add(1, Ordering::Relaxed);
        assert!(
            idx64 < (MAX_CHUNKS * CHUNK_SIZE) as u64,
            "version arena exhausted"
        );
        let idx = idx64 as u32;
        self.ensure_chunk((idx >> CHUNK_BITS) as usize);
        let slot = self.slot(idx);
        unsafe { (*slot.data.get()).write(version) };
        slot.next.store(NIL, Ordering::Relaxed);
        slot.gen.store(1, Ordering::Release);
        pack(1, idx)
    }

    /// Dereferences `handle`, returning the version and its chain link.
    /// Returns `None` (and counts a mismatch) if the slot's generation no
    /// longer matches — which an epoch-pinned reader must never observe.
    #[inline]
    pub fn read(&self, handle: u64) -> Option<(&Version, u64)> {
        let (gen, idx) = unpack(handle);
        let slot = self.slot(idx);
        if slot.gen.load(Ordering::Acquire) != gen {
            self.gen_mismatches.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let next = slot.next.load(Ordering::Acquire);
        // Safety: the matching odd generation was published with `Release`
        // after the data write, and epoch pinning keeps the slot from
        // being freed and recycled while this reference is live.
        let version = unsafe { (*slot.data.get()).assume_init_ref() };
        Some((version, next))
    }

    /// Updates the chain link of a live slot. Only the (single, per-key
    /// latched) writer calls this.
    #[inline]
    pub fn set_next(&self, handle: u64, next: u64) {
        let (gen, idx) = unpack(handle);
        let slot = self.slot(idx);
        debug_assert_eq!(
            slot.gen.load(Ordering::Relaxed),
            gen,
            "set_next on stale handle"
        );
        slot.next.store(next, Ordering::Release);
    }

    /// Frees a slot: drops the version, bumps the generation (invalidating
    /// every outstanding handle), and pushes the slot on the free list.
    /// The caller must guarantee no reader can still reach the handle —
    /// the store's epoch limbo lists provide that.
    pub fn free(&self, handle: u64) {
        let (gen, idx) = unpack(handle);
        let slot = self.slot(idx);
        assert_eq!(
            slot.gen.load(Ordering::Relaxed),
            gen,
            "double free or stale handle"
        );
        unsafe { (*slot.data.get()).assume_init_drop() };
        let vacant_gen = gen.wrapping_add(1);
        slot.gen.store(vacant_gen, Ordering::Release);
        let tagged = pack(vacant_gen, idx);
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            slot.next.store(head, Ordering::Relaxed);
            if self
                .free_head
                .compare_exchange(head, tagged, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        self.occupied.fetch_sub(1, Ordering::Relaxed);
    }

    /// Live slot count.
    pub fn occupied(&self) -> u64 {
        self.occupied.load(Ordering::Relaxed)
    }

    /// Number of generation-mismatched dereferences observed (must be zero
    /// under correct epoch pinning).
    pub fn gen_mismatches(&self) -> u64 {
        self.gen_mismatches.load(Ordering::Relaxed)
    }
}

impl Drop for VersionArena {
    fn drop(&mut self) {
        let used = self
            .bump
            .load(Ordering::Relaxed)
            .min((MAX_CHUNKS * CHUNK_SIZE) as u64);
        for chunk_idx in 0..MAX_CHUNKS {
            let ptr = self.spine[chunk_idx].load(Ordering::Relaxed);
            if ptr.is_null() {
                continue;
            }
            let base = (chunk_idx << CHUNK_BITS) as u64;
            let in_use = used.saturating_sub(base).min(CHUNK_SIZE as u64) as usize;
            // Drop any still-occupied versions (odd generation).
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr, CHUNK_SIZE) };
            for slot in chunk.iter_mut().take(in_use) {
                if slot.gen.load(Ordering::Relaxed) & 1 == 1 {
                    unsafe { (*slot.data.get()).assume_init_drop() };
                }
            }
            drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, CHUNK_SIZE)) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Timestamp, TxnId};
    use crate::value::Value;
    use crate::version::{VersionId, VersionState};

    fn ver(id: u64) -> Version {
        Version {
            id: VersionId(id),
            writer: TxnId(id),
            value: Value::Int(id as i64),
            state: VersionState::Committed,
            commit_ts: Some(Timestamp(id)),
            order_ts: None,
            hlc: 0,
        }
    }

    #[test]
    fn alloc_read_roundtrip() {
        let a = VersionArena::new();
        let h = a.alloc(ver(7));
        let (v, next) = a.read(h).unwrap();
        assert_eq!(v.id, VersionId(7));
        assert_eq!(next, NIL);
        assert_eq!(a.occupied(), 1);
    }

    #[test]
    fn freed_handle_is_invalidated() {
        let a = VersionArena::new();
        let h = a.alloc(ver(1));
        a.free(h);
        assert!(a.read(h).is_none());
        assert_eq!(a.gen_mismatches(), 1);
        // The recycled slot gets a fresh generation; the stale handle
        // still does not resolve.
        let h2 = a.alloc(ver(2));
        assert_ne!(h, h2);
        assert!(a.read(h).is_none());
        assert_eq!(a.read(h2).unwrap().0.id, VersionId(2));
        assert_eq!(a.occupied(), 1);
    }

    #[test]
    fn chain_links_traverse() {
        let a = VersionArena::new();
        let old = a.alloc(ver(1));
        let new = a.alloc(ver(2));
        a.set_next(new, old);
        let (v2, next) = a.read(new).unwrap();
        assert_eq!(v2.id, VersionId(2));
        let (v1, end) = a.read(next).unwrap();
        assert_eq!(v1.id, VersionId(1));
        assert_eq!(end, NIL);
    }

    #[test]
    fn bump_crosses_chunks() {
        let a = VersionArena::new();
        let n = CHUNK_SIZE + 10;
        let handles: Vec<u64> = (0..n as u64).map(|i| a.alloc(ver(i))).collect();
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(a.read(h).unwrap().0.id, VersionId(i as u64));
        }
        assert_eq!(a.occupied(), n as u64);
    }

    #[test]
    fn free_list_recycles_lifo() {
        let a = VersionArena::new();
        let h1 = a.alloc(ver(1));
        let h2 = a.alloc(ver(2));
        a.free(h1);
        a.free(h2);
        let h3 = a.alloc(ver(3));
        let h4 = a.alloc(ver(4));
        // LIFO: h3 reuses h2's slot, h4 reuses h1's slot.
        assert_eq!(unpack(h3).1, unpack(h2).1);
        assert_eq!(unpack(h4).1, unpack(h1).1);
        assert_eq!(a.bump.load(Ordering::Relaxed), 2);
    }
}
