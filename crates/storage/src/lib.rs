//! # tebaldi-storage
//!
//! The storage module of the Tebaldi reproduction.
//!
//! Tebaldi (SIGMOD 2017, "Bringing Modular Concurrency Control to the Next
//! Level") separates its concurrency-control logic from storage management:
//! the storage module keeps **all committed and uncommitted versions** of
//! every data object so that both single-versioned and multi-versioned
//! concurrency controls can be federated on top of it (§4.3 of the paper).
//!
//! This crate provides:
//!
//! * [`MvStore`] — a sharded, multiversion key-value store ("data servers"
//!   in the paper's cluster architecture are modelled as partitions/shards).
//! * [`schema`] — a table registry used by workloads and by runtime
//!   pipelining's static analysis.
//! * [`wal`] / [`durability`] — write-ahead operation/precommit logging and
//!   the asynchronous-flushing protocol with global-checkpoint (GCP) epochs
//!   of §4.5.4.
//! * [`recovery`] — the three-step recovery protocol of §4.5.4.
//! * [`gc`] — the epoch-based garbage collection of §4.5.3.
//! * [`sim`] — an optional simulated network delay standing in for the
//!   datacenter round trips of the paper's CloudLab testbed.

pub mod arena;
pub mod codec;
pub mod ebr;
pub mod gc;
pub mod key;
pub mod mvstore;
pub mod recovery;
pub mod schema;
pub mod sim;
pub mod types;
pub mod value;
pub mod version;
pub mod wal;

pub mod durability;

pub use key::Key;
pub use mvstore::{
    ChainRef, ChainWrite, MvStore, ReadSpec, SnapshotRead, StoreStats, WriteOutcome,
};
pub use schema::{Schema, TableDef, TableId};
pub use types::{GroupId, NodeId, Timestamp, TxnId, TxnTypeId};
pub use value::Value;
pub use version::{ChainRead, Version, VersionChain, VersionId, VersionState};
