//! A small self-describing binary codec for keys, values, and the
//! primitive integers the cluster's wire protocol and procedure-argument
//! encoding are built from.
//!
//! The vendored `serde`/`serde_json` stubs serialize to JSON text, which is
//! fine for the WAL's file device but too loose for a network boundary: a
//! length-prefixed binary framing needs exact byte budgets and must reject
//! truncated or hostile input without panicking. Everything here returns
//! [`CodecError`] instead of panicking, and every variable-length field is
//! bounded by [`MAX_FIELD_LEN`] so a garbage length prefix cannot trigger a
//! huge allocation.

use crate::key::Key;
use crate::schema::TableId;
use crate::value::Value;
use bytes::Bytes;
use std::sync::Arc;

/// Upper bound on any single variable-length field (strings, byte blobs,
/// row/field counts). Workload rows are tiny; anything past this is a
/// corrupt or hostile frame.
pub const MAX_FIELD_LEN: usize = 1 << 24;

/// Why a decode failed. Decoding never panics: a malformed buffer is a
/// protocol error the caller turns into a dropped connection or an aborted
/// transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced content.
    Truncated,
    /// A tag or length field held an impossible value.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type CodecResult<T> = Result<T, CodecError>;

/// An append-only byte buffer with little-endian primitive writers.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a [`Key`] (table id + packed row id).
    pub fn put_key(&mut self, key: Key) {
        self.put_u32(key.table.0);
        self.put_u128(key.row);
    }

    /// Appends a [`Value`] with a one-byte variant tag.
    pub fn put_value(&mut self, value: &Value) {
        match value {
            Value::Null => self.put_u8(0),
            Value::Int(v) => {
                self.put_u8(1);
                self.put_i64(*v);
            }
            Value::Row(fields) => {
                self.put_u8(2);
                self.put_u32(fields.len() as u32);
                for &f in fields.iter() {
                    self.put_i64(f);
                }
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
            Value::Bytes(b) => {
                self.put_u8(4);
                self.put_bytes(b);
            }
        }
    }
}

/// A cursor over an encoded buffer with bounds-checked readers.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed (trailing garbage detection).
    pub fn expect_end(&self) -> CodecResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> CodecResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool")),
        }
    }

    /// Reads a length prefix, bounded by [`MAX_FIELD_LEN`] *and* by the
    /// bytes actually remaining, so garbage lengths can neither allocate
    /// wildly nor run past the buffer.
    pub fn len_prefix(&mut self) -> CodecResult<usize> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::Malformed("length prefix too large"));
        }
        Ok(len)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> CodecResult<&'a [u8]> {
        let len = self.len_prefix()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Malformed("utf-8 string"))
    }

    /// Reads a [`Key`].
    pub fn key(&mut self) -> CodecResult<Key> {
        let table = TableId(self.u32()?);
        let row = self.u128()?;
        Ok(Key::new(table, row))
    }

    /// Reads a [`Value`].
    pub fn value(&mut self) -> CodecResult<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => {
                let len = self.len_prefix()?;
                // Each field costs 8 bytes: bound the allocation by what the
                // buffer can actually hold.
                if self.remaining() < len * 8 {
                    return Err(CodecError::Truncated);
                }
                let mut fields = Vec::with_capacity(len);
                for _ in 0..len {
                    fields.push(self.i64()?);
                }
                Ok(Value::Row(Arc::from(fields.as_slice())))
            }
            3 => Ok(Value::Str(Arc::from(self.str()?.as_str()))),
            4 => Ok(Value::Bytes(Bytes::from(self.bytes()?.to_vec()))),
            _ => Err(CodecError::Malformed("value tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_str("hello");
        w.put_key(Key::composite(TableId(9), &[1, 2, 3]));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.key().unwrap(), Key::composite(TableId(9), &[1, 2, 3]));
        r.expect_end().unwrap();
    }

    #[test]
    fn values_roundtrip() {
        let values = [
            Value::Null,
            Value::Int(-7),
            Value::row(&[1, -2, 3]),
            Value::str("tebaldi"),
            Value::Bytes(Bytes::from_static(b"\x00\xff\x01")),
        ];
        for value in &values {
            let mut w = ByteWriter::new();
            w.put_value(value);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&r.value().unwrap(), value);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn truncated_and_malformed_inputs_error_cleanly() {
        // Truncated integer.
        assert_eq!(ByteReader::new(&[1, 2]).u32(), Err(CodecError::Truncated));
        // Huge length prefix must not allocate.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).bytes().is_err());
        // A row claiming more fields than the buffer holds.
        let mut w = ByteWriter::new();
        w.put_u8(2);
        w.put_u32(1_000_000);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).value(), Err(CodecError::Truncated));
        // Unknown value tag.
        assert!(matches!(
            ByteReader::new(&[9]).value(),
            Err(CodecError::Malformed(_))
        ));
        // Invalid UTF-8.
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).str().is_err());
        // Trailing garbage.
        let r = ByteReader::new(&[0]);
        assert!(r.expect_end().is_err());
    }
}
