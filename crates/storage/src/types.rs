//! Core identifier and timestamp types shared by every crate in the
//! workspace.
//!
//! They live in the storage crate because it is the lowest layer of the
//! stack; the concurrency-control crate and the engine re-export them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A globally unique transaction identifier.
///
/// Transaction ids are assigned by the engine's transaction coordinator when
/// the transaction starts and never reused. Id 0 is reserved for the
/// "initial load" pseudo-transaction that populates the database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The pseudo transaction that installs initially loaded data.
    pub const BOOTSTRAP: TxnId = TxnId(0);

    /// Returns true for the bootstrap/loader pseudo transaction.
    pub fn is_bootstrap(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A static transaction *type* (e.g. TPC-C `new_order`).
///
/// The automatic-configuration algorithm partitions transactions by type
/// (§5.1), so types are first-class identifiers throughout the stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnTypeId(pub u32);

impl fmt::Debug for TxnTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ty{}", self.0)
    }
}

/// Identifier of a *leaf group* of the CC tree: every transaction instance
/// is assigned to exactly one leaf group (possibly through a
/// partition-by-instance function, §5.4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Identifier of a node of the CC tree (both leaf and inner nodes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A logical timestamp drawn from a monotonically increasing oracle.
///
/// Commit timestamps, snapshot-isolation start timestamps, and TSO
/// serialization timestamps all use this type. Value 0 means "the beginning
/// of time" (initial load).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Timestamp of the initial database load.
    pub const ZERO: Timestamp = Timestamp(0);
    /// A timestamp greater than any the oracle will hand out.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Next timestamp (saturating).
    pub fn next(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

// Lets maps keyed by the id newtypes serialize as JSON objects, matching
// serde's integer-keyed-map stringification.
macro_rules! impl_json_key_newtype {
    ($($t:ident),*) => {$(
        impl serde::JsonKey for $t {
            fn to_key(&self) -> String {
                self.0.to_string()
            }

            fn from_key(s: &str) -> Result<Self, serde::DeError> {
                s.parse()
                    .map($t)
                    .map_err(|_| serde::DeError::msg(format!(
                        concat!("bad ", stringify!($t), " key {:?}"), s
                    )))
            }
        }
    )*};
}
impl_json_key_newtype!(TxnId, TxnTypeId, GroupId, NodeId, Timestamp);

/// A simple monotone id/timestamp generator backed by an atomic counter.
///
/// Used for transaction ids, commit timestamps and GC epochs. The paper uses
/// a dedicated timestamp-server machine; inside a single process an atomic
/// counter provides the same total order.
#[derive(Debug)]
pub struct Sequence {
    next: AtomicU64,
}

impl Sequence {
    /// Creates a sequence whose first issued value is `start`.
    pub fn starting_at(start: u64) -> Self {
        Sequence {
            next: AtomicU64::new(start),
        }
    }

    /// Issues the next value.
    pub fn issue(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the value that would be issued next, without consuming it.
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Advances the sequence so that the next issued value is at least
    /// `floor`. Used by recovery to avoid reusing ids found in the log.
    pub fn advance_to(&self, floor: u64) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur < floor {
            match self
                .next
                .compare_exchange(cur, floor, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Default for Sequence {
    fn default() -> Self {
        Sequence::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_bootstrap() {
        assert!(TxnId::BOOTSTRAP.is_bootstrap());
        assert!(!TxnId(7).is_bootstrap());
        assert_eq!(format!("{}", TxnId(7)), "T7");
    }

    #[test]
    fn timestamp_ordering_and_next() {
        assert!(Timestamp(3) < Timestamp(4));
        assert_eq!(Timestamp(3).next(), Timestamp(4));
        assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
        assert!(Timestamp::ZERO < Timestamp::MAX);
    }

    #[test]
    fn sequence_is_monotone() {
        let s = Sequence::default();
        let a = s.issue();
        let b = s.issue();
        assert!(b > a);
        s.advance_to(100);
        assert!(s.issue() >= 100);
        // advance_to never goes backwards
        s.advance_to(5);
        assert!(s.issue() >= 101);
    }

    #[test]
    fn sequence_concurrent_unique() {
        use std::sync::Arc;
        let s = Arc::new(Sequence::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| s.issue()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "issued ids must be unique");
    }
}
