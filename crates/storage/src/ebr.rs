//! Epoch-based reclamation for the lock-free version store.
//!
//! Readers traverse version chains without taking any lock, so a version
//! slot can only be reused once every thread that might still hold a
//! reference into the chain has moved on. This module provides the classic
//! epoch scheme (the shape of frankensqlite's EBR and crossbeam-epoch):
//!
//! * A process-global epoch counter, advanced opportunistically.
//! * Per-thread **pins**: a thread announces the epoch it observed before
//!   touching shared chain memory and clears the announcement when done.
//!   Pins are re-entrant (an outer guard makes inner pins free), so the
//!   transaction layer can pin once per transaction while every individual
//!   store operation stays safe on its own.
//! * A rule for reclaiming retired garbage: a node retired in epoch `e`
//!   may be freed once the global epoch has reached `e + 2` **and** every
//!   currently pinned thread has announced an epoch `>= e + 2`. Unlinking
//!   happens before retiring, and the global epoch only advances when all
//!   pinned threads have observed the current epoch, so a thread pinned
//!   two epochs later can no longer reach the node.
//!
//! The store keeps the per-epoch limbo lists (retired slot handles); this
//! module only tracks epochs and pins.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum number of threads that can hold a pin slot simultaneously.
/// Slots are released when a thread exits, so this bounds concurrent
/// threads, not total threads over the process lifetime.
const MAX_THREADS: usize = 512;

/// Slot states below the first real epoch.
const SLOT_FREE: u64 = 0;
const SLOT_UNPINNED: u64 = 1;
/// Epochs start here so they never collide with the sentinels above.
const FIRST_EPOCH: u64 = 2;

/// One per-thread announcement cell, padded to its own cache line so pin
/// and unpin stores never false-share.
#[repr(align(64))]
struct PinSlot {
    /// `SLOT_FREE`, `SLOT_UNPINNED`, or the pinned epoch (`>= FIRST_EPOCH`).
    state: AtomicU64,
}

/// The process-global epoch domain.
pub struct EbrDomain {
    epoch: AtomicU64,
    slots: Box<[PinSlot]>,
}

impl EbrDomain {
    fn new() -> Self {
        EbrDomain {
            epoch: AtomicU64::new(FIRST_EPOCH),
            slots: (0..MAX_THREADS)
                .map(|_| PinSlot {
                    state: AtomicU64::new(SLOT_FREE),
                })
                .collect(),
        }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The smallest epoch any pinned thread has announced, or `None` when
    /// no thread is pinned.
    pub fn min_pin(&self) -> Option<u64> {
        let mut min = None;
        for slot in self.slots.iter() {
            let s = slot.state.load(Ordering::SeqCst);
            if s >= FIRST_EPOCH && min.is_none_or(|m| s < m) {
                min = Some(s);
            }
        }
        min
    }

    /// Attempts to advance the global epoch by one. Succeeds only when
    /// every pinned thread has announced the current epoch (the invariant
    /// the reclamation rule relies on). Returns the epoch now current.
    pub fn try_advance(&self) -> u64 {
        let e = self.epoch.load(Ordering::SeqCst);
        for slot in self.slots.iter() {
            let s = slot.state.load(Ordering::SeqCst);
            if s >= FIRST_EPOCH && s != e {
                return e;
            }
        }
        match self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => e + 1,
            Err(now) => now,
        }
    }

    /// True when a node retired in `retire_epoch` can be reclaimed: both
    /// the global epoch and every pinned thread are at least two epochs
    /// past it.
    pub fn can_reclaim(&self, retire_epoch: u64) -> bool {
        if self.epoch() < retire_epoch + 2 {
            return false;
        }
        match self.min_pin() {
            Some(min) => min >= retire_epoch + 2,
            None => true,
        }
    }

    fn claim_slot(&self) -> usize {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(SLOT_FREE, SLOT_UNPINNED, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return i;
            }
        }
        panic!("EBR pin-slot table exhausted ({MAX_THREADS} concurrent threads)");
    }
}

/// The process-global domain. All stores in the process share it; pins are
/// per-thread, not per-store, so one announcement protects every arena.
pub fn domain() -> &'static EbrDomain {
    static DOMAIN: OnceLock<EbrDomain> = OnceLock::new();
    DOMAIN.get_or_init(EbrDomain::new)
}

struct ThreadSlot {
    idx: usize,
    nested: Cell<usize>,
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        domain().slots[self.idx]
            .state
            .store(SLOT_FREE, Ordering::SeqCst);
    }
}

thread_local! {
    static THREAD_SLOT: ThreadSlot = ThreadSlot {
        idx: domain().claim_slot(),
        nested: Cell::new(0),
    };
}

/// An active pin. While any guard is alive on a thread, no node retired
/// from now on can be reclaimed out from under that thread. Guards nest:
/// only the outermost pays the announcement stores.
pub struct PinGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Pins the current thread to the global epoch. Cheap when already pinned.
pub fn pin() -> PinGuard {
    THREAD_SLOT.with(|ts| {
        let n = ts.nested.get();
        ts.nested.set(n + 1);
        if n == 0 {
            let slot = &domain().slots[ts.idx];
            // Announce the epoch we observed; re-check afterwards so a
            // concurrent advance cannot leave us announcing a stale epoch
            // without the advancer having seen our announcement.
            loop {
                let e = domain().epoch.load(Ordering::SeqCst);
                slot.state.store(e, Ordering::SeqCst);
                if domain().epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
    });
    PinGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        // The thread-local may already be gone during thread teardown; its
        // own destructor released the slot in that case.
        let _ = THREAD_SLOT.try_with(|ts| {
            let n = ts.nested.get();
            ts.nested.set(n - 1);
            if n == 1 {
                domain().slots[ts.idx]
                    .state
                    .store(SLOT_UNPINNED, Ordering::SeqCst);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_blocks_advance_driven_reclaim() {
        let d = domain();
        let guard = pin();
        let e = d.epoch();
        // While pinned at e, garbage retired at e can never satisfy the
        // two-epoch rule.
        assert!(!d.can_reclaim(e));
        drop(guard);
        // Unpinned: advancing twice makes epoch-e garbage reclaimable
        // (other tests may hold pins concurrently, so only assert when the
        // advance actually happened).
        let _ = d.try_advance();
        let now = d.try_advance();
        if now >= e + 2 && d.min_pin().is_none_or(|m| m >= e + 2) {
            assert!(d.can_reclaim(e));
        }
    }

    #[test]
    fn nested_pins_keep_announcement() {
        let outer = pin();
        let announced = THREAD_SLOT.with(|ts| domain().slots[ts.idx].state.load(Ordering::SeqCst));
        assert!(announced >= FIRST_EPOCH);
        {
            let _inner = pin();
        }
        // Dropping the inner guard must not clear the announcement.
        let still = THREAD_SLOT.with(|ts| domain().slots[ts.idx].state.load(Ordering::SeqCst));
        assert_eq!(still, announced);
        drop(outer);
        let after = THREAD_SLOT.with(|ts| domain().slots[ts.idx].state.load(Ordering::SeqCst));
        assert_eq!(after, SLOT_UNPINNED);
    }
}
