//! Garbage collection of stale versions (§4.5.3).
//!
//! Logically a write can be collected when every concurrency control agrees
//! it will never be read again. Tebaldi processes records in batches within
//! a *GC epoch*: every transaction is tagged with the current epoch; when
//! all transactions of an epoch have finished, the GC manager asks all CC
//! mechanisms to confirm that no ongoing or future transaction can be
//! ordered before the epoch's transactions, and then prunes every version
//! the epoch made stale.
//!
//! The CC mechanisms participate through the [`GcParticipant`] trait: each
//! returns a *low watermark* timestamp below which it will never order a new
//! transaction. The collectable horizon is the minimum watermark.

use crate::mvstore::MvStore;
use crate::types::{Timestamp, TxnId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A party that must confirm a GC horizon before versions are pruned.
pub trait GcParticipant: Send + Sync {
    /// The smallest timestamp this participant may still need to read at or
    /// after. Versions committed strictly before the returned timestamp
    /// (except the latest committed one per key) may be pruned.
    fn low_watermark(&self) -> Timestamp;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "cc"
    }
}

/// Summary of one collection cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// The horizon that was applied.
    pub horizon: Timestamp,
    /// Number of versions removed.
    pub removed: usize,
    /// Number of epochs retired by this cycle.
    pub epochs_retired: u64,
}

/// The garbage-collection manager.
pub struct GcManager {
    current_epoch: AtomicU64,
    /// epoch -> number of in-flight transactions tagged with it.
    active: Mutex<HashMap<u64, u64>>,
    /// epoch -> largest commit timestamp observed in it.
    epoch_high_ts: Mutex<HashMap<u64, Timestamp>>,
    participants: Mutex<Vec<Arc<dyn GcParticipant>>>,
    retired_epochs: AtomicU64,
}

impl Default for GcManager {
    fn default() -> Self {
        GcManager::new()
    }
}

impl std::fmt::Debug for GcManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcManager")
            .field("current_epoch", &self.current_epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl GcManager {
    /// Creates a manager starting at epoch 1.
    pub fn new() -> Self {
        GcManager {
            current_epoch: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
            epoch_high_ts: Mutex::new(HashMap::new()),
            participants: Mutex::new(Vec::new()),
            retired_epochs: AtomicU64::new(0),
        }
    }

    /// Registers a CC mechanism (or any other component) whose watermark
    /// bounds collection.
    pub fn register_participant(&self, p: Arc<dyn GcParticipant>) {
        self.participants.lock().push(p);
    }

    /// Removes all registered participants (used when the CC tree is
    /// rebuilt during reconfiguration).
    pub fn clear_participants(&self) {
        self.participants.lock().clear();
    }

    /// The current GC epoch id.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch.load(Ordering::Relaxed)
    }

    /// Tags a starting transaction with the current epoch. Returns the
    /// epoch id, which must be passed back to [`GcManager::transaction_finished`].
    pub fn transaction_started(&self, _txn: TxnId) -> u64 {
        let epoch = self.current_epoch();
        *self.active.lock().entry(epoch).or_insert(0) += 1;
        epoch
    }

    /// Records that a transaction tagged with `epoch` finished (committed or
    /// aborted) with the given commit timestamp (if committed).
    pub fn transaction_finished(&self, epoch: u64, commit_ts: Option<Timestamp>) {
        let mut active = self.active.lock();
        if let Some(count) = active.get_mut(&epoch) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                active.remove(&epoch);
            }
        }
        drop(active);
        if let Some(ts) = commit_ts {
            let mut high = self.epoch_high_ts.lock();
            let entry = high.entry(epoch).or_insert(Timestamp::ZERO);
            if ts > *entry {
                *entry = ts;
            }
        }
    }

    /// Advances to a new epoch; transactions started afterwards belong to
    /// the new epoch. Typically driven by a periodic timer in the engine.
    pub fn advance_epoch(&self) -> u64 {
        self.current_epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The oldest epoch that still has in-flight transactions, if any.
    pub fn oldest_active_epoch(&self) -> Option<u64> {
        self.active.lock().keys().min().copied()
    }

    /// Attempts one collection cycle on `store`.
    ///
    /// The collectable horizon is the minimum of (a) every participant's low
    /// watermark and (b) the highest commit timestamp of fully-retired
    /// epochs; when no epoch has fully retired nothing is collected.
    pub fn collect(&self, store: &MvStore) -> GcReport {
        let oldest_active = self.oldest_active_epoch().unwrap_or(u64::MAX);
        let mut high = self.epoch_high_ts.lock();
        let mut retired_horizon = Timestamp::ZERO;
        let mut retired_count = 0u64;
        let retired: Vec<u64> = high
            .keys()
            .copied()
            .filter(|e| *e < oldest_active && *e < self.current_epoch())
            .collect();
        for epoch in retired {
            if let Some(ts) = high.remove(&epoch) {
                if ts > retired_horizon {
                    retired_horizon = ts;
                }
            }
            retired_count += 1;
        }
        drop(high);

        if retired_count == 0 || retired_horizon == Timestamp::ZERO {
            return GcReport::default();
        }

        let mut horizon = retired_horizon;
        for participant in self.participants.lock().iter() {
            let wm = participant.low_watermark();
            if wm < horizon {
                horizon = wm;
            }
        }
        if horizon == Timestamp::ZERO {
            return GcReport::default();
        }

        let removed = store.prune_before(horizon);
        self.retired_epochs
            .fetch_add(retired_count, Ordering::Relaxed);
        GcReport {
            horizon,
            removed,
            epochs_retired: retired_count,
        }
    }

    /// Total number of epochs retired so far.
    pub fn retired_epochs(&self) -> u64 {
        self.retired_epochs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::mvstore::ReadSpec;
    use crate::schema::TableId;
    use crate::value::Value;

    struct FixedWatermark(Timestamp);
    impl GcParticipant for FixedWatermark {
        fn low_watermark(&self) -> Timestamp {
            self.0
        }
    }

    fn k(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    fn committed_write(store: &MvStore, txn: u64, id: u64, val: i64, ts: u64) {
        store.write(&k(id), TxnId(txn), Value::Int(val));
        store.commit_writes(TxnId(txn), &[k(id)], Timestamp(ts));
    }

    #[test]
    fn collects_only_retired_epochs() {
        let store = MvStore::new(2);
        let gc = GcManager::new();

        let e1 = gc.transaction_started(TxnId(1));
        committed_write(&store, 1, 1, 10, 10);
        gc.transaction_finished(e1, Some(Timestamp(10)));

        let e2 = gc.transaction_started(TxnId(2));
        committed_write(&store, 2, 1, 20, 20);
        // Epoch not advanced yet: nothing retires.
        let report = gc.collect(&store);
        assert_eq!(report.removed, 0);

        gc.advance_epoch();
        gc.transaction_finished(e2, Some(Timestamp(20)));
        let report = gc.collect(&store);
        assert!(report.epochs_retired >= 1);
        assert_eq!(report.removed, 1, "old version of key 1 collected");
        assert_eq!(
            store.read(&k(1), ReadSpec::LatestCommitted),
            Some(Value::Int(20))
        );
    }

    #[test]
    fn participant_watermark_bounds_collection() {
        let store = MvStore::new(2);
        let gc = GcManager::new();
        gc.register_participant(Arc::new(FixedWatermark(Timestamp(5))));

        let e = gc.transaction_started(TxnId(1));
        committed_write(&store, 1, 1, 10, 10);
        committed_write(&store, 1, 1, 11, 11);
        gc.transaction_finished(e, Some(Timestamp(11)));
        gc.advance_epoch();

        // Participant says it may still read at ts 5, so only versions below
        // 5 may go; none exist, so nothing is removed.
        let report = gc.collect(&store);
        assert_eq!(report.removed, 0);
        assert_eq!(report.horizon, Timestamp(5));
    }

    #[test]
    fn active_transactions_block_their_epoch() {
        let gc = GcManager::new();
        let e = gc.transaction_started(TxnId(1));
        assert_eq!(gc.oldest_active_epoch(), Some(e));
        gc.transaction_finished(e, None);
        assert_eq!(gc.oldest_active_epoch(), None);
    }
}
