//! Garbage collection of stale versions (§4.5.3).
//!
//! Logically a write can be collected when every concurrency control agrees
//! it will never be read again. Tebaldi processes records in batches within
//! a *GC epoch*: every transaction is tagged with the current epoch; when
//! all transactions of an epoch have finished, the GC manager asks all CC
//! mechanisms to confirm that no ongoing or future transaction can be
//! ordered before the epoch's transactions, and then prunes every version
//! the epoch made stale.
//!
//! The CC mechanisms participate through the [`GcParticipant`] trait: each
//! returns a *low watermark* timestamp below which it will never order a new
//! transaction. The collectable horizon is the minimum watermark.
//!
//! Since the main-memory rework, epoch tracking is a fixed ring of atomic
//! counters instead of mutex-guarded hash maps: [`GcManager::transaction_started`]
//! and [`GcManager::transaction_finished`] are two atomic RMWs on the
//! transaction fast path, with no lock and no allocation. Note the split of
//! responsibilities with [`crate::ebr`]:
//!
//! * this manager decides **logical** collectability — which committed
//!   versions no mechanism will ever read again (participant watermarks and
//!   fully-retired GC epochs bound the prune horizon);
//! * the store's epoch-based reclamation decides **physical** reuse — a
//!   pruned version parks on a limbo list until every pinned reader thread
//!   has moved two reclamation epochs past it.

use crate::mvstore::MvStore;
use crate::types::{Timestamp, TxnId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A party that must confirm a GC horizon before versions are pruned.
pub trait GcParticipant: Send + Sync {
    /// The smallest timestamp this participant may still need to read at or
    /// after. Versions committed strictly before the returned timestamp
    /// (except the latest committed one per key) may be pruned.
    fn low_watermark(&self) -> Timestamp;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "cc"
    }
}

/// Summary of one collection cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// The horizon that was applied.
    pub horizon: Timestamp,
    /// Number of versions removed (exact: counted by the per-chain prune,
    /// not re-derived from before/after stats).
    pub removed: usize,
    /// Number of epochs retired by this cycle.
    pub epochs_retired: u64,
    /// Number of retired version slots physically freed by this cycle's
    /// reclamation sweep (may include slots pruned in earlier cycles whose
    /// grace period only now expired).
    pub reclaimed: usize,
}

/// Ring capacity: the maximum distance `current_epoch` may run ahead of the
/// oldest un-retired epoch. Epochs advance on a timer (and once per GC
/// cycle), so thousands of epochs of lag means collection has not run for
/// hours — [`GcManager::advance_epoch`] asserts rather than silently
/// aliasing ring slots.
const EPOCH_RING: usize = 4096;

/// One epoch's slot in the ring (indexed by `epoch % EPOCH_RING`).
struct EpochSlot {
    /// In-flight transactions tagged with this epoch.
    active: AtomicU64,
    /// Largest commit timestamp observed in this epoch (0 = none).
    high_ts: AtomicU64,
}

/// The garbage-collection manager.
pub struct GcManager {
    current_epoch: AtomicU64,
    /// Oldest epoch not yet retired by [`GcManager::collect`].
    floor: AtomicU64,
    ring: Box<[EpochSlot]>,
    /// Serializes collectors (floor advance + slot reset must be atomic
    /// with respect to each other; the transaction fast path never takes
    /// this).
    collect_lock: Mutex<()>,
    participants: Mutex<Vec<Arc<dyn GcParticipant>>>,
    retired_epochs: AtomicU64,
}

impl Default for GcManager {
    fn default() -> Self {
        GcManager::new()
    }
}

impl std::fmt::Debug for GcManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcManager")
            .field("current_epoch", &self.current_epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl GcManager {
    /// Creates a manager starting at epoch 1.
    pub fn new() -> Self {
        GcManager {
            current_epoch: AtomicU64::new(1),
            floor: AtomicU64::new(1),
            ring: (0..EPOCH_RING)
                .map(|_| EpochSlot {
                    active: AtomicU64::new(0),
                    high_ts: AtomicU64::new(0),
                })
                .collect(),
            collect_lock: Mutex::new(()),
            participants: Mutex::new(Vec::new()),
            retired_epochs: AtomicU64::new(0),
        }
    }

    fn slot(&self, epoch: u64) -> &EpochSlot {
        &self.ring[(epoch % EPOCH_RING as u64) as usize]
    }

    /// Registers a CC mechanism (or any other component) whose watermark
    /// bounds collection.
    pub fn register_participant(&self, p: Arc<dyn GcParticipant>) {
        self.participants.lock().push(p);
    }

    /// Removes all registered participants (used when the CC tree is
    /// rebuilt during reconfiguration).
    pub fn clear_participants(&self) {
        self.participants.lock().clear();
    }

    /// The current GC epoch id.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch.load(Ordering::Acquire)
    }

    /// Tags a starting transaction with the current epoch. Returns the
    /// epoch id, which must be passed back to [`GcManager::transaction_finished`].
    /// Lock-free: one atomic increment.
    pub fn transaction_started(&self, _txn: TxnId) -> u64 {
        let epoch = self.current_epoch();
        self.slot(epoch).active.fetch_add(1, Ordering::AcqRel);
        epoch
    }

    /// Records that a transaction tagged with `epoch` finished (committed or
    /// aborted) with the given commit timestamp (if committed). Lock-free:
    /// at most two atomic RMWs.
    pub fn transaction_finished(&self, epoch: u64, commit_ts: Option<Timestamp>) {
        let slot = self.slot(epoch);
        if let Some(ts) = commit_ts {
            slot.high_ts.fetch_max(ts.0, Ordering::AcqRel);
        }
        slot.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Advances to a new epoch; transactions started afterwards belong to
    /// the new epoch. Typically driven by a periodic timer in the engine.
    pub fn advance_epoch(&self) -> u64 {
        let next = self.current_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        assert!(
            next - self.floor.load(Ordering::Acquire) < EPOCH_RING as u64,
            "GC epoch ring exhausted: {EPOCH_RING} epochs advanced without a collect cycle"
        );
        next
    }

    /// The oldest epoch that still has in-flight transactions, if any.
    pub fn oldest_active_epoch(&self) -> Option<u64> {
        let current = self.current_epoch();
        let mut e = self.floor.load(Ordering::Acquire);
        while e <= current {
            if self.slot(e).active.load(Ordering::Acquire) != 0 {
                return Some(e);
            }
            e += 1;
        }
        None
    }

    /// Attempts one collection cycle on `store`.
    ///
    /// The collectable horizon is the minimum of (a) every participant's low
    /// watermark and (b) the highest commit timestamp of fully-retired
    /// epochs; when no epoch has fully retired nothing is pruned. Every
    /// cycle also runs a physical reclamation sweep so limbo lists drain
    /// even on quiet cycles.
    pub fn collect(&self, store: &MvStore) -> GcReport {
        let current = self.current_epoch();
        let mut retired_horizon = Timestamp::ZERO;
        let mut retired_count = 0u64;
        {
            let _g = self.collect_lock.lock();
            let mut floor = self.floor.load(Ordering::Acquire);
            // Retire epochs in order until the first one that still has
            // in-flight transactions (everything past it is newer than the
            // oldest active epoch and must wait).
            while floor < current {
                let slot = self.slot(floor);
                if slot.active.load(Ordering::Acquire) != 0 {
                    break;
                }
                let high = slot.high_ts.swap(0, Ordering::AcqRel);
                if high != 0 {
                    retired_count += 1;
                    if high > retired_horizon.0 {
                        retired_horizon = Timestamp(high);
                    }
                }
                floor += 1;
            }
            self.floor.store(floor, Ordering::Release);
        }

        if retired_count == 0 || retired_horizon == Timestamp::ZERO {
            return GcReport {
                reclaimed: store.reclaim(),
                ..GcReport::default()
            };
        }

        let mut horizon = retired_horizon;
        for participant in self.participants.lock().iter() {
            let wm = participant.low_watermark();
            if wm < horizon {
                horizon = wm;
            }
        }
        if horizon == Timestamp::ZERO {
            return GcReport {
                reclaimed: store.reclaim(),
                ..GcReport::default()
            };
        }

        let removed = store.prune_before(horizon);
        let reclaimed = store.reclaim();
        self.retired_epochs
            .fetch_add(retired_count, Ordering::Relaxed);
        GcReport {
            horizon,
            removed,
            epochs_retired: retired_count,
            reclaimed,
        }
    }

    /// Total number of epochs retired so far.
    pub fn retired_epochs(&self) -> u64 {
        self.retired_epochs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::mvstore::ReadSpec;
    use crate::schema::TableId;
    use crate::value::Value;

    struct FixedWatermark(Timestamp);
    impl GcParticipant for FixedWatermark {
        fn low_watermark(&self) -> Timestamp {
            self.0
        }
    }

    fn k(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    fn committed_write(store: &MvStore, txn: u64, id: u64, val: i64, ts: u64) {
        store.write(&k(id), TxnId(txn), Value::Int(val));
        store.commit_writes(TxnId(txn), &[k(id)], Timestamp(ts));
    }

    #[test]
    fn collects_only_retired_epochs() {
        let store = MvStore::new(2);
        let gc = GcManager::new();

        let e1 = gc.transaction_started(TxnId(1));
        committed_write(&store, 1, 1, 10, 10);
        gc.transaction_finished(e1, Some(Timestamp(10)));

        let e2 = gc.transaction_started(TxnId(2));
        committed_write(&store, 2, 1, 20, 20);
        // Epoch not advanced yet: nothing retires.
        let report = gc.collect(&store);
        assert_eq!(report.removed, 0);

        gc.advance_epoch();
        gc.transaction_finished(e2, Some(Timestamp(20)));
        let report = gc.collect(&store);
        assert!(report.epochs_retired >= 1);
        assert_eq!(report.removed, 1, "old version of key 1 collected");
        assert_eq!(
            store.read(&k(1), ReadSpec::LatestCommitted),
            Some(Value::Int(20))
        );
        // The O(1) store counters must agree with a full scan after GC.
        assert_eq!(store.stats(), store.stats_scanned());
    }

    #[test]
    fn participant_watermark_bounds_collection() {
        let store = MvStore::new(2);
        let gc = GcManager::new();
        gc.register_participant(Arc::new(FixedWatermark(Timestamp(5))));

        let e = gc.transaction_started(TxnId(1));
        committed_write(&store, 1, 1, 10, 10);
        committed_write(&store, 1, 1, 11, 11);
        gc.transaction_finished(e, Some(Timestamp(11)));
        gc.advance_epoch();

        // Participant says it may still read at ts 5, so only versions below
        // 5 may go; none exist, so nothing is removed.
        let report = gc.collect(&store);
        assert_eq!(report.removed, 0);
        assert_eq!(report.horizon, Timestamp(5));
        assert_eq!(store.stats(), store.stats_scanned());
    }

    #[test]
    fn active_transactions_block_their_epoch() {
        let gc = GcManager::new();
        let e = gc.transaction_started(TxnId(1));
        assert_eq!(gc.oldest_active_epoch(), Some(e));
        gc.transaction_finished(e, None);
        assert_eq!(gc.oldest_active_epoch(), None);
    }

    #[test]
    fn repeated_cycles_drain_limbo_and_keep_counts_exact() {
        let store = MvStore::new(2);
        let gc = GcManager::new();
        let mut expected_removed = 0usize;
        for round in 1..=10u64 {
            let e = gc.transaction_started(TxnId(round));
            committed_write(&store, round, 1, round as i64, round * 10);
            gc.transaction_finished(e, Some(Timestamp(round * 10)));
            gc.advance_epoch();
            let report = gc.collect(&store);
            // Each cycle prunes every superseded version of key 1 exactly
            // once: one per round after the first.
            expected_removed += report.removed;
            assert_eq!(store.stats(), store.stats_scanned());
        }
        assert_eq!(expected_removed, 9);
        assert_eq!(store.stats().versions, 1);
        // Physical reclamation eventually frees everything pruned.
        for _ in 0..8 {
            store.reclaim();
        }
        assert_eq!(store.limbo_stats().0, 0);
        assert_eq!(store.gen_mismatches(), 0);
    }
}
