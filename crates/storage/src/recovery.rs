//! The recovery protocol (§4.5.4).
//!
//! Recovery is a three-step procedure:
//!
//! 1. retrieve logs from persistent storage,
//! 2. reconstruct the database state: discard any transaction that has
//!    fewer precommit records than its number of participating data servers
//!    or whose global epoch id is newer than the latest sealed epoch, then
//!    keep the latest committed version of each object,
//! 3. reconstruct the (root) concurrency control's internal state — in this
//!    reproduction the CC state is rebuilt lazily by the engine when it
//!    re-opens the recovered store, which matches the paper's observation
//!    that only the root CC needs to know about the recovery transaction.

use crate::key::Key;
use crate::mvstore::MvStore;
use crate::types::{Timestamp, TxnId};
use crate::value::Value;
use crate::wal::{LogDevice, LogRecord};
use std::collections::{HashMap, HashSet};

/// Summary of a recovery run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose writes were reinstalled.
    pub recovered_txns: usize,
    /// Transactions discarded because precommit records were missing.
    pub discarded_incomplete: usize,
    /// Transactions discarded because their epoch was not sealed.
    pub discarded_unsealed_epoch: usize,
    /// Number of keys restored.
    pub keys_restored: usize,
    /// Largest commit timestamp observed (the engine's oracle must start
    /// above it).
    pub max_commit_ts: Timestamp,
    /// Largest transaction id observed (the engine's id sequence must start
    /// above it).
    pub max_txn_id: u64,
}

#[derive(Default)]
struct TxnLog {
    shards_seen: HashSet<u32>,
    participants: u32,
    max_epoch: u64,
    writes: Vec<(Key, Value)>,
    commit_ts: Option<Timestamp>,
    commit_epoch: Option<u64>,
}

/// Replays the durable records of `device` into a fresh store.
pub fn recover(device: &dyn LogDevice) -> (MvStore, RecoveryReport) {
    recover_into(device, MvStore::new(8))
}

/// Replays the durable records of `device` into `store` (which is expected
/// to be empty) and returns it together with a [`RecoveryReport`].
pub fn recover_into(device: &dyn LogDevice, store: MvStore) -> (MvStore, RecoveryReport) {
    let records = device.read_back();
    let mut txns: HashMap<TxnId, TxnLog> = HashMap::new();
    let mut sealed_epoch = 0u64;

    for record in &records {
        match record {
            LogRecord::EpochSeal { epoch } => sealed_epoch = sealed_epoch.max(*epoch),
            LogRecord::Operation { .. } => {
                // Operation records are informational; the authoritative
                // write list is in the precommit record.
            }
            LogRecord::Precommit {
                txn,
                participants,
                shard,
                gcp_epoch,
                writes,
            } => {
                let entry = txns.entry(*txn).or_default();
                entry.participants = (*participants).max(entry.participants);
                entry.shards_seen.insert(*shard);
                entry.max_epoch = entry.max_epoch.max(*gcp_epoch);
                entry.writes.extend(writes.iter().cloned());
            }
            LogRecord::Commit {
                txn,
                global_epoch,
                commit_ts,
            } => {
                let entry = txns.entry(*txn).or_default();
                entry.commit_ts = Some(*commit_ts);
                entry.commit_epoch = Some(*global_epoch);
            }
        }
    }

    let mut report = RecoveryReport::default();

    // Order recoverable transactions by commit timestamp (transactions that
    // precommitted on every participant but have no commit record are
    // guaranteed to commit; they are replayed after the explicitly committed
    // ones, ordered by id).
    let mut recoverable: Vec<(TxnId, TxnLog)> = Vec::new();
    for (txn, log) in txns {
        report.max_txn_id = report.max_txn_id.max(txn.0);
        let complete =
            log.participants > 0 && log.shards_seen.len() as u32 >= log.participants;
        if !complete {
            report.discarded_incomplete += 1;
            continue;
        }
        let epoch = log.commit_epoch.unwrap_or(log.max_epoch);
        if epoch > sealed_epoch {
            report.discarded_unsealed_epoch += 1;
            continue;
        }
        recoverable.push((txn, log));
    }
    recoverable.sort_by_key(|(txn, log)| (log.commit_ts.unwrap_or(Timestamp::MAX), txn.0));

    let mut restored_keys: HashSet<Key> = HashSet::new();
    for (txn, log) in &recoverable {
        report.recovered_txns += 1;
        if let Some(ts) = log.commit_ts {
            report.max_commit_ts = report.max_commit_ts.max(ts);
        }
        for (key, value) in &log.writes {
            restored_keys.insert(*key);
            // Later transactions in the replay order overwrite earlier ones,
            // leaving the latest committed version as the visible value.
            store.with_chain_mut(key, |chain| {
                chain.abort(*txn);
            });
            store.write(key, *txn, value.clone());
            store.commit_writes(
                *txn,
                &[*key],
                log.commit_ts.unwrap_or(report.max_commit_ts.next()),
            );
        }
    }
    report.keys_restored = restored_keys.len();
    (store, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{DurabilityManager, FlushPolicy};
    use crate::mvstore::ReadSpec;
    use crate::schema::TableId;
    use crate::wal::MemLogDevice;
    use std::sync::Arc;
    use std::time::Duration;

    fn k(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    #[test]
    fn recovers_committed_transactions() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        let epoch = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(11))]);
        mgr.commit(TxnId(1), epoch, Timestamp(5));
        let e2 = mgr.precommit(TxnId(2), 0, 1, vec![(k(1), Value::Int(22)), (k(2), Value::Int(2))]);
        mgr.commit(TxnId(2), e2, Timestamp(9));
        mgr.seal_current_epoch();

        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 2);
        assert_eq!(report.keys_restored, 2);
        assert_eq!(report.max_commit_ts, Timestamp(9));
        assert_eq!(report.max_txn_id, 2);
        assert_eq!(
            store.read(&k(1), ReadSpec::LatestCommitted),
            Some(Value::Int(22)),
            "later commit wins"
        );
        assert_eq!(store.read(&k(2), ReadSpec::LatestCommitted), Some(Value::Int(2)));
    }

    #[test]
    fn discards_incomplete_precommits() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        // Transaction claims two participants but only one precommit record
        // was made durable before the crash.
        mgr.precommit(TxnId(3), 0, 2, vec![(k(3), Value::Int(3))]);
        mgr.seal_current_epoch();
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 0);
        assert_eq!(report.discarded_incomplete, 1);
        assert_eq!(store.read(&k(3), ReadSpec::LatestCommitted), None);
    }

    #[test]
    fn discards_unsealed_epochs_under_async_flushing() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(
            dev.clone(),
            FlushPolicy::Asynchronous {
                epoch_interval: Duration::from_secs(3600),
            },
        );
        // Sealed epoch: this transaction survives.
        let e1 = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(1))]);
        mgr.commit(TxnId(1), e1, Timestamp(1));
        mgr.seal_current_epoch();
        // Unsealed epoch: this one is lost even though it "committed".
        let e2 = mgr.precommit(TxnId(2), 0, 1, vec![(k(2), Value::Int(2))]);
        mgr.commit(TxnId(2), e2, Timestamp(2));
        // Crash before the second seal: flush whatever was appended so the
        // records exist, but no EpochSeal for e2.
        mgr.device().flush();

        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 1);
        assert_eq!(report.discarded_unsealed_epoch, 1);
        assert_eq!(store.read(&k(1), ReadSpec::LatestCommitted), Some(Value::Int(1)));
        assert_eq!(store.read(&k(2), ReadSpec::LatestCommitted), None);
        mgr.shutdown();
    }

    #[test]
    fn precommitted_without_commit_record_is_replayed() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        mgr.precommit(TxnId(4), 0, 1, vec![(k(4), Value::Int(44))]);
        mgr.seal_current_epoch();
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 1);
        assert_eq!(store.read(&k(4), ReadSpec::LatestCommitted), Some(Value::Int(44)));
    }
}
