//! The recovery protocol (§4.5.4).
//!
//! Recovery is a three-step procedure:
//!
//! 1. retrieve logs from persistent storage,
//! 2. reconstruct the database state: discard any transaction that has
//!    fewer precommit records than its number of participating data servers
//!    or whose global epoch id is newer than the latest sealed epoch, then
//!    keep the latest committed version of each object,
//! 3. reconstruct the (root) concurrency control's internal state — in this
//!    reproduction the CC state is rebuilt lazily by the engine when it
//!    re-opens the recovered store, which matches the paper's observation
//!    that only the root CC needs to know about the recovery transaction.

use crate::key::Key;
use crate::mvstore::MvStore;
use crate::types::{Timestamp, TxnId};
use crate::value::Value;
use crate::wal::{LogDevice, LogRecord};
use std::collections::{HashMap, HashSet};

/// Summary of a recovery run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose writes were reinstalled.
    pub recovered_txns: usize,
    /// Transactions discarded because precommit records were missing.
    pub discarded_incomplete: usize,
    /// Transactions discarded because their epoch was not sealed.
    pub discarded_unsealed_epoch: usize,
    /// Cross-shard transactions found prepared but undecided in the log
    /// (crash between prepare and the coordinator's decision).
    pub in_doubt: usize,
    /// In-doubt transactions the resolver decided to commit.
    pub in_doubt_committed: usize,
    /// In-doubt transactions the resolver decided to abort.
    pub in_doubt_aborted: usize,
    /// Number of keys restored.
    pub keys_restored: usize,
    /// Largest commit timestamp observed (the engine's oracle must start
    /// above it).
    pub max_commit_ts: Timestamp,
    /// Largest transaction id observed (the engine's id sequence must start
    /// above it).
    pub max_txn_id: u64,
    /// Largest HLC stamp observed on any replayed commit (the shard's
    /// hybrid logical clock must re-base past it, exactly like the txn-id
    /// and commit-ts generators).
    pub max_hlc: u64,
    /// The cluster-global ids of the in-doubt transactions the resolver
    /// aborted. Failover re-polls the coordinator's decision log against
    /// this list: a commit decision logged *during* the replay would
    /// otherwise be presumed-aborted and silently lost.
    pub in_doubt_aborted_globals: Vec<u64>,
}

/// Resolves the fate of an in-doubt prepared transaction by its
/// cluster-global id: `Some(stamp)` means the coordinator decided commit
/// with the given HLC decision stamp (`0` when unknown), `None` means
/// abort. Plain standalone recovery uses presumed abort (`|_| None`).
pub type DecisionResolver<'a> = dyn Fn(u64) -> Option<u64> + 'a;

/// An in-doubt prepared transaction awaiting resolution: local id,
/// cluster-global id, and the writes to replay on commit.
type InDoubtTxn = (TxnId, u64, Vec<(Key, Value)>);

#[derive(Default)]
struct TxnLog {
    shards_seen: HashSet<u32>,
    participants: u32,
    max_epoch: u64,
    writes: Vec<(Key, Value)>,
    commit_ts: Option<Timestamp>,
    commit_epoch: Option<u64>,
    hlc: u64,
}

/// Replays the durable records of `device` into a fresh store, resolving
/// any in-doubt prepared transaction by presumed abort.
pub fn recover(device: &dyn LogDevice) -> (MvStore, RecoveryReport) {
    recover_into(device, MvStore::new(8))
}

/// Replays the durable records of `device` into `store` (which is expected
/// to be empty) and returns it together with a [`RecoveryReport`]. In-doubt
/// prepared transactions are resolved by presumed abort; cluster recovery
/// passes the coordinator's decision log through
/// [`recover_with_resolver`] instead.
pub fn recover_into(device: &dyn LogDevice, store: MvStore) -> (MvStore, RecoveryReport) {
    recover_with_resolver(device, store, &|_| None)
}

/// Replays the durable records of `device` into `store`, consulting
/// `resolver` for every prepared-but-undecided cross-shard transaction
/// found in the log (2PC in-doubt resolution, §4.5.4 extended to the
/// cluster layer).
pub fn recover_with_resolver(
    device: &dyn LogDevice,
    store: MvStore,
    resolver: &DecisionResolver<'_>,
) -> (MvStore, RecoveryReport) {
    let records = device.read_back();
    let mut txns: HashMap<TxnId, TxnLog> = HashMap::new();
    let mut prepared: HashMap<TxnId, (u64, Vec<(Key, Value)>)> = HashMap::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut sealed_epoch = 0u64;

    for record in &records {
        match record {
            LogRecord::EpochSeal { epoch } => sealed_epoch = sealed_epoch.max(*epoch),
            LogRecord::Operation { .. } => {
                // Operation records are informational; the authoritative
                // write list is in the precommit record.
            }
            LogRecord::Precommit {
                txn,
                participants,
                shard,
                gcp_epoch,
                writes,
            } => {
                let entry = txns.entry(*txn).or_default();
                entry.participants = (*participants).max(entry.participants);
                entry.shards_seen.insert(*shard);
                entry.max_epoch = entry.max_epoch.max(*gcp_epoch);
                entry.writes.extend(writes.iter().cloned());
            }
            LogRecord::Commit {
                txn,
                global_epoch,
                commit_ts,
                hlc,
            } => {
                let entry = txns.entry(*txn).or_default();
                entry.commit_ts = Some(*commit_ts);
                entry.commit_epoch = Some(*global_epoch);
                entry.hlc = *hlc;
            }
            LogRecord::Prepare {
                txn,
                global,
                writes,
            } => {
                let entry = prepared
                    .entry(*txn)
                    .or_insert_with(|| (*global, Vec::new()));
                entry.0 = *global;
                entry.1.extend(writes.iter().cloned());
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            LogRecord::Decision { .. } => {
                // Coordinator-log record; never present in a shard's log.
                // The cluster layer reads decision logs directly and feeds
                // them in through `resolver`.
            }
        }
    }

    let mut report = RecoveryReport::default();

    // Local commit decisions: a prepared transaction logs only a Commit
    // record at decide time (its writes are already in the Prepare record),
    // so the commit record alone decides it without consulting the
    // resolver.
    let local_commit: HashMap<TxnId, (Timestamp, u64)> = txns
        .iter()
        .filter_map(|(txn, log)| log.commit_ts.map(|ts| (*txn, (ts, log.hlc))))
        .collect();

    // Order recoverable transactions by commit timestamp (transactions that
    // precommitted on every participant but have no commit record are
    // guaranteed to commit; they are replayed after the explicitly committed
    // ones, ordered by id).
    let mut recoverable: Vec<(TxnId, TxnLog)> = Vec::new();
    for (txn, log) in txns {
        report.max_txn_id = report.max_txn_id.max(txn.0);
        let complete = log.participants > 0 && log.shards_seen.len() as u32 >= log.participants;
        if !complete {
            // Prepared transactions legitimately have no precommit records;
            // they are handled by the in-doubt pass below.
            if !prepared.contains_key(&txn) {
                report.discarded_incomplete += 1;
            }
            continue;
        }
        let epoch = log.commit_epoch.unwrap_or(log.max_epoch);
        if epoch > sealed_epoch {
            report.discarded_unsealed_epoch += 1;
            continue;
        }
        recoverable.push((txn, log));
    }
    // Prepared transactions with a local commit record are fully decided:
    // merge them into the timestamp-sorted replay so per-key version order
    // follows commit order (replaying them after the sorted pass would let
    // an older prepared commit positionally shadow a newer write).
    let replayed_normally: HashSet<TxnId> = recoverable.iter().map(|(txn, _)| *txn).collect();
    for (txn, (_global, writes)) in &prepared {
        if aborted.contains(txn) || replayed_normally.contains(txn) {
            continue;
        }
        if let Some((ts, hlc)) = local_commit.get(txn) {
            recoverable.push((
                *txn,
                TxnLog {
                    writes: writes.clone(),
                    commit_ts: Some(*ts),
                    hlc: *hlc,
                    ..TxnLog::default()
                },
            ));
        }
    }
    recoverable.sort_by_key(|(txn, log)| (log.commit_ts.unwrap_or(Timestamp::MAX), txn.0));

    let mut restored_keys: HashSet<Key> = HashSet::new();
    for (txn, log) in &recoverable {
        report.recovered_txns += 1;
        if let Some(ts) = log.commit_ts {
            report.max_commit_ts = report.max_commit_ts.max(ts);
        }
        report.max_hlc = report.max_hlc.max(log.hlc);
        for (key, value) in &log.writes {
            restored_keys.insert(*key);
            // Later transactions in the replay order overwrite earlier ones,
            // leaving the latest committed version as the visible value.
            store.with_chain_mut(key, |chain| {
                chain.abort(*txn);
            });
            store.write(key, *txn, value.clone());
            store.commit_writes_stamped(
                *txn,
                &[*key],
                log.commit_ts.unwrap_or(report.max_commit_ts.next()),
                log.hlc,
            );
        }
    }

    // In-doubt resolution: a prepared transaction that neither aborted nor
    // committed locally crashed inside the cross-shard 2PC window. Its fate
    // belongs to the coordinator, so ask the resolver (backed by the
    // coordinator's decision log; presumed abort when there is none).
    let replayed: HashSet<TxnId> = recoverable.iter().map(|(txn, _)| *txn).collect();
    for txn in prepared.keys().chain(aborted.iter()) {
        report.max_txn_id = report.max_txn_id.max(txn.0);
    }
    let mut in_doubt: Vec<InDoubtTxn> = prepared
        .into_iter()
        .filter(|(txn, _)| !aborted.contains(txn) && !replayed.contains(txn))
        .map(|(txn, (global, writes))| (txn, global, writes))
        .collect();
    in_doubt.sort_by_key(|(txn, _, _)| txn.0);
    for (txn, global, writes) in in_doubt {
        report.max_txn_id = report.max_txn_id.max(txn.0);
        report.in_doubt += 1;
        let Some(stamp) = resolver(global) else {
            report.in_doubt_aborted += 1;
            report.in_doubt_aborted_globals.push(global);
            continue;
        };
        report.in_doubt_committed += 1;
        report.recovered_txns += 1;
        report.max_hlc = report.max_hlc.max(stamp);
        let commit_ts = report.max_commit_ts.next();
        report.max_commit_ts = commit_ts;
        for (key, value) in &writes {
            restored_keys.insert(*key);
            store.with_chain_mut(key, |chain| {
                chain.abort(txn);
            });
            store.write(key, txn, value.clone());
            store.commit_writes_stamped(txn, &[*key], commit_ts, stamp);
        }
    }

    report.keys_restored = restored_keys.len();
    (store, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{DurabilityManager, FlushPolicy};
    use crate::mvstore::ReadSpec;
    use crate::schema::TableId;
    use crate::wal::MemLogDevice;
    use std::sync::Arc;
    use std::time::Duration;

    fn k(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    #[test]
    fn recovers_committed_transactions() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        let epoch = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(11))]);
        mgr.commit(TxnId(1), epoch, Timestamp(5));
        let e2 = mgr.precommit(
            TxnId(2),
            0,
            1,
            vec![(k(1), Value::Int(22)), (k(2), Value::Int(2))],
        );
        mgr.commit(TxnId(2), e2, Timestamp(9));
        mgr.seal_current_epoch();

        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 2);
        assert_eq!(report.keys_restored, 2);
        assert_eq!(report.max_commit_ts, Timestamp(9));
        assert_eq!(report.max_txn_id, 2);
        assert_eq!(
            store.read(&k(1), ReadSpec::LatestCommitted),
            Some(Value::Int(22)),
            "later commit wins"
        );
        assert_eq!(
            store.read(&k(2), ReadSpec::LatestCommitted),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn discards_incomplete_precommits() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        // Transaction claims two participants but only one precommit record
        // was made durable before the crash.
        mgr.precommit(TxnId(3), 0, 2, vec![(k(3), Value::Int(3))]);
        mgr.seal_current_epoch();
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 0);
        assert_eq!(report.discarded_incomplete, 1);
        assert_eq!(store.read(&k(3), ReadSpec::LatestCommitted), None);
    }

    #[test]
    fn discards_unsealed_epochs_under_async_flushing() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(
            dev.clone(),
            FlushPolicy::Asynchronous {
                epoch_interval: Duration::from_secs(3600),
            },
        );
        // Sealed epoch: this transaction survives.
        let e1 = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(1))]);
        mgr.commit(TxnId(1), e1, Timestamp(1));
        mgr.seal_current_epoch();
        // Unsealed epoch: this one is lost even though it "committed".
        let e2 = mgr.precommit(TxnId(2), 0, 1, vec![(k(2), Value::Int(2))]);
        mgr.commit(TxnId(2), e2, Timestamp(2));
        // Crash before the second seal: flush whatever was appended so the
        // records exist, but no EpochSeal for e2.
        mgr.device().flush();

        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 1);
        assert_eq!(report.discarded_unsealed_epoch, 1);
        assert_eq!(
            store.read(&k(1), ReadSpec::LatestCommitted),
            Some(Value::Int(1))
        );
        assert_eq!(store.read(&k(2), ReadSpec::LatestCommitted), None);
        mgr.shutdown();
    }

    #[test]
    fn in_doubt_prepares_resolved_by_coordinator_decision() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        // Two prepared transactions crash before any decision record lands;
        // a third prepared one aborted explicitly.
        mgr.prepare(TxnId(7), 42, vec![(k(7), Value::Int(70))]);
        mgr.prepare(TxnId(8), 43, vec![(k(8), Value::Int(80))]);
        mgr.prepare(TxnId(9), 44, vec![(k(9), Value::Int(90))]);
        mgr.log_abort(TxnId(9));
        mgr.seal_current_epoch();

        // Plain recovery presumes abort for every in-doubt transaction.
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.in_doubt, 2);
        assert_eq!(report.in_doubt_aborted, 2);
        assert_eq!(report.in_doubt_committed, 0);
        assert_eq!(store.read(&k(7), ReadSpec::LatestCommitted), None);

        // With the coordinator's decision log, global 42 commits.
        let (store, report) = recover_with_resolver(dev.as_ref(), MvStore::new(4), &|global| {
            (global == 42).then_some(0)
        });
        assert_eq!(report.in_doubt, 2);
        assert_eq!(report.in_doubt_committed, 1);
        assert_eq!(report.in_doubt_aborted, 1);
        assert_eq!(report.max_txn_id, 9);
        assert_eq!(
            store.read(&k(7), ReadSpec::LatestCommitted),
            Some(Value::Int(70))
        );
        assert_eq!(store.read(&k(8), ReadSpec::LatestCommitted), None);
        assert_eq!(store.read(&k(9), ReadSpec::LatestCommitted), None);
        mgr.shutdown();
    }

    #[test]
    fn prepared_commit_without_precommit_records_recovers() {
        // The decide-commit path of a prepared transaction logs only the
        // Commit record (writes were hardened in the Prepare record): the
        // pair must recover even under the presumed-abort resolver.
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        mgr.prepare(TxnId(6), 40, vec![(k(6), Value::Int(60))]);
        mgr.commit(TxnId(6), mgr.current_epoch(), Timestamp(4));
        mgr.seal_current_epoch();
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.in_doubt, 0, "locally decided, not in doubt");
        assert_eq!(report.recovered_txns, 1);
        assert_eq!(report.max_commit_ts, Timestamp(4));
        assert_eq!(
            store.read(&k(6), ReadSpec::LatestCommitted),
            Some(Value::Int(60))
        );
        mgr.shutdown();
    }

    #[test]
    fn prepared_commit_does_not_shadow_newer_writes() {
        // A prepared transaction decided at ts 4 and a later normal
        // transaction overwriting the same key at ts 9: recovery must leave
        // the ts-9 value visible regardless of replay bookkeeping order.
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        mgr.prepare(TxnId(2), 50, vec![(k(1), Value::Int(20))]);
        mgr.commit(TxnId(2), mgr.current_epoch(), Timestamp(4));
        let epoch = mgr.precommit(TxnId(3), 0, 1, vec![(k(1), Value::Int(30))]);
        mgr.commit(TxnId(3), epoch, Timestamp(9));
        mgr.seal_current_epoch();
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 2);
        assert_eq!(report.in_doubt, 0);
        assert_eq!(
            store.read(&k(1), ReadSpec::LatestCommitted),
            Some(Value::Int(30)),
            "the newer commit must win"
        );
        mgr.shutdown();
    }

    #[test]
    fn prepared_then_committed_locally_is_not_in_doubt() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        mgr.prepare(TxnId(5), 41, vec![(k(5), Value::Int(50))]);
        let epoch = mgr.precommit(TxnId(5), 0, 1, vec![(k(5), Value::Int(50))]);
        mgr.commit(TxnId(5), epoch, Timestamp(3));
        mgr.seal_current_epoch();
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.in_doubt, 0);
        assert_eq!(report.recovered_txns, 1);
        assert_eq!(
            store.read(&k(5), ReadSpec::LatestCommitted),
            Some(Value::Int(50))
        );
        mgr.shutdown();
    }

    #[test]
    fn precommitted_without_commit_record_is_replayed() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        mgr.precommit(TxnId(4), 0, 1, vec![(k(4), Value::Int(44))]);
        mgr.seal_current_epoch();
        let (store, report) = recover(dev.as_ref());
        assert_eq!(report.recovered_txns, 1);
        assert_eq!(
            store.read(&k(4), ReadSpec::LatestCommitted),
            Some(Value::Int(44))
        );
    }
}
