//! Keys of the transactional key-value store.
//!
//! Tebaldi is a key-value store with support for tables (§4.5). Workload
//! keys are composites of small integers (warehouse id, district id, order
//! id, ...), so instead of heap-allocated byte strings we pack the composite
//! parts into a `u128`. This keeps keys `Copy`, hashable without allocation,
//! and cheap to log.

use crate::schema::TableId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully qualified key: a table plus a packed row identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key {
    /// The table this key belongs to.
    pub table: TableId,
    /// The packed row identifier within the table.
    pub row: u128,
}

impl Key {
    /// Creates a key from a table and an already-packed row id.
    pub fn new(table: TableId, row: u128) -> Self {
        Key { table, row }
    }

    /// Creates a key whose row id is a single integer.
    pub fn simple(table: TableId, id: u64) -> Self {
        Key {
            table,
            row: id as u128,
        }
    }

    /// Packs up to four 32-bit components into a row id, most significant
    /// first. This is how the TPC-C and SEATS schemas build composite keys
    /// such as `(warehouse, district, order, line)`.
    pub fn composite(table: TableId, parts: &[u32]) -> Self {
        assert!(parts.len() <= 4, "composite keys support at most 4 parts");
        let mut row: u128 = 0;
        for &p in parts {
            row = (row << 32) | p as u128;
        }
        Key { table, row }
    }

    /// Extracts the `idx`-th (0-based, most significant first) 32-bit
    /// component of a key created by [`Key::composite`] with `n` parts.
    pub fn part(&self, idx: usize, n: usize) -> u32 {
        assert!(idx < n && n <= 4);
        let shift = 32 * (n - 1 - idx);
        ((self.row >> shift) & 0xffff_ffff) as u32
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{:x}", self.table, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_roundtrip() {
        let t = TableId(3);
        let k = Key::composite(t, &[7, 11, 13, 17]);
        assert_eq!(k.part(0, 4), 7);
        assert_eq!(k.part(1, 4), 11);
        assert_eq!(k.part(2, 4), 13);
        assert_eq!(k.part(3, 4), 17);
    }

    #[test]
    fn composite_distinct() {
        let t = TableId(1);
        let a = Key::composite(t, &[1, 2]);
        let b = Key::composite(t, &[2, 1]);
        assert_ne!(a, b);
        let c = Key::composite(TableId(2), &[1, 2]);
        assert_ne!(a, c);
    }

    #[test]
    fn simple_key_matches_one_part_composite() {
        let t = TableId(9);
        assert_eq!(Key::simple(t, 42).row, Key::composite(t, &[42]).row);
    }

    #[test]
    #[should_panic]
    fn too_many_parts_panics() {
        let _ = Key::composite(TableId(0), &[1, 2, 3, 4, 5]);
    }
}
