//! The durability protocol (§4.5.4).
//!
//! The manager implements both flushing modes discussed in the paper:
//!
//! * **Synchronous** — every precommit record is flushed before the call
//!   returns, so a committed transaction is durable immediately. This is
//!   the conservative baseline and is what Table 4.2's "expensive" option
//!   corresponds to without batching.
//! * **Asynchronous with GCP epochs** — records are buffered and flushed in
//!   batches called *global checkpoint (GCP) epochs*. Commit notification is
//!   decoupled from durable notification: to the CC mechanisms a committed
//!   but not-yet-durable transaction is indistinguishable from a durable
//!   one, so durability does not extend the time locks are held. Recovery
//!   discards transactions whose global epoch id is newer than the latest
//!   sealed epoch, which preserves read-from consistency across the
//!   committed survivors.
//! * **Disabled** — the durability-off configuration used by most
//!   performance experiments (the paper's Chapter 4 experiments predate the
//!   durability module).

use crate::key::Key;
use crate::types::{Timestamp, TxnId};
use crate::value::Value;
use crate::wal::{LogDevice, LogRecord};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Flushing policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Durability disabled: no records are written.
    Disabled,
    /// Flush at every precommit.
    Synchronous,
    /// Flush in the background every `epoch_interval`; each flush seals the
    /// current GCP epoch.
    Asynchronous {
        /// Length of one GCP epoch.
        epoch_interval: Duration,
    },
}

/// Counters exposed for the durability-overhead experiment (Table 4.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityStats {
    /// Operation records appended.
    pub operations: u64,
    /// Precommit records appended.
    pub precommits: u64,
    /// Cross-shard 2PC prepare records appended.
    pub prepares: u64,
    /// Commit records appended.
    pub commits: u64,
    /// Device flushes performed.
    pub flushes: u64,
    /// Epochs sealed.
    pub epochs_sealed: u64,
}

struct EpochState {
    sealed: u64,
}

/// The durability manager shared by the whole database instance.
pub struct DurabilityManager {
    device: Arc<dyn LogDevice>,
    policy: FlushPolicy,
    current_epoch: AtomicU64,
    sealed: Mutex<EpochState>,
    sealed_cv: Condvar,
    stop: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    operations: AtomicU64,
    precommits: AtomicU64,
    prepares: AtomicU64,
    commits: AtomicU64,
    flushes: AtomicU64,
    epochs_sealed: AtomicU64,
}

impl std::fmt::Debug for DurabilityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityManager")
            .field("policy", &self.policy)
            .field("current_epoch", &self.current_epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl DurabilityManager {
    /// Creates a manager over the given device. When the policy is
    /// asynchronous a background flusher thread is started; call
    /// [`DurabilityManager::shutdown`] (or drop the manager) to stop it.
    pub fn new(device: Arc<dyn LogDevice>, policy: FlushPolicy) -> Arc<Self> {
        let mgr = Arc::new(DurabilityManager {
            device,
            policy: policy.clone(),
            current_epoch: AtomicU64::new(1),
            sealed: Mutex::new(EpochState { sealed: 0 }),
            sealed_cv: Condvar::new(),
            stop: Arc::new(AtomicBool::new(false)),
            flusher: Mutex::new(None),
            operations: AtomicU64::new(0),
            precommits: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            epochs_sealed: AtomicU64::new(0),
        });
        if let FlushPolicy::Asynchronous { epoch_interval } = policy {
            let weak = Arc::downgrade(&mgr);
            let stop = Arc::clone(&mgr.stop);
            let handle = std::thread::Builder::new()
                .name("tebaldi-gcp-flusher".to_string())
                .spawn(move || {
                    // Sleep in small slices so shutdown (which joins this
                    // thread) stays prompt even for long GCP epochs.
                    let slice = Duration::from_millis(5).min(epoch_interval);
                    let mut elapsed = Duration::ZERO;
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(slice);
                        elapsed += slice;
                        if elapsed < epoch_interval {
                            continue;
                        }
                        elapsed = Duration::ZERO;
                        if let Some(mgr) = weak.upgrade() {
                            mgr.seal_current_epoch();
                        } else {
                            break;
                        }
                    }
                })
                .expect("spawn GCP flusher");
            *mgr.flusher.lock() = Some(handle);
        }
        mgr
    }

    /// Creates a disabled manager (no logging at all).
    pub fn disabled() -> Arc<Self> {
        DurabilityManager::new(
            Arc::new(crate::wal::MemLogDevice::new()),
            FlushPolicy::Disabled,
        )
    }

    /// True when durability is enabled.
    pub fn is_enabled(&self) -> bool {
        self.policy != FlushPolicy::Disabled
    }

    /// The current GCP epoch id.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch.load(Ordering::Relaxed)
    }

    /// The latest sealed (durably flushed) epoch id.
    pub fn sealed_epoch(&self) -> u64 {
        self.sealed.lock().sealed
    }

    /// Logs one write operation.
    pub fn log_operation(&self, txn: TxnId, key: Key, value: &Value) {
        if !self.is_enabled() {
            return;
        }
        self.operations.fetch_add(1, Ordering::Relaxed);
        self.device.append(&LogRecord::Operation {
            txn,
            key,
            value: value.clone(),
        });
    }

    /// Logs the precommit record of one participating shard and returns the
    /// GCP epoch id assigned to it. Under the synchronous policy this call
    /// also flushes.
    pub fn precommit(
        &self,
        txn: TxnId,
        shard: u32,
        participants: u32,
        writes: Vec<(Key, Value)>,
    ) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let epoch = self.current_epoch();
        self.precommits.fetch_add(1, Ordering::Relaxed);
        self.device.append(&LogRecord::Precommit {
            txn,
            participants,
            shard,
            gcp_epoch: epoch,
            writes,
        });
        if self.policy == FlushPolicy::Synchronous {
            self.device.flush();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        epoch
    }

    /// Logs the commit notification. `global_epoch` is the maximum of the
    /// epoch ids returned by the participants' precommit calls.
    /// Appends the cross-shard two-phase-commit *prepare* record for local
    /// transaction `txn` acting for cluster-global transaction `global`, and
    /// flushes it synchronously regardless of the flushing policy: the shard
    /// may vote "yes" to the coordinator only once the prepare record is
    /// durable. Returns `true` when a record was written (durability on).
    pub fn prepare(&self, txn: TxnId, global: u64, writes: Vec<(Key, Value)>) -> bool {
        if !self.is_enabled() {
            return false;
        }
        self.prepares.fetch_add(1, Ordering::Relaxed);
        self.device.append(&LogRecord::Prepare {
            txn,
            global,
            writes,
        });
        self.device.flush();
        self.flushes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Appends an abort marker resolving an earlier prepare record, so
    /// recovery does not have to treat the transaction as in doubt.
    pub fn log_abort(&self, txn: TxnId) {
        if !self.is_enabled() {
            return;
        }
        self.device.append(&LogRecord::Abort { txn });
        if self.policy == FlushPolicy::Synchronous {
            self.device.flush();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn commit(&self, txn: TxnId, global_epoch: u64, commit_ts: Timestamp) {
        if !self.is_enabled() {
            return;
        }
        // GCP rule: a data server observing a larger global epoch advances
        // its own epoch before running any commit phase, guaranteeing that a
        // reader's epoch is never smaller than its writer's.
        let mut cur = self.current_epoch.load(Ordering::Relaxed);
        while global_epoch > cur {
            match self.current_epoch.compare_exchange(
                cur,
                global_epoch,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.device.append(&LogRecord::Commit {
            txn,
            global_epoch,
            commit_ts,
        });
        if self.policy == FlushPolicy::Synchronous {
            self.device.flush();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Seals the current epoch: flushes the device, records the seal marker
    /// and wakes up waiters. Invoked by the background flusher and by
    /// [`DurabilityManager::shutdown`].
    pub fn seal_current_epoch(&self) {
        if !self.is_enabled() {
            return;
        }
        let sealing = self.current_epoch.fetch_add(1, Ordering::Relaxed);
        self.device.append(&LogRecord::EpochSeal { epoch: sealing });
        self.device.flush();
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.epochs_sealed.fetch_add(1, Ordering::Relaxed);
        let mut sealed = self.sealed.lock();
        if sealing > sealed.sealed {
            sealed.sealed = sealing;
        }
        self.sealed_cv.notify_all();
    }

    /// Blocks until the given epoch has been sealed (the transaction that
    /// received this epoch at precommit time is durable), or until the
    /// timeout elapses. Returns `true` when durable.
    pub fn wait_durable(&self, epoch: u64, timeout: Duration) -> bool {
        if !self.is_enabled() || self.policy == FlushPolicy::Synchronous || epoch == 0 {
            return true;
        }
        let mut sealed = self.sealed.lock();
        if sealed.sealed >= epoch {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        while sealed.sealed < epoch {
            if self.sealed_cv.wait_until(&mut sealed, deadline).timed_out() {
                return sealed.sealed >= epoch;
            }
        }
        true
    }

    /// Stops the background flusher (sealing one final epoch first).
    pub fn shutdown(&self) {
        if self.is_enabled() {
            self.seal_current_epoch();
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            operations: self.operations.load(Ordering::Relaxed),
            precommits: self.precommits.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            epochs_sealed: self.epochs_sealed.load(Ordering::Relaxed),
        }
    }

    /// The underlying device (used by recovery).
    pub fn device(&self) -> Arc<dyn LogDevice> {
        Arc::clone(&self.device)
    }
}

impl Drop for DurabilityManager {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;
    use crate::wal::MemLogDevice;

    fn k(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    #[test]
    fn disabled_manager_is_noop() {
        let mgr = DurabilityManager::disabled();
        mgr.log_operation(TxnId(1), k(1), &Value::Int(1));
        assert_eq!(mgr.precommit(TxnId(1), 0, 1, vec![]), 0);
        mgr.commit(TxnId(1), 0, Timestamp(1));
        assert_eq!(mgr.stats().precommits, 0);
        assert!(mgr.wait_durable(0, Duration::from_millis(1)));
    }

    #[test]
    fn synchronous_flushes_on_precommit() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        mgr.log_operation(TxnId(1), k(1), &Value::Int(5));
        let epoch = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(5))]);
        mgr.commit(TxnId(1), epoch, Timestamp(3));
        // Everything appended before the flush is durable.
        assert!(dev.read_back().len() >= 2);
        assert!(mgr.wait_durable(epoch, Duration::from_millis(1)));
    }

    #[test]
    fn asynchronous_epoch_sealing() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(
            dev.clone(),
            FlushPolicy::Asynchronous {
                epoch_interval: Duration::from_millis(5),
            },
        );
        let epoch = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(5))]);
        assert!(epoch >= 1);
        assert!(
            mgr.wait_durable(epoch, Duration::from_secs(2)),
            "background flusher must seal the epoch"
        );
        assert!(mgr.sealed_epoch() >= epoch);
        mgr.shutdown();
        let records = dev.read_back();
        assert!(records
            .iter()
            .any(|r| matches!(r, LogRecord::EpochSeal { .. })));
    }

    #[test]
    fn commit_advances_epoch_to_global() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev, FlushPolicy::Synchronous);
        assert_eq!(mgr.current_epoch(), 1);
        mgr.commit(TxnId(1), 7, Timestamp(1));
        assert_eq!(mgr.current_epoch(), 7);
        // Smaller global epochs never move the epoch backwards.
        mgr.commit(TxnId(2), 3, Timestamp(2));
        assert_eq!(mgr.current_epoch(), 7);
    }
}
