//! The durability protocol (§4.5.4).
//!
//! The manager implements both flushing modes discussed in the paper:
//!
//! * **Synchronous** — every precommit record is flushed before the call
//!   returns, so a committed transaction is durable immediately. This is
//!   the conservative baseline and is what Table 4.2's "expensive" option
//!   corresponds to without batching.
//! * **Asynchronous with GCP epochs** — records are buffered and flushed in
//!   batches called *global checkpoint (GCP) epochs*. Commit notification is
//!   decoupled from durable notification: to the CC mechanisms a committed
//!   but not-yet-durable transaction is indistinguishable from a durable
//!   one, so durability does not extend the time locks are held. Recovery
//!   discards transactions whose global epoch id is newer than the latest
//!   sealed epoch, which preserves read-from consistency across the
//!   committed survivors.
//! * **Disabled** — the durability-off configuration used by most
//!   performance experiments (the paper's Chapter 4 experiments predate the
//!   durability module).

use crate::key::Key;
use crate::types::{Timestamp, TxnId};
use crate::value::Value;
use crate::wal::{LogDevice, LogRecord};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tebaldi_obs::{Counter, MetricsRegistry};

/// Flushing policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Durability disabled: no records are written.
    Disabled,
    /// Flush at every precommit.
    Synchronous,
    /// Flush in the background every `epoch_interval`; each flush seals the
    /// current GCP epoch.
    Asynchronous {
        /// Length of one GCP epoch.
        epoch_interval: Duration,
    },
}

/// Counters exposed for the durability-overhead experiment (Table 4.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityStats {
    /// Operation records appended.
    pub operations: u64,
    /// Precommit records appended.
    pub precommits: u64,
    /// Cross-shard 2PC prepare records appended.
    pub prepares: u64,
    /// Commit records appended.
    pub commits: u64,
    /// Device flushes performed.
    pub flushes: u64,
    /// Hardening appends whose flush was absorbed by a concurrent caller's
    /// group-commit flush (flushes saved by coalescing).
    pub coalesced: u64,
    /// Epochs sealed.
    pub epochs_sealed: u64,
}

struct EpochState {
    sealed: u64,
}

struct GroupCommitState {
    /// Sequence number handed to the latest hardening append.
    appended: u64,
    /// Highest sequence number known durable.
    hardened: u64,
    /// True while a leader's device flush is in flight.
    flushing: bool,
}

/// Cross-transaction group commit over one [`LogDevice`].
///
/// Callers append records that must be durable before they may proceed
/// (2PC prepare votes, coordinator commit decisions, synchronous commit
/// notifications). Instead of one device flush per record, concurrent
/// callers coalesce: the first waiter becomes the *leader* and flushes the
/// device once for every record appended so far; records that arrive while
/// that flush is in flight are buffered and hardened by a single follow-up
/// flush whose leader is elected among the waiting followers (condvar
/// handoff). Every caller blocks only until *its own* record is durable.
pub struct GroupCommit {
    device: Arc<dyn LogDevice>,
    state: Mutex<GroupCommitState>,
    hardened_cv: Condvar,
    flushes: Arc<Counter>,
    appends: Arc<Counter>,
    coalesced: Arc<Counter>,
}

impl GroupCommit {
    /// A group-commit funnel over `device` with standalone (unregistered)
    /// counters.
    pub fn new(device: Arc<dyn LogDevice>) -> Self {
        GroupCommit::with_counters(
            device,
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
        )
    }

    /// A funnel whose flush/append/coalesce counters live in a metrics
    /// registry (so snapshots expose them by name).
    pub fn with_counters(
        device: Arc<dyn LogDevice>,
        flushes: Arc<Counter>,
        appends: Arc<Counter>,
        coalesced: Arc<Counter>,
    ) -> Self {
        GroupCommit {
            device,
            state: Mutex::new(GroupCommitState {
                appended: 0,
                hardened: 0,
                flushing: false,
            }),
            hardened_cv: Condvar::new(),
            flushes,
            appends,
            coalesced,
        }
    }

    /// Appends `records` and blocks until they are durable, coalescing the
    /// flush with concurrent callers. The records are appended atomically
    /// with the sequence assignment, so the durable log is always a prefix
    /// of the append order — a crash can lose an unacknowledged suffix but
    /// never punch a hole.
    pub fn append_durable(&self, records: &[LogRecord]) {
        let my_seq = self.append(records);
        self.wait_durable_seq(my_seq);
    }

    /// The append half of [`append_durable`](GroupCommit::append_durable):
    /// puts `records` into the log order and returns the funnel sequence
    /// number to later pass to
    /// [`wait_durable_seq`](GroupCommit::wait_durable_seq). The records are
    /// **not yet durable** when this returns — a caller must not
    /// acknowledge anything that depends on them until the wait completes.
    /// Splitting the two halves is what lets a shard worker pipeline: it
    /// appends one prepare's record, hands the sequence to a completion
    /// loop, and immediately starts the next transaction's body.
    pub fn append(&self, records: &[LogRecord]) -> u64 {
        let my_seq = {
            let mut state = self.state.lock();
            for record in records {
                self.device.append(record);
            }
            state.appended += 1;
            state.appended
        };
        self.appends.inc();
        my_seq
    }

    /// Blocks until every record appended at or below `seq` is durable.
    /// The first waiter becomes the flush leader exactly as in
    /// [`append_durable`](GroupCommit::append_durable); a completion loop
    /// waiting on the highest sequence of a batch hardens the whole batch
    /// with (at most) one device flush.
    pub fn wait_durable_seq(&self, my_seq: u64) {
        let mut led = false;
        let mut state = self.state.lock();
        loop {
            if state.hardened >= my_seq {
                if !led {
                    // Another caller's flush carried this record.
                    self.coalesced.inc();
                }
                return;
            }
            if state.flushing {
                // A flush is in flight but started before this record was
                // appended; wait for the leader to finish, then re-check
                // (one of the waiters becomes the follow-up leader).
                self.hardened_cv.wait(&mut state);
                continue;
            }
            // Leader: flush everything appended so far with one device
            // flush, then wake every waiter at or below the target.
            state.flushing = true;
            let target = state.appended;
            drop(state);
            self.device.flush();
            self.flushes.inc();
            led = true;
            state = self.state.lock();
            state.flushing = false;
            if target > state.hardened {
                state.hardened = target;
            }
            self.hardened_cv.notify_all();
        }
    }

    /// True when every record appended at or below `seq` is already
    /// durable (no wait needed).
    pub fn is_hardened(&self, seq: u64) -> bool {
        self.state.lock().hardened >= seq
    }

    /// Device flushes performed by group leaders.
    pub fn flush_count(&self) -> u64 {
        self.flushes.get()
    }

    /// Hardening appends that went through the funnel.
    pub fn append_count(&self) -> u64 {
        self.appends.get()
    }

    /// Appends that were hardened by another caller's flush (the group
    /// commit win: `coalesced / appends` of the flushes were saved).
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced.get()
    }
}

/// The durability manager shared by the whole database instance.
pub struct DurabilityManager {
    device: Arc<dyn LogDevice>,
    policy: FlushPolicy,
    group: GroupCommit,
    coalesce: bool,
    current_epoch: AtomicU64,
    sealed: Mutex<EpochState>,
    sealed_cv: Condvar,
    stop: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    operations: Arc<Counter>,
    precommits: Arc<Counter>,
    prepares: Arc<Counter>,
    commits: Arc<Counter>,
    flushes: Arc<Counter>,
    epochs_sealed: Arc<Counter>,
    /// Highest funnel sequence holding a *deferred* commit record — a
    /// commit whose versions are already published but whose flush is
    /// still pending. The read barrier below gates read-only
    /// acknowledgements on it.
    last_deferred_commit_seq: AtomicU64,
}

impl std::fmt::Debug for DurabilityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityManager")
            .field("policy", &self.policy)
            .field("current_epoch", &self.current_epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl DurabilityManager {
    /// Creates a manager over the given device with group commit enabled.
    /// When the policy is asynchronous a background flusher thread is
    /// started; call [`DurabilityManager::shutdown`] (or drop the manager)
    /// to stop it.
    pub fn new(device: Arc<dyn LogDevice>, policy: FlushPolicy) -> Arc<Self> {
        DurabilityManager::with_options(device, policy, true)
    }

    /// [`DurabilityManager::new`] with explicit control over flush
    /// coalescing. `coalesce: false` restores the one-flush-per-record
    /// baseline the benches use as the legacy comparison point.
    pub fn with_options(
        device: Arc<dyn LogDevice>,
        policy: FlushPolicy,
        coalesce: bool,
    ) -> Arc<Self> {
        DurabilityManager::with_metrics(device, policy, coalesce, &MetricsRegistry::new())
    }

    /// [`DurabilityManager::with_options`] with the durability counters
    /// registered in `metrics` (under `durability.*` names), so a metrics
    /// snapshot exposes them without a separate stats plumbing path. The
    /// counters are live regardless of whether the registry's histograms
    /// are enabled: [`DurabilityManager::stats`] must always be correct.
    pub fn with_metrics(
        device: Arc<dyn LogDevice>,
        policy: FlushPolicy,
        coalesce: bool,
        metrics: &MetricsRegistry,
    ) -> Arc<Self> {
        let mgr = Arc::new(DurabilityManager {
            device: Arc::clone(&device),
            group: GroupCommit::with_counters(
                device,
                metrics.counter("durability.group_flushes"),
                metrics.counter("durability.group_appends"),
                metrics.counter("durability.coalesced"),
            ),
            coalesce,
            policy: policy.clone(),
            current_epoch: AtomicU64::new(1),
            sealed: Mutex::new(EpochState { sealed: 0 }),
            sealed_cv: Condvar::new(),
            stop: Arc::new(AtomicBool::new(false)),
            flusher: Mutex::new(None),
            operations: metrics.counter("durability.operations"),
            precommits: metrics.counter("durability.precommits"),
            prepares: metrics.counter("durability.prepares"),
            commits: metrics.counter("durability.commits"),
            flushes: metrics.counter("durability.flushes"),
            epochs_sealed: metrics.counter("durability.epochs_sealed"),
            last_deferred_commit_seq: AtomicU64::new(0),
        });
        if let FlushPolicy::Asynchronous { epoch_interval } = policy {
            let weak = Arc::downgrade(&mgr);
            let stop = Arc::clone(&mgr.stop);
            let handle = std::thread::Builder::new()
                .name("tebaldi-gcp-flusher".to_string())
                .spawn(move || {
                    // Sleep in small slices so shutdown (which joins this
                    // thread) stays prompt even for long GCP epochs.
                    let slice = Duration::from_millis(5).min(epoch_interval);
                    let mut elapsed = Duration::ZERO;
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(slice);
                        elapsed += slice;
                        if elapsed < epoch_interval {
                            continue;
                        }
                        elapsed = Duration::ZERO;
                        if let Some(mgr) = weak.upgrade() {
                            mgr.seal_current_epoch();
                        } else {
                            break;
                        }
                    }
                })
                .expect("spawn GCP flusher");
            *mgr.flusher.lock() = Some(handle);
        }
        mgr
    }

    /// Creates a disabled manager (no logging at all).
    pub fn disabled() -> Arc<Self> {
        DurabilityManager::new(
            Arc::new(crate::wal::MemLogDevice::new()),
            FlushPolicy::Disabled,
        )
    }

    /// True when durability is enabled.
    pub fn is_enabled(&self) -> bool {
        self.policy != FlushPolicy::Disabled
    }

    /// The current GCP epoch id.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch.load(Ordering::Relaxed)
    }

    /// The latest sealed (durably flushed) epoch id.
    pub fn sealed_epoch(&self) -> u64 {
        self.sealed.lock().sealed
    }

    /// Group-commit entry point: appends `records` and returns once they
    /// are durable. Concurrent callers share device flushes — records that
    /// arrive while a flush is in flight are buffered and hardened by a
    /// single follow-up flush, with each caller blocking only until *its*
    /// record is durable; a multi-record call hardens the whole batch with
    /// one flush. With coalescing disabled this degenerates to the legacy
    /// one-flush-per-record path.
    pub fn flush_coalesced(&self, records: &[LogRecord]) {
        if self.coalesce {
            self.group.append_durable(records);
        } else {
            for record in records {
                self.device.append(record);
                self.device.flush();
                self.flushes.inc();
            }
        }
    }

    /// Hardens one transaction's whole commit — every per-data-server
    /// precommit record plus the commit notification — as a single batch:
    /// one (coalesced) flush under the synchronous policy instead of one
    /// per record. The blocking half of
    /// [`commit_transaction_deferred`](DurabilityManager::commit_transaction_deferred).
    pub fn commit_transaction(
        &self,
        txn: TxnId,
        by_shard: Vec<(u32, Vec<(Key, Value)>)>,
        commit_ts: Timestamp,
    ) {
        self.commit_transaction_stamped(txn, by_shard, commit_ts, 0);
    }

    /// [`commit_transaction`](DurabilityManager::commit_transaction)
    /// carrying the cluster-wide HLC stamp persisted in the commit record.
    pub fn commit_transaction_stamped(
        &self,
        txn: TxnId,
        by_shard: Vec<(u32, Vec<(Key, Value)>)>,
        commit_ts: Timestamp,
        hlc: u64,
    ) {
        if let Some(seq) = self.commit_transaction_deferred_stamped(txn, by_shard, commit_ts, hlc) {
            self.wait_group_seq(seq);
        }
    }

    /// The pipelined variant of
    /// [`commit_transaction`](DurabilityManager::commit_transaction):
    /// appends the whole batch into the group-commit funnel *without
    /// waiting for the flush* and returns the funnel sequence to pass to
    /// [`wait_group_seq`](DurabilityManager::wait_group_seq) before
    /// acknowledging the commit to the client. Deferring only the wait is
    /// safe: the records take their place in the log order immediately, so
    /// any dependent transaction's flush hardens them first (the durable
    /// log is always a prefix of the append order) — a crash can lose an
    /// *unacknowledged* suffix but never an acknowledged commit or a
    /// read-from edge. Returns `None` when there is nothing left to wait
    /// for: durability disabled, a non-synchronous policy (the background
    /// sealer owns the flush), or coalescing off (flushed synchronously
    /// before returning, the legacy baseline).
    pub fn commit_transaction_deferred(
        &self,
        txn: TxnId,
        by_shard: Vec<(u32, Vec<(Key, Value)>)>,
        commit_ts: Timestamp,
    ) -> Option<u64> {
        self.commit_transaction_deferred_stamped(txn, by_shard, commit_ts, 0)
    }

    /// [`commit_transaction_deferred`](DurabilityManager::commit_transaction_deferred)
    /// carrying the cluster-wide HLC stamp persisted in the commit record.
    pub fn commit_transaction_deferred_stamped(
        &self,
        txn: TxnId,
        by_shard: Vec<(u32, Vec<(Key, Value)>)>,
        commit_ts: Timestamp,
        hlc: u64,
    ) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let epoch = if self.policy == FlushPolicy::Synchronous {
            0
        } else {
            self.current_epoch()
        };
        let participants = by_shard.len() as u32;
        let mut records = Vec::with_capacity(by_shard.len() + 1);
        for (shard, writes) in by_shard {
            self.precommits.inc();
            records.push(LogRecord::Precommit {
                txn,
                participants,
                shard,
                gcp_epoch: epoch,
                writes,
            });
        }
        self.commits.inc();
        records.push(LogRecord::Commit {
            txn,
            global_epoch: epoch,
            commit_ts,
            hlc,
        });
        if self.policy != FlushPolicy::Synchronous {
            for record in &records {
                self.device.append(record);
            }
            return None;
        }
        if self.coalesce {
            let seq = self.group.append(&records);
            self.last_deferred_commit_seq
                .fetch_max(seq, Ordering::Relaxed);
            Some(seq)
        } else {
            self.flush_coalesced(&records);
            None
        }
    }

    /// The read-only acknowledgement barrier of the pipelined path. A
    /// deferred commit publishes its versions *before* its flush, so a
    /// read-only transaction may compute its result from
    /// committed-but-not-yet-durable data; writing dependents are safe
    /// automatically (their own records append later, and the durable log
    /// is a prefix of append order), but a read-only transaction appends
    /// nothing — its acknowledgement must instead wait until every
    /// published deferred commit so far is durable, or a crash could lose
    /// data an acknowledged read already reflected. Returns the funnel
    /// sequence to pass to [`wait_group_seq`](DurabilityManager::wait_group_seq),
    /// or `None` when there is nothing unflushed to wait for (also under
    /// non-synchronous policies, where acknowledgements are decoupled from
    /// durability by design, and with coalescing off, where every commit
    /// flushed inline).
    pub fn read_barrier(&self) -> Option<u64> {
        if self.policy != FlushPolicy::Synchronous || !self.coalesce {
            return None;
        }
        let seq = self.last_deferred_commit_seq.load(Ordering::Relaxed);
        if seq == 0 || self.group.is_hardened(seq) {
            None
        } else {
            Some(seq)
        }
    }

    /// Logs one write operation.
    pub fn log_operation(&self, txn: TxnId, key: Key, value: &Value) {
        if !self.is_enabled() {
            return;
        }
        self.operations.inc();
        self.device.append(&LogRecord::Operation {
            txn,
            key,
            value: value.clone(),
        });
    }

    /// Logs the precommit record of one participating shard and returns the
    /// GCP epoch id assigned to it. Under the synchronous policy this call
    /// also flushes.
    pub fn precommit(
        &self,
        txn: TxnId,
        shard: u32,
        participants: u32,
        writes: Vec<(Key, Value)>,
    ) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        // Synchronous flushing needs no GCP epochs: every record is durable
        // before the call returns, so recovery must never epoch-discard it.
        // Epoch 0 marks "durable by policy" (recovery's unsealed-epoch rule
        // only discards records with an epoch above the last seal).
        let epoch = if self.policy == FlushPolicy::Synchronous {
            0
        } else {
            self.current_epoch()
        };
        self.precommits.inc();
        let record = LogRecord::Precommit {
            txn,
            participants,
            shard,
            gcp_epoch: epoch,
            writes,
        };
        if self.policy == FlushPolicy::Synchronous {
            self.flush_coalesced(std::slice::from_ref(&record));
        } else {
            self.device.append(&record);
        }
        epoch
    }

    /// Logs the commit notification. `global_epoch` is the maximum of the
    /// epoch ids returned by the participants' precommit calls.
    /// Appends the cross-shard two-phase-commit *prepare* record for local
    /// transaction `txn` acting for cluster-global transaction `global`, and
    /// flushes it synchronously regardless of the flushing policy: the shard
    /// may vote "yes" to the coordinator only once the prepare record is
    /// durable. Returns `true` when a record was written (durability on).
    pub fn prepare(&self, txn: TxnId, global: u64, writes: Vec<(Key, Value)>) -> bool {
        if !self.is_enabled() {
            return false;
        }
        if let Some(seq) = self.prepare_deferred(txn, global, writes) {
            self.wait_group_seq(seq);
        }
        true
    }

    /// The pipelined variant of [`prepare`](DurabilityManager::prepare):
    /// appends the prepare record into the group-commit funnel *without
    /// waiting for the flush* and returns the funnel sequence to pass to
    /// [`wait_group_seq`](DurabilityManager::wait_group_seq). The record —
    /// and therefore the shard's yes-vote — is durable only after that wait
    /// completes. Returns `None` when there is nothing left to wait for:
    /// durability is disabled (no record at all), or flush coalescing is
    /// off (the legacy baseline), in which case the record was flushed
    /// synchronously before returning.
    pub fn prepare_deferred(
        &self,
        txn: TxnId,
        global: u64,
        writes: Vec<(Key, Value)>,
    ) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        self.prepares.inc();
        let record = LogRecord::Prepare {
            txn,
            global,
            writes,
        };
        if self.coalesce {
            Some(self.group.append(std::slice::from_ref(&record)))
        } else {
            self.device.append(&record);
            self.device.flush();
            self.flushes.inc();
            None
        }
    }

    /// Blocks until the funnel sequence returned by
    /// [`prepare_deferred`](DurabilityManager::prepare_deferred) is durable,
    /// electing a group-commit flush leader if no flush is in flight.
    /// Waiting on the highest sequence of a batch hardens the whole batch
    /// with at most one device flush.
    pub fn wait_group_seq(&self, seq: u64) {
        self.group.wait_durable_seq(seq);
    }

    /// Appends an abort marker resolving an earlier prepare record, so
    /// recovery does not have to treat the transaction as in doubt.
    pub fn log_abort(&self, txn: TxnId) {
        if !self.is_enabled() {
            return;
        }
        let record = LogRecord::Abort { txn };
        if self.policy == FlushPolicy::Synchronous {
            self.flush_coalesced(std::slice::from_ref(&record));
        } else {
            self.device.append(&record);
        }
    }

    pub fn commit(&self, txn: TxnId, global_epoch: u64, commit_ts: Timestamp) {
        self.commit_stamped(txn, global_epoch, commit_ts, 0);
    }

    /// [`commit`](DurabilityManager::commit) carrying the cluster-wide HLC
    /// stamp persisted in the commit record (2PC phase two delivers the
    /// coordinator's decision stamp here).
    pub fn commit_stamped(&self, txn: TxnId, global_epoch: u64, commit_ts: Timestamp, hlc: u64) {
        if !self.is_enabled() {
            return;
        }
        // GCP rule: a data server observing a larger global epoch advances
        // its own epoch before running any commit phase, guaranteeing that a
        // reader's epoch is never smaller than its writer's.
        let mut cur = self.current_epoch.load(Ordering::Relaxed);
        while global_epoch > cur {
            match self.current_epoch.compare_exchange(
                cur,
                global_epoch,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.commits.inc();
        let record = LogRecord::Commit {
            txn,
            global_epoch,
            commit_ts,
            hlc,
        };
        if self.policy == FlushPolicy::Synchronous {
            self.flush_coalesced(std::slice::from_ref(&record));
        } else {
            self.device.append(&record);
        }
    }

    /// Seals the current epoch: flushes the device, records the seal marker
    /// and wakes up waiters. Invoked by the background flusher and by
    /// [`DurabilityManager::shutdown`].
    pub fn seal_current_epoch(&self) {
        if !self.is_enabled() {
            return;
        }
        let sealing = self.current_epoch.fetch_add(1, Ordering::Relaxed);
        self.device.append(&LogRecord::EpochSeal { epoch: sealing });
        self.device.flush();
        self.flushes.inc();
        self.epochs_sealed.inc();
        let mut sealed = self.sealed.lock();
        if sealing > sealed.sealed {
            sealed.sealed = sealing;
        }
        self.sealed_cv.notify_all();
    }

    /// Blocks until the given epoch has been sealed (the transaction that
    /// received this epoch at precommit time is durable), or until the
    /// timeout elapses. Returns `true` when durable.
    pub fn wait_durable(&self, epoch: u64, timeout: Duration) -> bool {
        if !self.is_enabled() || self.policy == FlushPolicy::Synchronous || epoch == 0 {
            return true;
        }
        let mut sealed = self.sealed.lock();
        if sealed.sealed >= epoch {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        while sealed.sealed < epoch {
            if self.sealed_cv.wait_until(&mut sealed, deadline).timed_out() {
                return sealed.sealed >= epoch;
            }
        }
        true
    }

    /// Stops the background flusher (sealing one final epoch first).
    pub fn shutdown(&self) {
        if self.is_enabled() {
            self.seal_current_epoch();
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }

    /// Counter snapshot. `flushes` counts device flushes from every source:
    /// epoch seals, uncoalesced synchronous flushes, and group-commit
    /// leader flushes.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            operations: self.operations.get(),
            precommits: self.precommits.get(),
            prepares: self.prepares.get(),
            commits: self.commits.get(),
            flushes: self.flushes.get() + self.group.flush_count(),
            coalesced: self.group.coalesced_count(),
            epochs_sealed: self.epochs_sealed.get(),
        }
    }

    /// The underlying device (used by recovery).
    pub fn device(&self) -> Arc<dyn LogDevice> {
        Arc::clone(&self.device)
    }
}

impl Drop for DurabilityManager {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;
    use crate::wal::MemLogDevice;

    fn k(id: u64) -> Key {
        Key::simple(TableId(0), id)
    }

    #[test]
    fn disabled_manager_is_noop() {
        let mgr = DurabilityManager::disabled();
        mgr.log_operation(TxnId(1), k(1), &Value::Int(1));
        assert_eq!(mgr.precommit(TxnId(1), 0, 1, vec![]), 0);
        mgr.commit(TxnId(1), 0, Timestamp(1));
        assert_eq!(mgr.stats().precommits, 0);
        assert!(mgr.wait_durable(0, Duration::from_millis(1)));
    }

    #[test]
    fn synchronous_flushes_on_precommit() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        mgr.log_operation(TxnId(1), k(1), &Value::Int(5));
        let epoch = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(5))]);
        mgr.commit(TxnId(1), epoch, Timestamp(3));
        // Everything appended before the flush is durable.
        assert!(dev.read_back().len() >= 2);
        assert!(mgr.wait_durable(epoch, Duration::from_millis(1)));
    }

    #[test]
    fn asynchronous_epoch_sealing() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(
            dev.clone(),
            FlushPolicy::Asynchronous {
                epoch_interval: Duration::from_millis(5),
            },
        );
        let epoch = mgr.precommit(TxnId(1), 0, 1, vec![(k(1), Value::Int(5))]);
        assert!(epoch >= 1);
        assert!(
            mgr.wait_durable(epoch, Duration::from_secs(2)),
            "background flusher must seal the epoch"
        );
        assert!(mgr.sealed_epoch() >= epoch);
        mgr.shutdown();
        let records = dev.read_back();
        assert!(records
            .iter()
            .any(|r| matches!(r, LogRecord::EpochSeal { .. })));
    }

    #[test]
    fn group_commit_coalesces_concurrent_prepares() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev.clone(), FlushPolicy::Synchronous);
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    mgr.prepare(TxnId(i + 1), 100 + i, vec![(k(i), Value::Int(i as i64))]);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every acknowledged prepare is durable the moment the call returns.
        let durable = dev.read_back();
        assert_eq!(
            durable
                .iter()
                .filter(|r| matches!(r, LogRecord::Prepare { .. }))
                .count(),
            8
        );
        let stats = mgr.stats();
        assert_eq!(stats.prepares, 8);
        // Coalescing bookkeeping: every hardening append either led a flush
        // or piggybacked on a concurrent leader's flush.
        assert_eq!(
            mgr.group.append_count(),
            mgr.group.flush_count() + mgr.group.coalesced_count()
        );
        assert!(stats.flushes <= 8, "never more flushes than records");
    }

    #[test]
    fn uncoalesced_manager_flushes_per_record() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::with_options(dev, FlushPolicy::Synchronous, false);
        for i in 0..4u64 {
            mgr.prepare(TxnId(i + 1), i, vec![(k(i), Value::Int(1))]);
        }
        let stats = mgr.stats();
        assert_eq!(stats.flushes, 4, "legacy path: one flush per prepare");
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn group_commit_durable_log_is_a_prefix_of_append_order() {
        let dev = Arc::new(MemLogDevice::new());
        let group = GroupCommit::new(Arc::clone(&dev) as Arc<dyn LogDevice>);
        // Two acknowledged records, then two buffered-but-unacknowledged
        // ones, then a crash: recovery must see exactly the acknowledged
        // prefix — an unacknowledged suffix may vanish, a hole may not.
        for i in 1..=2u64 {
            group.append_durable(&[LogRecord::Abort { txn: TxnId(i) }]);
        }
        dev.append(&LogRecord::Abort { txn: TxnId(3) });
        dev.append(&LogRecord::Abort { txn: TxnId(4) });
        dev.crash();
        let survivors: Vec<u64> = dev
            .read_back()
            .into_iter()
            .map(|r| match r {
                LogRecord::Abort { txn } => txn.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(survivors, vec![1, 2]);
    }

    #[test]
    fn commit_advances_epoch_to_global() {
        let dev = Arc::new(MemLogDevice::new());
        let mgr = DurabilityManager::new(dev, FlushPolicy::Synchronous);
        assert_eq!(mgr.current_epoch(), 1);
        mgr.commit(TxnId(1), 7, Timestamp(1));
        assert_eq!(mgr.current_epoch(), 7);
        // Smaller global epochs never move the epoch backwards.
        mgr.commit(TxnId(2), 3, Timestamp(2));
        assert_eq!(mgr.current_epoch(), 7);
    }
}
