//! `tebaldi-obs`: the observability substrate of the Tebaldi reproduction.
//!
//! Chapter 5's auto-configuration is driven by measurement — the paper's
//! latency-based profiler (fig 5.5) and its measured profiling overhead
//! (fig 5.17) are first-class results — so the runtime needs a cheap,
//! always-available measurement layer rather than ad-hoc counters. This
//! crate provides:
//!
//! * [`metrics`] — a registry of relaxed-atomic counters/max-gauges and
//!   striped log-bucketed histograms with serializable, mergeable
//!   snapshots and Prometheus-style text exposition;
//! * [`trace`] — per-transaction trace ids propagated through shard
//!   requests, with spans recorded into bounded ring buffers, sampling by
//!   construction (unsampled id `0` short-circuits every call), and a
//!   slow-transaction threshold that dumps full structured traces.
//!
//! Higher layers (storage durability, the shard workers, the 2PC
//! coordinator, the benchmark driver) all record through these types, so
//! there is exactly one histogram implementation and one trace format in
//! the tree.

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MaxGauge, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{
    collect, dropped_spans, maybe_dump_slow, now_ns, record_span, scoped_trace_id,
    set_slow_threshold_ns, set_slow_threshold_ns_scoped, take_slow_traces, take_slow_traces_scoped,
    trace_scope_of, SlowTrace, SpanRecord, TraceCtx, TRACE_SCOPE_SHIFT,
};
