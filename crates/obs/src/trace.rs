//! Per-transaction distributed traces.
//!
//! A [`TraceCtx`] is a single `u64` trace id allocated at the coordinator
//! and propagated with every shard request (`0` means *unsampled* — every
//! recording call bails on the first branch, which is what keeps default
//! sampling cheap). Each layer that touches a sampled transaction records
//! [`SpanRecord`]s — coordinator phases, shard queue wait, body execution,
//! hardening — into a process-global sink of bounded, striped ring
//! buffers. Nothing is ever allocated per span beyond the ring slot, and
//! span names/statuses are `&'static str` (mechanism strings from
//! `CcError::mechanism` qualify).
//!
//! The sink is per-process: in the loopback TCP deployment coordinator and
//! shards share it, so [`collect`] reassembles a full end-to-end trace. In
//! a genuinely multi-process deployment each process holds its own spans
//! for the shared trace id, ready for an external collector.
//!
//! A *slow-transaction threshold* can be armed ([`set_slow_threshold_ns`]):
//! when a finished transaction's wall time crosses it, the full structured
//! trace is copied into a small bounded dump buffer
//! ([`take_slow_traces`]), so a latency outlier leaves evidence even after
//! the ring has wrapped.

use parking_lot::Mutex;
use serde::Json;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Bits of a trace id reserved for the sequence number; the bits above
/// carry the *scope* tag (a per-cluster id). The sink is process-global,
/// so two clusters in one process share its rings; the scope in the id's
/// high bits keeps their traces distinguishable — ids never collide across
/// scopes, per-scope slow thresholds don't fight, and a scoped drain only
/// takes its own dumps — without widening the wire format (the id is still
/// one `u64`).
pub const TRACE_SCOPE_SHIFT: u32 = 40;

/// Builds a trace id carrying `scope` in its high bits. `seq` must be
/// nonzero (0 means unsampled) and wraps within 2^40 ids per scope.
#[inline]
pub fn scoped_trace_id(scope: u64, seq: u64) -> u64 {
    (scope << TRACE_SCOPE_SHIFT) | (seq & ((1u64 << TRACE_SCOPE_SHIFT) - 1))
}

/// The scope tag embedded in a trace id's high bits (0 = unscoped).
#[inline]
pub fn trace_scope_of(trace_id: u64) -> u64 {
    trace_id >> TRACE_SCOPE_SHIFT
}

/// Spans each ring-buffer stripe retains before evicting the oldest.
const RING_CAPACITY: usize = 4096;
/// Ring-buffer stripes (threads hash onto one, like histogram stripes).
const STRIPES: usize = 4;
/// Bounded backlog of slow-transaction dumps.
const SLOW_TRACE_CAPACITY: usize = 64;

/// The trace context carried by a shard request: just the trace id.
/// `0` = unsampled (the common case; recording is a no-op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Cluster-wide trace id, `0` when the transaction is not sampled.
    pub trace_id: u64,
}

impl TraceCtx {
    /// The unsampled context.
    pub const NONE: TraceCtx = TraceCtx { trace_id: 0 };

    /// A sampled context with the given id.
    pub fn sampled(trace_id: u64) -> TraceCtx {
        TraceCtx { trace_id }
    }

    /// Whether spans should be recorded for this transaction.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.trace_id != 0
    }
}

/// One recorded span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// Static span name (e.g. `"coord.prepare_fanout"`, `"shard.execute"`).
    pub name: &'static str,
    /// Shard index, or `-1` for coordinator-side spans.
    pub shard: i32,
    /// Span start, nanoseconds on the process trace clock ([`now_ns`]).
    pub start_ns: u64,
    /// Span end, same clock.
    pub end_ns: u64,
    /// Outcome tag: `"ok"`, a `CcError::mechanism()` string, `"timeout"`, …
    pub status: &'static str,
}

impl SpanRecord {
    /// JSON form of the span (for slow-trace dumps and test tooling).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("trace_id".to_string(), Json::U(self.trace_id as u128)),
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("shard".to_string(), serde::Serialize::to_json(&self.shard)),
            ("start_ns".to_string(), Json::U(self.start_ns as u128)),
            ("end_ns".to_string(), Json::U(self.end_ns as u128)),
            ("status".to_string(), Json::Str(self.status.to_string())),
        ])
    }
}

/// A dumped slow transaction: its id, total wall time, and full trace.
#[derive(Clone, Debug)]
pub struct SlowTrace {
    /// The transaction's trace id.
    pub trace_id: u64,
    /// End-to-end wall time that crossed the threshold.
    pub total_ns: u64,
    /// Every span recorded for the trace, ascending by start.
    pub spans: Vec<SpanRecord>,
}

impl SlowTrace {
    /// JSON form of the dump.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("trace_id".to_string(), Json::U(self.trace_id as u128)),
            ("total_ns".to_string(), Json::U(self.total_ns as u128)),
            (
                "spans".to_string(),
                Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect()),
            ),
        ])
    }
}

struct TraceSink {
    stripes: Vec<Mutex<VecDeque<SpanRecord>>>,
    /// Spans evicted from full rings (visibility into ring pressure).
    dropped: AtomicU64,
    /// Slow-transaction threshold; 0 disarms the dump. The unscoped
    /// (process-wide) default, used for traces whose scope has no entry in
    /// `scoped_thresholds`.
    slow_threshold_ns: AtomicU64,
    /// Per-scope slow thresholds, so concurrent clusters in one process
    /// arm their own limits instead of overwriting each other's.
    scoped_thresholds: Mutex<HashMap<u64, u64>>,
    slow_traces: Mutex<VecDeque<SlowTrace>>,
}

fn sink() -> &'static TraceSink {
    static SINK: OnceLock<TraceSink> = OnceLock::new();
    SINK.get_or_init(|| TraceSink {
        stripes: (0..STRIPES)
            .map(|_| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
            .collect(),
        dropped: AtomicU64::new(0),
        slow_threshold_ns: AtomicU64::new(0),
        scoped_thresholds: Mutex::new(HashMap::new()),
        slow_traces: Mutex::new(VecDeque::new()),
    })
}

/// Nanoseconds on the process-wide trace clock (anchored at first use).
/// All spans in one process share this clock, so their intervals are
/// directly comparable.
#[inline]
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The stripe this thread records into (round-robin at first use).
#[inline]
fn stripe_id() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|cell| {
        let mut id = cell.get();
        if id == usize::MAX {
            id = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            cell.set(id);
        }
        id
    })
}

/// Records one span; a no-op for the unsampled context.
#[inline]
pub fn record_span(
    ctx: TraceCtx,
    name: &'static str,
    shard: i32,
    start_ns: u64,
    end_ns: u64,
    status: &'static str,
) {
    if !ctx.is_sampled() {
        return;
    }
    let record = SpanRecord {
        trace_id: ctx.trace_id,
        name,
        shard,
        start_ns,
        end_ns,
        status,
    };
    let sink = sink();
    let mut ring = sink.stripes[stripe_id()].lock();
    if ring.len() >= RING_CAPACITY {
        ring.pop_front();
        sink.dropped.fetch_add(1, Ordering::Relaxed);
    }
    ring.push_back(record);
}

/// Every span currently retained for `trace_id`, ascending by start time.
/// Spans evicted by ring wrap-around are gone; recent traces are complete.
pub fn collect(trace_id: u64) -> Vec<SpanRecord> {
    if trace_id == 0 {
        return Vec::new();
    }
    let sink = sink();
    let mut spans: Vec<SpanRecord> = sink
        .stripes
        .iter()
        .flat_map(|stripe| {
            stripe
                .lock()
                .iter()
                .filter(|s| s.trace_id == trace_id)
                .copied()
                .collect::<Vec<_>>()
        })
        .collect();
    spans.sort_by_key(|s| (s.start_ns, s.end_ns));
    spans
}

/// Spans evicted from full ring stripes so far (ring-pressure telemetry).
pub fn dropped_spans() -> u64 {
    sink().dropped.load(Ordering::Relaxed)
}

/// Arms (or, with 0, disarms) the process-wide slow-transaction dump
/// threshold. Traces whose scope armed its own threshold
/// ([`set_slow_threshold_ns_scoped`]) use that instead.
pub fn set_slow_threshold_ns(threshold_ns: u64) {
    sink()
        .slow_threshold_ns
        .store(threshold_ns, Ordering::Relaxed);
}

/// Arms (or, with 0, disarms) the slow-transaction threshold for one trace
/// scope only. Scope 0 (unscoped ids) falls through to the process-wide
/// threshold.
pub fn set_slow_threshold_ns_scoped(scope: u64, threshold_ns: u64) {
    if scope == 0 {
        set_slow_threshold_ns(threshold_ns);
        return;
    }
    let mut map = sink().scoped_thresholds.lock();
    if threshold_ns == 0 {
        map.remove(&scope);
    } else {
        map.insert(scope, threshold_ns);
    }
}

/// Called once per sampled transaction at completion: when `total_ns`
/// crosses the armed threshold (the trace's scope threshold, or the
/// process-wide one when the scope armed none), snapshots the full trace
/// into the bounded slow-trace backlog.
pub fn maybe_dump_slow(ctx: TraceCtx, total_ns: u64) {
    if !ctx.is_sampled() {
        return;
    }
    let sink = sink();
    let scope = trace_scope_of(ctx.trace_id);
    let scoped = if scope != 0 {
        sink.scoped_thresholds.lock().get(&scope).copied()
    } else {
        None
    };
    let threshold = scoped.unwrap_or_else(|| sink.slow_threshold_ns.load(Ordering::Relaxed));
    if threshold == 0 || total_ns < threshold {
        return;
    }
    let spans = collect(ctx.trace_id);
    let mut backlog = sink.slow_traces.lock();
    if backlog.len() >= SLOW_TRACE_CAPACITY {
        backlog.pop_front();
    }
    backlog.push_back(SlowTrace {
        trace_id: ctx.trace_id,
        total_ns,
        spans,
    });
}

/// Drains the accumulated slow-transaction dumps — every scope's. Prefer
/// [`take_slow_traces_scoped`] when other clusters may share the process
/// (a global drain steals their dumps).
pub fn take_slow_traces() -> Vec<SlowTrace> {
    sink().slow_traces.lock().drain(..).collect()
}

/// Drains only the slow-transaction dumps whose trace ids carry `scope`;
/// other scopes' dumps stay in the backlog for their owners.
pub fn take_slow_traces_scoped(scope: u64) -> Vec<SlowTrace> {
    let mut backlog = sink().slow_traces.lock();
    let mut taken = Vec::new();
    backlog.retain(|dump| {
        if trace_scope_of(dump.trace_id) == scope {
            taken.push(dump.clone());
            false
        } else {
            true
        }
    });
    taken
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsampled_records_nothing() {
        record_span(TraceCtx::NONE, "noop", -1, 0, 1, "ok");
        assert!(collect(0).is_empty());
    }

    #[test]
    fn record_and_collect_sorted() {
        let ctx = TraceCtx::sampled(0xfeed_0001);
        record_span(ctx, "b", 1, 20, 30, "ok");
        record_span(ctx, "a", -1, 10, 40, "ok");
        let spans = collect(ctx.trace_id);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[0].shard, -1);
    }

    #[test]
    fn slow_trace_dump_thresholds() {
        let ctx = TraceCtx::sampled(0xfeed_0002);
        record_span(ctx, "whole", -1, 0, 5_000_000, "ok");
        set_slow_threshold_ns(1_000_000);
        maybe_dump_slow(ctx, 500_000);
        maybe_dump_slow(TraceCtx::NONE, u64::MAX);
        maybe_dump_slow(ctx, 5_000_000);
        set_slow_threshold_ns(0);
        let dumps = take_slow_traces();
        let dump = dumps
            .iter()
            .find(|d| d.trace_id == ctx.trace_id)
            .expect("slow trace dumped");
        assert_eq!(dump.total_ns, 5_000_000);
        assert!(dump.spans.iter().any(|s| s.name == "whole"));
        assert!(take_slow_traces().is_empty(), "drained");
        let json = dump.to_json();
        assert!(json.get("spans").is_some());
    }

    #[test]
    fn scoped_thresholds_and_drains_are_isolated() {
        let scope_a = 0xA11CE;
        let scope_b = 0xB0B;
        let ctx_a = TraceCtx::sampled(scoped_trace_id(scope_a, 1));
        let ctx_b = TraceCtx::sampled(scoped_trace_id(scope_b, 1));
        assert_ne!(ctx_a.trace_id, ctx_b.trace_id);
        assert_eq!(trace_scope_of(ctx_a.trace_id), scope_a);
        // Same sequence number, different scopes: collect stays disjoint.
        record_span(ctx_a, "a.only", -1, 0, 1, "ok");
        record_span(ctx_b, "b.only", -1, 0, 1, "ok");
        assert!(collect(ctx_a.trace_id).iter().all(|s| s.name == "a.only"));
        // Scope A arms a low threshold, scope B an unreachable one: only
        // A's transaction dumps (whatever the global threshold says —
        // other tests in this process may arm it concurrently).
        set_slow_threshold_ns_scoped(scope_a, 1);
        set_slow_threshold_ns_scoped(scope_b, u64::MAX);
        maybe_dump_slow(ctx_a, 1_000);
        maybe_dump_slow(ctx_b, 1_000);
        set_slow_threshold_ns_scoped(scope_a, 0);
        set_slow_threshold_ns_scoped(scope_b, 0);
        assert!(take_slow_traces_scoped(scope_b).is_empty());
        let dumps = take_slow_traces_scoped(scope_a);
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trace_id, ctx_a.trace_id);
        assert!(take_slow_traces_scoped(scope_a).is_empty(), "drained");
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
