//! The metrics registry: counters, max-gauges, and log-bucketed histograms.
//!
//! Everything here is built for the transaction hot path:
//!
//! * [`Counter`] and [`MaxGauge`] are single relaxed atomics;
//! * [`Histogram`] is a log-bucketed (HDR-style) histogram striped across a
//!   few cache-line-independent shards, so concurrent recorders from
//!   different worker threads do not serialize on one cache line. Recording
//!   is lock-free: one relaxed `fetch_add` into the bucket plus count/sum
//!   bookkeeping. Merging happens only at snapshot time.
//!
//! Buckets cover `0..2^40` nanoseconds (~18 minutes) with 64 sub-buckets
//! per power of two, bounding the relative quantile error at ~1.6%. The
//! exact maximum is tracked separately so `max` never suffers bucketing
//! error.
//!
//! A [`MetricsRegistry`] names instruments and snapshots them into the
//! serializable [`MetricsSnapshot`], which merges across shards and renders
//! as Prometheus-style text. Registries can be created *disabled*:
//! histograms then drop samples at the first branch (the obs-off leg of the
//! overhead benchmark), while counters stay live — they back engine
//! statistics that must always be correct.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter (standalone, not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that keeps the maximum value ever observed.
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// A fresh zeroed gauge (standalone, not registered anywhere).
    pub fn new() -> Self {
        MaxGauge::default()
    }

    /// Raises the gauge to `v` if larger than anything seen so far.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The maximum observed so far.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per power of two.
const SUB_BITS: u32 = 6;
/// Sub-buckets per power of two.
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Highest covered power of two; values at or above 2^(MAX_POW+1) clamp
/// into the top bucket.
const MAX_POW: u32 = 39;
/// Total bucket count: one linear region below 64, then 64 sub-buckets for
/// each power of two from 6 through 39.
const BUCKET_COUNT: usize = SUB_BUCKETS + ((MAX_POW - SUB_BITS + 1) as usize) * SUB_BUCKETS;
/// Number of independent recording stripes (threads hash onto one).
const STRIPES: usize = 4;

/// Maps a value to its bucket index.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    if msb > MAX_POW {
        return BUCKET_COUNT - 1;
    }
    let sub = (value >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
    SUB_BUCKETS + ((msb - SUB_BITS) as usize) * SUB_BUCKETS + sub as usize
}

/// The midpoint of a bucket's value range (its representative value).
fn bucket_value(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let m = SUB_BITS + ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let width = 1u64 << (m - SUB_BITS);
    let low = (1u64 << m) + sub * width;
    low + width / 2
}

/// One recording stripe: an independent set of bucket cells.
struct Stripe {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The stripe this thread records into. Assigned round-robin on first use
/// so recorder threads spread across stripes without hashing per sample.
#[inline]
fn stripe_id() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|cell| {
        let mut id = cell.get();
        if id == usize::MAX {
            id = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            cell.set(id);
        }
        id
    })
}

/// A striped, log-bucketed histogram of `u64` values (nanoseconds by
/// convention). Recording is lock-free and wait-free; snapshots merge the
/// stripes.
pub struct Histogram {
    enabled: AtomicBool,
    stripes: Vec<Stripe>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("enabled", &self.is_enabled())
            .field("count", &self.snapshot().count)
            .finish()
    }
}

impl Histogram {
    /// An enabled histogram.
    pub fn new() -> Self {
        Histogram::with_enabled(true)
    }

    /// A histogram with an explicit enabled flag; a disabled histogram
    /// drops samples at the first branch of [`record`](Histogram::record).
    pub fn with_enabled(enabled: bool) -> Self {
        Histogram {
            enabled: AtomicBool::new(enabled),
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
        }
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one value (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let stripe = &self.stripes[stripe_id()];
        stripe.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(value, Ordering::Relaxed);
        stripe.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds a snapshot's samples into this histogram, exactly: bucket
    /// counts land in their original buckets and count/sum/max carry over
    /// unchanged. Used to merge per-thread recorders (and snapshots that
    /// arrived over the wire) back into a live histogram. Recorded even
    /// when the histogram is disabled — a snapshot holds already-collected
    /// data, not a new sample on the hot path.
    pub fn merge_snapshot(&self, other: &HistogramSnapshot) {
        let stripe = &self.stripes[stripe_id()];
        for &(index, n) in &other.buckets {
            let index = (index as usize).min(BUCKET_COUNT - 1);
            stripe.buckets[index].fetch_add(n, Ordering::Relaxed);
        }
        stripe.count.fetch_add(other.count, Ordering::Relaxed);
        stripe.sum.fetch_add(other.sum, Ordering::Relaxed);
        stripe.max.fetch_max(other.max, Ordering::Relaxed);
    }

    /// Merges the stripes into a serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut dense = vec![0u64; BUCKET_COUNT];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for stripe in &self.stripes {
            for (cell, slot) in stripe.buckets.iter().zip(dense.iter_mut()) {
                *slot += cell.load(Ordering::Relaxed);
            }
            count += stripe.count.load(Ordering::Relaxed);
            sum = sum.saturating_add(stripe.sum.load(Ordering::Relaxed));
            max = max.max(stripe.max.load(Ordering::Relaxed));
        }
        let buckets = dense
            .into_iter()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .map(|(i, n)| (i as u32, n))
            .collect();
        HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A merged, serializable view of a [`Histogram`]: sparse `(bucket index,
/// count)` pairs plus exact count/sum/max.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples (saturating).
    pub sum: u64,
    /// Exact maximum sample (no bucketing error).
    pub max: u64,
    /// Occupied buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (`0.0..=1.0`), within ~1.6% relative
    /// error; returns 0 when empty. The result is capped at the exact
    /// maximum, so `quantile(1.0) == max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            // The top of the distribution is tracked exactly; bucket
            // midpoints would undershoot a max in its bucket's upper half.
            return self.max;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(index, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return bucket_value(index as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A named set of instruments. Cloned handles ([`Arc`]) are cached by
/// callers; the registry lock is only taken at get-or-create and snapshot
/// time, never per sample.
pub struct MetricsRegistry {
    enabled: bool,
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<MaxGauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl MetricsRegistry {
    /// A fully enabled registry.
    pub fn new() -> Self {
        MetricsRegistry::with_enabled(true)
    }

    /// A registry whose histograms drop samples (the obs-off leg).
    /// Counters and gauges stay live: they back engine statistics
    /// (`DurabilityStats`, pipeline stats, `ClusterStats`) whose
    /// correctness is not optional.
    pub fn disabled() -> Self {
        MetricsRegistry::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            counters: Mutex::new(HashMap::new()),
            gauges: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
        }
    }

    /// Whether histograms record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get-or-create the max-gauge `name`.
    pub fn max_gauge(&self, name: &str) -> Arc<MaxGauge> {
        let mut map = self.gauges.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(MaxGauge::new())),
        )
    }

    /// Get-or-create the histogram `name` (created disabled when the
    /// registry is disabled).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_enabled(self.enabled))),
        )
    }

    /// Snapshots every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> = self
            .gauges
            .lock()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// A serializable snapshot of one registry (or a merge of several).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Max-gauge values, ascending by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Merges another snapshot: counters add, gauges max, histograms
    /// merge; instruments unique to either side are kept.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn fold<V: Clone>(
            into: &mut Vec<(String, V)>,
            from: &[(String, V)],
            combine: impl Fn(&mut V, &V),
        ) {
            for (name, value) in from {
                match into.iter_mut().find(|(n, _)| n == name) {
                    Some((_, existing)) => combine(existing, value),
                    None => into.push((name.clone(), value.clone())),
                }
            }
            into.sort_by(|a, b| a.0.cmp(&b.0));
        }
        fold(&mut self.counters, &other.counters, |a, b| *a += *b);
        fold(&mut self.gauges, &other.gauges, |a, b| *a = (*a).max(*b));
        fold(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
    }

    /// Renders the snapshot as Prometheus-style exposition text. Metric
    /// names have `.` replaced with `_`; histograms expose
    /// `_count`/`_sum`/`_max` plus p50/p95/p99 quantile gauges (full
    /// bucket exposition would defeat the point of a human-readable dump).
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", h.p50()));
            out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", h.p95()));
            out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", h.p99()));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_max {}\n", h.max));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(7);
        g.observe(5);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_and_value_are_consistent() {
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            100,
            1_000,
            50_000_000,
            99_000_000,
            (1 << 39) + 12345,
            (1 << 40) - 1,
        ] {
            let idx = bucket_index(v);
            let mid = bucket_value(idx);
            let err = (mid as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(err <= 0.016, "value {v}: bucket mid {mid} off by {err}");
        }
        // Overflow clamps to the top bucket instead of panicking.
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(1 << 40), BUCKET_COUNT - 1);
    }

    #[test]
    fn quantiles_within_error_bound() {
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(ms * 1_000_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 100_000_000);
        let p50_ms = snap.p50() as f64 / 1e6;
        assert!((49.0..=52.0).contains(&p50_ms), "p50 {p50_ms}");
        let p99_ms = snap.p99() as f64 / 1e6;
        assert!(p99_ms >= 98.0, "p99 {p99_ms}");
        assert!((snap.mean() / 1e6 - 50.5).abs() < 0.5);
        assert_eq!(snap.quantile(1.0), snap.max);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::with_enabled(false);
        h.record(42);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn snapshot_merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [1u64, 70, 4_096, 1_000_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 70, 9_999_999] {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn merge_snapshot_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 777, 1_000_000] {
            a.record(v);
        }
        for v in [70u64, 50_000_000] {
            b.record(v);
        }
        let combined = Histogram::new();
        combined.merge_snapshot(&a.snapshot());
        combined.merge_snapshot(&b.snapshot());
        let snap = combined.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 3 + 777 + 1_000_000 + 70 + 50_000_000);
        assert_eq!(snap.max, 50_000_000);
        let mut expected = a.snapshot();
        expected.merge(&b.snapshot());
        assert_eq!(snap, expected);
    }

    #[test]
    fn registry_snapshot_and_merge() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(3);
        reg.max_gauge("a.depth").observe(9);
        reg.histogram("a.lat_ns").record(100);
        let mut snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), Some(3));
        assert_eq!(snap.gauge("a.depth"), Some(9));
        assert_eq!(snap.histogram("a.lat_ns").unwrap().count, 1);

        let other = MetricsRegistry::new();
        other.counter("a.count").add(2);
        other.counter("b.count").add(1);
        other.max_gauge("a.depth").observe(4);
        other.histogram("a.lat_ns").record(200);
        snap.merge(&other.snapshot());
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.counter("b.count"), Some(1));
        assert_eq!(snap.gauge("a.depth"), Some(9));
        assert_eq!(snap.histogram("a.lat_ns").unwrap().count, 2);

        let text = snap.to_prometheus();
        assert!(text.contains("a_count 5"));
        assert!(text.contains("a_lat_ns_count 2"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn disabled_registry_histograms_drop_counters_live() {
        let reg = MetricsRegistry::disabled();
        reg.counter("c").inc();
        reg.histogram("h").record(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(1));
        assert_eq!(snap.histogram("h").unwrap().count, 0);
    }
}
