//! Engine-level counters.
//!
//! The evaluation reports throughput, abort rates and per-mechanism abort
//! attribution. The engine keeps cheap atomic counters; latency percentiles
//! are measured by the benchmark driver in `tebaldi-workloads`, which is
//! where the paper measures them too (at the closed-loop clients).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tebaldi_storage::TxnTypeId;

/// A snapshot of the engine counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transaction attempts.
    pub aborted: u64,
    /// Committed transactions per type.
    pub committed_by_type: HashMap<TxnTypeId, u64>,
    /// Aborts attributed to each mechanism (by
    /// [`CcError::mechanism`](tebaldi_cc::CcError::mechanism)).
    pub aborts_by_mechanism: HashMap<String, u64>,
}

impl StatsSnapshot {
    /// Abort rate over all attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }
}

/// Live engine counters.
#[derive(Debug, Default)]
pub struct DbStats {
    committed: AtomicU64,
    aborted: AtomicU64,
    committed_by_type: Mutex<HashMap<TxnTypeId, u64>>,
    aborts_by_mechanism: Mutex<HashMap<&'static str, u64>>,
}

impl DbStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        DbStats::default()
    }

    /// Records a commit.
    pub fn record_commit(&self, ty: TxnTypeId) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        *self.committed_by_type.lock().entry(ty).or_insert(0) += 1;
    }

    /// Records an aborted attempt attributed to `mechanism`.
    pub fn record_abort(&self, mechanism: &'static str) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
        *self
            .aborts_by_mechanism
            .lock()
            .entry(mechanism)
            .or_insert(0) += 1;
    }

    /// Total committed so far.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Total aborted attempts so far.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            committed: self.committed(),
            aborted: self.aborted(),
            committed_by_type: self.committed_by_type.lock().clone(),
            aborts_by_mechanism: self
                .aborts_by_mechanism
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    /// Resets every counter (between benchmark configurations).
    pub fn reset(&self) {
        self.committed.store(0, Ordering::Relaxed);
        self.aborted.store(0, Ordering::Relaxed);
        self.committed_by_type.lock().clear();
        self.aborts_by_mechanism.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_snapshot() {
        let s = DbStats::new();
        s.record_commit(TxnTypeId(1));
        s.record_commit(TxnTypeId(1));
        s.record_commit(TxnTypeId(2));
        s.record_abort("2PL");
        let snap = s.snapshot();
        assert_eq!(snap.committed, 3);
        assert_eq!(snap.aborted, 1);
        assert_eq!(snap.committed_by_type[&TxnTypeId(1)], 2);
        assert_eq!(snap.aborts_by_mechanism["2PL"], 1);
        assert!((snap.abort_rate() - 0.25).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot().committed, 0);
        assert_eq!(StatsSnapshot::default().abort_rate(), 0.0);
    }
}
