//! Procedure-call descriptors and the shard-procedure registry.
//!
//! Workloads invoke the engine with a [`ProcedureCall`]: the static
//! transaction type, an *instance seed* (the hash of whatever input the
//! partition-by-instance function looks at, e.g. the flight id in SEATS),
//! and the optional list of keys whose writes can be promised to a
//! timestamp-ordering leaf (§4.4.4).
//!
//! The cluster invokes shards with *data*, not code: a [`ProcId`] plus an
//! opaque encoded argument buffer names a transaction body that was
//! registered in the shard's [`ProcRegistry`] at setup time. This is what
//! lets a shard live behind a serializable RPC boundary (and eventually in
//! another process): the operation that crosses the boundary is an id + a
//! byte string, never a closure.

use crate::txn::Txn;
use std::collections::HashMap;
use std::sync::Arc;
use tebaldi_cc::CcResult;
use tebaldi_storage::{Key, TxnTypeId, Value};

/// One transaction invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcedureCall {
    /// Static transaction type.
    pub ty: TxnTypeId,
    /// Hash of the instance's partition-by-instance input; ignored unless
    /// the type's leaf is instance-partitioned.
    pub instance_seed: u64,
    /// Keys promised to be written (TSO promises). Empty when unknown.
    pub promised_keys: Vec<Key>,
}

impl ProcedureCall {
    /// A call with no instance partitioning and no promises.
    pub fn new(ty: TxnTypeId) -> Self {
        ProcedureCall {
            ty,
            instance_seed: 0,
            promised_keys: Vec::new(),
        }
    }

    /// Sets the partition-by-instance seed.
    pub fn with_instance_seed(mut self, seed: u64) -> Self {
        self.instance_seed = seed;
        self
    }

    /// Declares promised write keys.
    pub fn with_promises(mut self, keys: Vec<Key>) -> Self {
        self.promised_keys = keys;
        self
    }
}

/// Identifier of a registered shard procedure. Workloads own their id
/// ranges (TPC-C uses 100.., SEATS 200.., the cluster's builtin KV helpers
/// sit at `0xFFFF_00xx`); a collision at registration time panics, so
/// overlapping ranges are caught at setup, not at execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A registered transaction body: decodes its argument buffer and issues
/// reads and writes through the [`Txn`] handle. Bodies may run several
/// times (engine-side retry of aborted attempts), so they take `&self`.
pub trait ShardProcedure: Send + Sync {
    /// Runs one attempt of the body.
    fn run(&self, txn: &mut Txn<'_>, args: &[u8]) -> CcResult<Value>;
}

impl<F> ShardProcedure for F
where
    F: Fn(&mut Txn<'_>, &[u8]) -> CcResult<Value> + Send + Sync,
{
    fn run(&self, txn: &mut Txn<'_>, args: &[u8]) -> CcResult<Value> {
        self(txn, args)
    }
}

/// The shard-side registry mapping [`ProcId`] to transaction bodies.
///
/// Filled once at setup (workloads register their per-shard transaction
/// parts before the cluster starts serving) and then only read, so lookups
/// are lock-free clones of `Arc`s.
#[derive(Clone, Default)]
pub struct ProcRegistry {
    procs: HashMap<u32, Arc<dyn ShardProcedure>>,
}

impl std::fmt::Debug for ProcRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut ids: Vec<u32> = self.procs.keys().copied().collect();
        ids.sort_unstable();
        f.debug_struct("ProcRegistry").field("procs", &ids).finish()
    }
}

impl ProcRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProcRegistry::default()
    }

    /// Registers a procedure object. Panics on id collisions: silently
    /// replacing a transaction body would turn a setup bug into data
    /// corruption at execution time.
    pub fn register(&mut self, id: ProcId, proc: Arc<dyn ShardProcedure>) {
        if self.procs.insert(id.0, proc).is_some() {
            panic!("shard procedure {id} registered twice");
        }
    }

    /// Registers a closure body.
    pub fn register_fn(
        &mut self,
        id: ProcId,
        body: impl Fn(&mut Txn<'_>, &[u8]) -> CcResult<Value> + Send + Sync + 'static,
    ) {
        self.register(id, Arc::new(body));
    }

    /// Moves every procedure of `other` into this registry (panics on
    /// collisions, like [`register`](ProcRegistry::register)).
    pub fn merge(&mut self, other: ProcRegistry) {
        for (id, proc) in other.procs {
            self.register(ProcId(id), proc);
        }
    }

    /// Looks a procedure up.
    pub fn get(&self, id: ProcId) -> Option<Arc<dyn ShardProcedure>> {
        self.procs.get(&id.0).cloned()
    }

    /// Number of registered procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_storage::TableId;

    #[test]
    fn registry_registers_and_looks_up() {
        let mut reg = ProcRegistry::new();
        reg.register_fn(ProcId(1), |_txn, _args| Ok(Value::Int(1)));
        assert!(reg.get(ProcId(1)).is_some());
        assert!(reg.get(ProcId(2)).is_none());
        assert_eq!(reg.len(), 1);
        let mut other = ProcRegistry::new();
        other.register_fn(ProcId(2), |_txn, _args| Ok(Value::Int(2)));
        reg.merge(other);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = ProcRegistry::new();
        reg.register_fn(ProcId(7), |_txn, _args| Ok(Value::Null));
        reg.register_fn(ProcId(7), |_txn, _args| Ok(Value::Null));
    }

    #[test]
    fn builder_style_construction() {
        let call = ProcedureCall::new(TxnTypeId(3))
            .with_instance_seed(42)
            .with_promises(vec![Key::simple(TableId(0), 1)]);
        assert_eq!(call.ty, TxnTypeId(3));
        assert_eq!(call.instance_seed, 42);
        assert_eq!(call.promised_keys.len(), 1);
    }
}
