//! Procedure-call descriptors.
//!
//! Workloads invoke the engine with a [`ProcedureCall`]: the static
//! transaction type, an *instance seed* (the hash of whatever input the
//! partition-by-instance function looks at, e.g. the flight id in SEATS),
//! and the optional list of keys whose writes can be promised to a
//! timestamp-ordering leaf (§4.4.4).

use tebaldi_storage::{Key, TxnTypeId};

/// One transaction invocation.
#[derive(Clone, Debug)]
pub struct ProcedureCall {
    /// Static transaction type.
    pub ty: TxnTypeId,
    /// Hash of the instance's partition-by-instance input; ignored unless
    /// the type's leaf is instance-partitioned.
    pub instance_seed: u64,
    /// Keys promised to be written (TSO promises). Empty when unknown.
    pub promised_keys: Vec<Key>,
}

impl ProcedureCall {
    /// A call with no instance partitioning and no promises.
    pub fn new(ty: TxnTypeId) -> Self {
        ProcedureCall {
            ty,
            instance_seed: 0,
            promised_keys: Vec::new(),
        }
    }

    /// Sets the partition-by-instance seed.
    pub fn with_instance_seed(mut self, seed: u64) -> Self {
        self.instance_seed = seed;
        self
    }

    /// Declares promised write keys.
    pub fn with_promises(mut self, keys: Vec<Key>) -> Self {
        self.promised_keys = keys;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_storage::TableId;

    #[test]
    fn builder_style_construction() {
        let call = ProcedureCall::new(TxnTypeId(3))
            .with_instance_seed(42)
            .with_promises(vec![Key::simple(TableId(0), 1)]);
        assert_eq!(call.ty, TxnTypeId(3));
        assert_eq!(call.instance_seed, 42);
        assert_eq!(call.promised_keys.len(), 1);
    }
}
