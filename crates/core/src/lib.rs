//! # tebaldi-core
//!
//! The Tebaldi transactional key-value store: the engine that federates
//! concurrency-control mechanisms in a hierarchical tree (Chapter 4 of the
//! dissertation / the SIGMOD 2017 paper) and supports online
//! reconfiguration (Chapter 5).
//!
//! ## Quick tour
//!
//! ```
//! use tebaldi_core::{Database, DbConfig, ProcedureCall};
//! use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
//! use tebaldi_storage::{Key, TableId, TxnTypeId, Value};
//!
//! // Describe the workload's transaction types.
//! let counter_table = TableId(0);
//! let ty = TxnTypeId(0);
//! let mut procedures = ProcedureSet::new();
//! procedures.insert(ProcedureInfo::new(
//!     ty,
//!     "bump",
//!     vec![(counter_table, AccessMode::Write)],
//! ));
//!
//! // Start with a monolithic 2PL configuration.
//! let db = Database::builder(DbConfig::for_tests())
//!     .procedures(procedures)
//!     .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![ty]))
//!     .build()
//!     .unwrap();
//!
//! // Run a transaction.
//! let key = Key::simple(counter_table, 1);
//! db.load(key, Value::Int(0));
//! let call = ProcedureCall::new(ty);
//! let new_value = db
//!     .execute(&call, |txn| txn.increment(key, 0, 1))
//!     .unwrap();
//! assert_eq!(new_value, 1);
//! ```
//!
//! The modules map onto the paper's components:
//!
//! * [`db`] / [`txn`] — transaction coordinators and the four-phase
//!   execution protocol over the CC tree (§4.3.1, §4.5.1),
//! * [`config`] — engine configuration (shards, timeouts, durability),
//! * [`procedure`] — per-invocation descriptors (instance seed for
//!   partition-by-instance, TSO promises),
//! * [`reconfig`] — the partial-restart and online-update protocols (§5.5),
//! * [`gate`] — the admission gate those protocols use to drain groups,
//! * [`stats`] — commit/abort counters used by the evaluation harness.

pub mod config;
pub mod db;
pub mod gate;
pub mod hlc;
pub mod prepared;
pub mod procedure;
pub mod reconfig;
pub mod stats;
pub mod txn;

pub use config::{DbConfig, DurabilityMode};
pub use db::{Database, DatabaseBuilder};
pub use hlc::{Hlc, HLC_ZERO};
pub use prepared::{ParticipantVote, PreparedTxn};
pub use procedure::{ProcId, ProcRegistry, ProcedureCall, ShardProcedure};
pub use reconfig::{diff_specs, ReconfigProtocol, ReconfigReport, SpecDiff};
pub use stats::{DbStats, StatsSnapshot};
pub use txn::Txn;
