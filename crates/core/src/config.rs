//! Engine configuration.
//!
//! A [`DbConfig`] bundles everything that is *not* the MCC configuration:
//! how many data-server shards to create, how long internal waits may last
//! before a transaction is timed out (deadlock resolution), whether and how
//! durability is enabled, whether the blocking-event profiler and the
//! history recorder are active, and whether a simulated network delay is
//! injected between coordinators and data servers.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Durability mode of the engine (maps onto
/// [`FlushPolicy`](tebaldi_storage::durability::FlushPolicy)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurabilityMode {
    /// No logging at all — the setting used by the Chapter 4 performance
    /// experiments, which predate the durability module.
    Off,
    /// Flush at every precommit.
    Synchronous,
    /// Asynchronous flushing with GCP epochs of the given length in
    /// milliseconds (§4.5.4; the paper uses one second).
    Asynchronous {
        /// GCP epoch length in milliseconds.
        epoch_ms: u64,
    },
}

/// Static engine configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DbConfig {
    /// Number of storage shards ("data servers").
    pub shards: usize,
    /// Bound on internal waits (locks, pipeline steps, dependency commits).
    pub wait_timeout_ms: u64,
    /// Durability mode.
    pub durability: DurabilityMode,
    /// Record an Adya-style execution history (tests only; costs memory).
    pub record_history: bool,
    /// Simulated coordinator↔data-server round-trip latency in
    /// microseconds; 0 disables the delay entirely.
    pub sim_network_rtt_us: u64,
    /// Registry shards (transaction directory).
    pub registry_shards: usize,
    /// Coalesce synchronous WAL flushes across concurrent transactions
    /// (cross-transaction group commit). Disabled only by benches that
    /// measure the legacy one-flush-per-record commit path.
    pub group_commit: bool,
    /// Let a 2PC participant whose write set is empty vote `ReadOnly`:
    /// it commits and releases at phase one, writes no prepare record, and
    /// is excluded from the decision. Disabled only by benches measuring
    /// the legacy full-2PC path.
    pub read_only_votes: bool,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            shards: 16,
            wait_timeout_ms: 100,
            durability: DurabilityMode::Off,
            record_history: false,
            sim_network_rtt_us: 0,
            registry_shards: 64,
            group_commit: true,
            read_only_votes: true,
        }
    }
}

impl DbConfig {
    /// Configuration used by most unit and integration tests: small, no
    /// durability, history recording enabled.
    pub fn for_tests() -> Self {
        DbConfig {
            shards: 4,
            wait_timeout_ms: 50,
            record_history: true,
            ..DbConfig::default()
        }
    }

    /// Configuration used by the benchmark harness: more shards, longer
    /// timeouts, no history.
    pub fn for_benchmarks() -> Self {
        DbConfig {
            shards: 32,
            wait_timeout_ms: 150,
            record_history: false,
            ..DbConfig::default()
        }
    }

    /// The wait timeout as a [`Duration`].
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_millis(self.wait_timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DbConfig::default();
        assert!(c.shards > 0);
        assert_eq!(c.durability, DurabilityMode::Off);
        assert_eq!(c.wait_timeout(), Duration::from_millis(100));
    }

    #[test]
    fn serde_roundtrip() {
        let c = DbConfig {
            durability: DurabilityMode::Asynchronous { epoch_ms: 1000 },
            ..DbConfig::for_benchmarks()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: DbConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.durability, c.durability);
        assert_eq!(back.shards, c.shards);
    }
}
