//! A hybrid logical clock (HLC).
//!
//! Every shard owns one [`Hlc`]; the cluster coordinator owns one too.
//! Timestamps are a single `u64`: the high 48 bits are wall-clock
//! milliseconds since the Unix epoch, the low [`LOGICAL_BITS`] bits a
//! logical counter that breaks ties within a millisecond and absorbs
//! clock skew between nodes. The packing makes the whole timestamp
//! totally ordered by plain integer comparison, which is what lets one
//! atomic `u64` hold the entire clock state.
//!
//! The rules (Kulkarni et al., "Logical Physical Clocks"):
//!
//! * [`Hlc::now`] returns a value strictly greater than anything the
//!   clock has returned *or observed* before — `max(wall, last + 1)`.
//! * [`Hlc::observe`] merges a remote timestamp so that every later
//!   `now()` exceeds it. Wire frames carry the sender's clock and the
//!   receiver observes it, so the clock respects message causality:
//!   if event A's timestamp was ever carried (directly or transitively)
//!   to the node generating event B, then `hlc(B) > hlc(A)`.
//! * [`Hlc::advance_past`] re-bases after recovery: replaying a WAL
//!   whose records carry HLC stamps must leave the clock above every
//!   stamp it re-installed, exactly like the txn-id and commit-ts
//!   generators.
//!
//! The snapshot-read protocol (see `tebaldi-cluster`) leans on one
//! consequence: after a shard observes a snapshot timestamp `h`, every
//! commit the shard *locally stamps* afterwards is `> h`, and every 2PC
//! decision stamp drawn from a vote the shard sent afterwards is `> h`
//! too (the vote reply carries the shard's clock and the coordinator
//! observes all votes before drawing the decision stamp). So a reader
//! that merges `h` into the shard clock *before* traversing version
//! chains can never miss a commit with stamp `<= h` that it was
//! supposed to see.
//!
//! All operations use `SeqCst`: the clock is a cross-thread causality
//! anchor and the few nanoseconds a weaker ordering would save are
//! noise next to the wire hop that usually precedes an `observe`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Low bits reserved for the logical counter. 16 bits = 65 536 events
/// per millisecond per node before the clock runs ahead of wall time
/// (harmless: it simply stays monotone and wall time catches up).
pub const LOGICAL_BITS: u32 = 16;

/// The zero timestamp: "never stamped". Bootstrap-loaded versions and
/// pre-HLC recovered state carry it and are visible to every snapshot.
pub const HLC_ZERO: u64 = 0;

fn wall_component() -> u64 {
    let ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    ms << LOGICAL_BITS
}

/// A hybrid logical clock. Cheap to share (`Arc<Hlc>`), lock-free.
#[derive(Debug)]
pub struct Hlc {
    /// Packed `wall_ms << LOGICAL_BITS | logical` of the last timestamp
    /// returned or observed.
    state: AtomicU64,
}

impl Default for Hlc {
    fn default() -> Self {
        Hlc::new()
    }
}

impl Hlc {
    /// A clock starting at the current wall time.
    pub fn new() -> Self {
        Hlc {
            state: AtomicU64::new(wall_component()),
        }
    }

    /// Draws the next timestamp: strictly greater than every timestamp
    /// this clock has returned or observed, and `>=` current wall time.
    pub fn now(&self) -> u64 {
        let wall = wall_component();
        let mut cur = self.state.load(Ordering::SeqCst);
        loop {
            let next = if wall > cur { wall } else { cur + 1 };
            match self
                .state
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Merges a remote timestamp: after this returns, every later
    /// [`now`](Hlc::now) is `> remote`. Called on every received wire
    /// frame and on every persisted stamp replayed by recovery.
    pub fn observe(&self, remote: u64) {
        self.state.fetch_max(remote, Ordering::SeqCst);
    }

    /// The last timestamp returned or observed (no tick).
    pub fn last(&self) -> u64 {
        self.state.load(Ordering::SeqCst)
    }

    /// Recovery re-base: identical to [`observe`](Hlc::observe), named
    /// to match the txn-id / commit-ts generators' `advance_past`.
    pub fn advance_past(&self, floor: u64) {
        self.observe(floor);
    }
}

/// Splits a packed HLC timestamp into `(wall_ms, logical)` for display.
pub fn unpack(hlc: u64) -> (u64, u64) {
    (hlc >> LOGICAL_BITS, hlc & ((1 << LOGICAL_BITS) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn now_is_strictly_monotone() {
        let clock = Hlc::new();
        let mut last = 0;
        for _ in 0..10_000 {
            let t = clock.now();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn observe_pushes_future_ticks_past_remote() {
        let clock = Hlc::new();
        // A remote clock far in the future (e.g. skewed wall clock).
        let remote = clock.now() + (1_000_000 << LOGICAL_BITS);
        clock.observe(remote);
        assert!(clock.last() >= remote);
        assert!(clock.now() > remote);
    }

    #[test]
    fn observe_of_the_past_is_a_no_op() {
        let clock = Hlc::new();
        let t = clock.now();
        clock.observe(t - 1);
        assert_eq!(clock.last(), t);
    }

    #[test]
    fn advance_past_rebases_like_the_other_generators() {
        let clock = Hlc::new();
        let floor = clock.now() + (60_000 << LOGICAL_BITS);
        clock.advance_past(floor);
        assert!(clock.now() > floor);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let clock = Arc::new(Hlc::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || (0..5_000).map(|_| clock.now()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "two threads drew the same timestamp");
    }

    #[test]
    fn unpack_splits_the_packing() {
        let packed = (123 << LOGICAL_BITS) | 7;
        assert_eq!(unpack(packed), (123, 7));
    }
}
