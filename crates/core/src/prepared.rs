//! Prepared transactions — the participant half of the cluster's
//! cross-shard two-phase commit.
//!
//! [`Database::prepare`](crate::db::Database::prepare) runs a transaction
//! through start, execution, validation, and the dependency wait, hardens a
//! `Prepare` WAL record, and then *parks* the transaction in a
//! [`PreparedTxn`] instead of committing it. The handle owns `Arc`s to the
//! engine services (not borrows), so a per-shard worker thread can hold it
//! in its in-doubt table while the coordinator collects votes, then
//! [`commit`](PreparedTxn::commit) or [`abort`](PreparedTxn::abort) it when
//! the decision arrives. Everything fallible happened before parking:
//! commit of a prepared transaction cannot fail, which is exactly the "yes
//! vote" guarantee 2PC requires from a participant.

use crate::db::Database;
use crate::txn;
use std::sync::Arc;
use tebaldi_cc::{PathEntry, TxnCtx};
use tebaldi_storage::{GroupId, Timestamp, TxnId};

/// A participant's phase-one vote in the cluster's cross-shard two-phase
/// commit, as returned by [`Database::prepare`](crate::db::Database::prepare).
// The variant size difference is fine: votes are consumed immediately by
// the worker (parked or dropped), never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ParticipantVote {
    /// The classic read-only participant optimization: the part's write set
    /// was empty, so it committed and released its resources immediately
    /// after phase one. No prepare record was written and the participant
    /// must be excluded from the decision — with a single read-write
    /// participant left, the coordinator degenerates to a one-phase commit
    /// with no decision record at all.
    ReadOnly,
    /// The part wrote data: a prepare record was hardened and the
    /// transaction is parked holding its locks until the decision arrives.
    ReadWrite(PreparedTxn),
}

impl ParticipantVote {
    /// True for the read-only fast path.
    pub fn is_read_only(&self) -> bool {
        matches!(self, ParticipantVote::ReadOnly)
    }

    /// The parked transaction of a read-write vote, if any.
    pub fn into_prepared(self) -> Option<PreparedTxn> {
        match self {
            ParticipantVote::ReadOnly => None,
            ParticipantVote::ReadWrite(prepared) => Some(prepared),
        }
    }

    /// Unwraps a read-write vote (tests and fixtures that prepare writing
    /// parts by hand).
    ///
    /// # Panics
    /// When the vote was `ReadOnly`.
    pub fn expect_prepared(self) -> PreparedTxn {
        self.into_prepared()
            .expect("participant voted ReadOnly; no prepared transaction to park")
    }
}

/// A transaction that has voted "yes" and awaits the coordinator's
/// decision. Dropping the handle without a decision aborts the transaction
/// (presumed abort), releasing its locks.
pub struct PreparedTxn {
    db: Arc<Database>,
    path: Vec<PathEntry>,
    ctx: TxnCtx,
    group: GroupId,
    gc_epoch: u64,
    global: u64,
    decided: bool,
}

impl std::fmt::Debug for PreparedTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedTxn")
            .field("txn", &self.ctx.txn)
            .field("global", &self.global)
            .field("writes", &self.ctx.write_keys.len())
            .finish()
    }
}

impl PreparedTxn {
    pub(crate) fn new(
        db: Arc<Database>,
        path: Vec<PathEntry>,
        ctx: TxnCtx,
        group: GroupId,
        gc_epoch: u64,
        global: u64,
    ) -> Self {
        PreparedTxn {
            db,
            path,
            ctx,
            group,
            gc_epoch,
            global,
            decided: false,
        }
    }

    /// The shard-local transaction id.
    pub fn txn_id(&self) -> TxnId {
        self.ctx.txn
    }

    /// The cluster-global transaction id this participant acts for.
    pub fn global_id(&self) -> u64 {
        self.global
    }

    /// Number of keys this participant will commit.
    pub fn write_count(&self) -> usize {
        self.ctx.write_keys.len()
    }

    /// Applies the coordinator's commit decision. Infallible: every
    /// condition that could abort was checked before the prepare vote.
    pub fn commit(self) -> Timestamp {
        self.commit_inner(None)
    }

    /// [`commit`](PreparedTxn::commit) stamping the committed versions with
    /// the coordinator's HLC decision stamp. Every participant of one
    /// cross-shard commit receives the *same* stamp, which is what makes
    /// the commit atomically visible to cross-shard snapshot reads: a
    /// snapshot at `h` either includes the stamp on every shard or on none.
    pub fn commit_stamped(self, hlc: u64) -> Timestamp {
        self.commit_inner(if hlc > 0 { Some(hlc) } else { None })
    }

    fn commit_inner(mut self, stamp: Option<u64>) -> Timestamp {
        let commit_ts = txn::apply_commit_prepared(&self.db, &self.path, &mut self.ctx, stamp);
        self.db.stats.record_commit(self.ctx.ty);
        self.finish(Some(commit_ts));
        commit_ts
    }

    /// Applies the coordinator's abort decision (or resolves a vote that
    /// never got a decision).
    pub fn abort(mut self) {
        self.abort_inner();
    }

    fn abort_inner(&mut self) {
        if self.decided {
            return;
        }
        self.db.durability.log_abort(self.ctx.txn);
        txn::apply_abort(&self.db, &self.path, &mut self.ctx);
        self.db.stats.record_abort("2pc");
        self.finish(None);
    }

    fn finish(&mut self, commit_ts: Option<Timestamp>) {
        self.db.gc.transaction_finished(self.gc_epoch, commit_ts);
        self.db.gate.exit(self.group);
        self.decided = true;
    }
}

impl Drop for PreparedTxn {
    fn drop(&mut self) {
        // Presumed abort: an undecided prepared transaction must never leak
        // its locks when the coordinator path unwinds.
        self.abort_inner();
    }
}

#[cfg(test)]
mod tests {
    use crate::{Database, DbConfig, ProcedureCall};
    use std::sync::Arc;
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

    const TABLE: TableId = TableId(0);
    const TY: TxnTypeId = TxnTypeId(0);

    fn db() -> Arc<Database> {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "write",
            vec![(TABLE, AccessMode::Write)],
        ));
        Arc::new(
            Database::builder(DbConfig::for_tests())
                .procedures(procedures)
                .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
                .build()
                .unwrap(),
        )
    }

    fn read(db: &Arc<Database>, key: Key) -> Option<Value> {
        db.execute(&ProcedureCall::new(TY), |txn| txn.get(key))
            .unwrap()
    }

    #[test]
    fn prepared_commit_publishes_writes() {
        let db = db();
        let key = Key::simple(TABLE, 1);
        let (_, vote) = db
            .prepare(&ProcedureCall::new(TY), 77, |txn| {
                txn.put(key, Value::Int(7))
            })
            .unwrap();
        let prepared = vote.expect_prepared();
        assert_eq!(prepared.global_id(), 77);
        assert_eq!(prepared.write_count(), 1);

        // Still invisible and exclusively locked: a concurrent writer times
        // out rather than overtaking the prepared transaction.
        let contender = db.execute(&ProcedureCall::new(TY), |txn| txn.put(key, Value::Int(99)));
        assert!(contender.is_err(), "2PL must block a conflicting writer");

        prepared.commit();
        assert_eq!(read(&db, key), Some(Value::Int(7)));
        assert_eq!(db.stats().committed, 2, "prepared commit counts in stats");
    }

    #[test]
    fn dropped_prepare_aborts_by_presumption() {
        let db = db();
        let key = Key::simple(TABLE, 2);
        let (_, vote) = db
            .prepare(&ProcedureCall::new(TY), 78, |txn| {
                txn.put(key, Value::Int(8))
            })
            .unwrap();
        drop(vote.expect_prepared());
        assert_eq!(read(&db, key), None, "undecided prepare must roll back");
        // Locks were released: a follow-up writer succeeds immediately.
        db.execute(&ProcedureCall::new(TY), |txn| txn.put(key, Value::Int(1)))
            .unwrap();
        assert_eq!(read(&db, key), Some(Value::Int(1)));
    }

    #[test]
    fn read_only_part_votes_read_only_and_releases_immediately() {
        let db = db();
        let key = Key::simple(TABLE, 4);
        db.load(key, Value::Int(3));
        let before = db.durability().stats();
        let (value, vote) = db
            .prepare(&ProcedureCall::new(TY), 80, |txn| txn.get(key))
            .unwrap();
        assert_eq!(value, Some(Value::Int(3)));
        assert!(vote.is_read_only(), "empty write set must vote ReadOnly");
        // No prepare record was written and the locks are already gone: a
        // conflicting writer succeeds immediately.
        assert_eq!(db.durability().stats().prepares, before.prepares);
        assert_eq!(db.stats().committed, 1, "read-only part commits in stats");
        db.execute(&ProcedureCall::new(TY), |txn| txn.put(key, Value::Int(9)))
            .unwrap();
        assert_eq!(read(&db, key), Some(Value::Int(9)));
    }

    #[test]
    fn read_only_vote_disabled_parks_like_a_writer() {
        let mut procedures = ProcedureSet::new();
        procedures.insert(ProcedureInfo::new(
            TY,
            "write",
            vec![(TABLE, AccessMode::Write)],
        ));
        let db = Arc::new(
            Database::builder(DbConfig {
                read_only_votes: false,
                ..DbConfig::for_tests()
            })
            .procedures(procedures)
            .cc_spec(CcTreeSpec::monolithic(CcKind::TwoPl, vec![TY]))
            .build()
            .unwrap(),
        );
        let key = Key::simple(TABLE, 5);
        db.load(key, Value::Int(1));
        let (_, vote) = db
            .prepare(&ProcedureCall::new(TY), 81, |txn| txn.get(key))
            .unwrap();
        let prepared = vote.into_prepared().expect("legacy path parks every part");
        prepared.commit();
    }

    #[test]
    fn prepare_failure_cleans_up() {
        let db = db();
        let key = Key::simple(TABLE, 3);
        let result = db.prepare(&ProcedureCall::new(TY), 79, |txn| {
            txn.put(key, Value::Int(9))?;
            Err::<(), _>(txn.request_abort())
        });
        assert!(result.is_err());
        assert_eq!(read(&db, key), None);
        assert_eq!(db.stats().aborted, 1);
    }
}
