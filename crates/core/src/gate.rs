//! Admission gate used by the online reconfiguration protocols (§5.5).
//!
//! Both reconfiguration protocols need to stop *some* transactions from
//! entering while the configuration changes: the partial restart drains the
//! whole database, the online update drains only the groups touched by the
//! change. The gate tracks in-flight transactions per leaf group, blocks
//! admission of drained groups, and lets a reconfiguration wait until the
//! drained set is quiescent.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};
use tebaldi_storage::GroupId;

/// What is currently being drained.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
enum DrainScope {
    /// Nothing — normal operation.
    #[default]
    None,
    /// Every group (partial restart).
    All,
    /// Only the listed groups (online update).
    Groups(HashSet<GroupId>),
}

#[derive(Default)]
struct GateState {
    scope: DrainScope,
    active: HashMap<GroupId, usize>,
}

impl GateState {
    fn blocks(&self, group: GroupId) -> bool {
        match &self.scope {
            DrainScope::None => false,
            DrainScope::All => true,
            DrainScope::Groups(set) => set.contains(&group),
        }
    }

    fn active_in_scope(&self) -> usize {
        match &self.scope {
            DrainScope::None => 0,
            DrainScope::All => self.active.values().sum(),
            DrainScope::Groups(set) => set
                .iter()
                .map(|g| self.active.get(g).copied().unwrap_or(0))
                .sum(),
        }
    }
}

/// The admission gate.
#[derive(Default)]
pub struct ReconfigGate {
    state: Mutex<GateState>,
    changed: Condvar,
}

impl std::fmt::Debug for ReconfigGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReconfigGate").finish()
    }
}

impl ReconfigGate {
    /// Creates an open gate.
    pub fn new() -> Self {
        ReconfigGate::default()
    }

    /// Admits a transaction of `group`, blocking while the group is being
    /// drained. Returns `false` if admission did not happen within
    /// `timeout` (callers abort the attempt).
    pub fn enter(&self, group: GroupId, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        while state.blocks(group) {
            if self.changed.wait_until(&mut state, deadline).timed_out() {
                return false;
            }
        }
        *state.active.entry(group).or_insert(0) += 1;
        true
    }

    /// Marks a transaction of `group` finished.
    pub fn exit(&self, group: GroupId) {
        let mut state = self.state.lock();
        if let Some(count) = state.active.get_mut(&group) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                state.active.remove(&group);
            }
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Starts draining every group (partial restart's clean-up phase) and
    /// waits until no transaction is in flight. Returns `false` on timeout
    /// (the caller may force-abort, as the paper allows).
    pub fn drain_all(&self, timeout: Duration) -> bool {
        self.drain(DrainScope::All, timeout)
    }

    /// Starts draining only `groups` (online update) and waits until none of
    /// their transactions is in flight.
    pub fn drain_groups(
        &self,
        groups: impl IntoIterator<Item = GroupId>,
        timeout: Duration,
    ) -> bool {
        self.drain(DrainScope::Groups(groups.into_iter().collect()), timeout)
    }

    fn drain(&self, scope: DrainScope, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        state.scope = scope;
        while state.active_in_scope() > 0 {
            if self.changed.wait_until(&mut state, deadline).timed_out() {
                return state.active_in_scope() == 0;
            }
        }
        true
    }

    /// Re-opens the gate (apply phase).
    pub fn resume(&self) {
        self.state.lock().scope = DrainScope::None;
        self.changed.notify_all();
    }

    /// Number of in-flight transactions across all groups.
    pub fn active_total(&self) -> usize {
        self.state.lock().active.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enter_exit_counts() {
        let gate = ReconfigGate::new();
        assert!(gate.enter(GroupId(0), Duration::from_millis(10)));
        assert!(gate.enter(GroupId(1), Duration::from_millis(10)));
        assert_eq!(gate.active_total(), 2);
        gate.exit(GroupId(0));
        gate.exit(GroupId(1));
        assert_eq!(gate.active_total(), 0);
    }

    #[test]
    fn drain_all_blocks_new_admissions() {
        let gate = Arc::new(ReconfigGate::new());
        assert!(gate.drain_all(Duration::from_millis(50)));
        // New transactions are blocked until resume.
        assert!(!gate.enter(GroupId(0), Duration::from_millis(20)));
        gate.resume();
        assert!(gate.enter(GroupId(0), Duration::from_millis(20)));
        gate.exit(GroupId(0));
    }

    #[test]
    fn drain_groups_only_blocks_affected() {
        let gate = ReconfigGate::new();
        assert!(gate.drain_groups([GroupId(1)], Duration::from_millis(50)));
        assert!(
            gate.enter(GroupId(0), Duration::from_millis(10)),
            "unaffected group keeps running"
        );
        assert!(!gate.enter(GroupId(1), Duration::from_millis(10)));
        gate.resume();
        gate.exit(GroupId(0));
    }

    #[test]
    fn drain_waits_for_inflight() {
        let gate = Arc::new(ReconfigGate::new());
        assert!(gate.enter(GroupId(2), Duration::from_millis(10)));
        let g2 = Arc::clone(&gate);
        let handle =
            std::thread::spawn(move || g2.drain_groups([GroupId(2)], Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(30));
        gate.exit(GroupId(2));
        assert!(handle.join().unwrap());
        gate.resume();
    }

    #[test]
    fn drain_times_out_when_stuck() {
        let gate = ReconfigGate::new();
        assert!(gate.enter(GroupId(3), Duration::from_millis(10)));
        assert!(!gate.drain_all(Duration::from_millis(30)));
        gate.resume();
        gate.exit(GroupId(3));
    }
}
