//! The Tebaldi database engine.
//!
//! A [`Database`] bundles the multiversion store, the transaction
//! directory, the timestamp oracle, the durability manager, the GC manager
//! and — behind a swappable handle — the current CC tree. Client threads
//! (the paper's transaction coordinators) call [`Database::execute`] with a
//! closure that issues reads and writes through a [`Txn`](crate::txn::Txn)
//! handle; the engine drives the four-phase protocol across the
//! transaction's root→leaf path.

use crate::config::{DbConfig, DurabilityMode};
use crate::gate::ReconfigGate;
use crate::hlc::Hlc;
use crate::procedure::ProcedureCall;
use crate::stats::{DbStats, StatsSnapshot};
use crate::txn::Txn;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tebaldi_cc::history::HistoryRecorder;
use tebaldi_cc::{
    CcError, CcResult, CcTree, CcTreeSpec, EventSink, NullSink, ProcedureSet, TreeServices,
    TsOracle, TxnRegistry,
};
use tebaldi_obs::{Histogram, MetricsRegistry};
use tebaldi_storage::durability::{DurabilityManager, FlushPolicy};
use tebaldi_storage::gc::GcManager;
use tebaldi_storage::sim::SimNet;
use tebaldi_storage::wal::{LogDevice, MemLogDevice};
use tebaldi_storage::{GroupId, MvStore, Timestamp, TxnId, TxnTypeId};

/// The transactional key-value store.
pub struct Database {
    pub(crate) config: DbConfig,
    pub(crate) store: Arc<MvStore>,
    pub(crate) registry: Arc<TxnRegistry>,
    pub(crate) oracle: Arc<TsOracle>,
    pub(crate) hlc: Arc<Hlc>,
    pub(crate) events: Arc<dyn EventSink>,
    pub(crate) procedures: ProcedureSet,
    pub(crate) tree: RwLock<Arc<CcTree>>,
    pub(crate) durability: Arc<DurabilityManager>,
    pub(crate) gc: GcManager,
    pub(crate) history: Option<Arc<HistoryRecorder>>,
    pub(crate) stats: DbStats,
    pub(crate) gate: ReconfigGate,
    pub(crate) txn_ids: AtomicU64,
    pub(crate) version_ids: AtomicU64,
    pub(crate) reconfigurations: AtomicU64,
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// Per-procedure commit-latency histograms, cached by type id so the
    /// hot path never formats a metric name.
    proc_latency: RwLock<HashMap<TxnTypeId, Arc<Histogram>>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("groups", &self.tree.read().group_count())
            .finish()
    }
}

/// Builder for a [`Database`].
pub struct DatabaseBuilder {
    config: DbConfig,
    procedures: ProcedureSet,
    spec: Option<CcTreeSpec>,
    events: Arc<dyn EventSink>,
    log_device: Option<Arc<dyn LogDevice>>,
    store: Option<MvStore>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl DatabaseBuilder {
    /// Starts a builder with the given engine configuration.
    pub fn new(config: DbConfig) -> Self {
        DatabaseBuilder {
            config,
            procedures: ProcedureSet::new(),
            spec: None,
            events: Arc::new(NullSink),
            log_device: None,
            store: None,
            metrics: None,
        }
    }

    /// Registers the stored-procedure descriptions of the workload.
    pub fn procedures(mut self, procedures: ProcedureSet) -> Self {
        self.procedures = procedures;
        self
    }

    /// Sets the initial MCC configuration.
    pub fn cc_spec(mut self, spec: CcTreeSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Installs a blocking-event sink (the autoconf profiler).
    pub fn events(mut self, events: Arc<dyn EventSink>) -> Self {
        self.events = events;
        self
    }

    /// Uses a specific log device for durability (default: in-memory).
    pub fn log_device(mut self, device: Arc<dyn LogDevice>) -> Self {
        self.log_device = Some(device);
        self
    }

    /// Opens the database over an existing (e.g. recovered) store instead of
    /// an empty one.
    pub fn store(mut self, store: MvStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Uses a specific metrics registry (default: a fresh enabled one).
    /// Pass [`MetricsRegistry::disabled`] for the obs-off configuration:
    /// histograms stop recording while the counters backing
    /// [`Database::stats`] and durability stats stay live.
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Builds the database.
    pub fn build(self) -> Result<Database, String> {
        let spec = self.spec.ok_or("a CC-tree specification is required")?;
        let mut store = self.store.unwrap_or_else(|| {
            if self.config.sim_network_rtt_us > 0 {
                MvStore::with_network(
                    self.config.shards,
                    Arc::new(SimNet::with_round_trip_micros(
                        self.config.sim_network_rtt_us,
                    )),
                )
            } else {
                MvStore::new(self.config.shards)
            }
        });
        let registry = Arc::new(TxnRegistry::new(self.config.registry_shards));
        let oracle = Arc::new(TsOracle::new());
        let services = TreeServices {
            registry: Arc::clone(&registry),
            oracle: Arc::clone(&oracle),
            events: Arc::clone(&self.events),
            wait_timeout: self.config.wait_timeout(),
        };
        let tree = CcTree::build(spec, &self.procedures, &services)?;
        let policy = match self.config.durability {
            DurabilityMode::Off => FlushPolicy::Disabled,
            DurabilityMode::Synchronous => FlushPolicy::Synchronous,
            DurabilityMode::Asynchronous { epoch_ms } => FlushPolicy::Asynchronous {
                epoch_interval: Duration::from_millis(epoch_ms),
            },
        };
        let device: Arc<dyn LogDevice> = self
            .log_device
            .unwrap_or_else(|| Arc::new(MemLogDevice::new()));
        let metrics = self
            .metrics
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        store.attach_metrics(&metrics);
        let durability =
            DurabilityManager::with_metrics(device, policy, self.config.group_commit, &metrics);
        let history = if self.config.record_history {
            Some(Arc::new(HistoryRecorder::new()))
        } else {
            None
        };
        Ok(Database {
            config: self.config,
            store: Arc::new(store),
            registry,
            oracle,
            hlc: Arc::new(Hlc::new()),
            events: self.events,
            procedures: self.procedures,
            tree: RwLock::new(Arc::new(tree)),
            durability,
            gc: GcManager::new(),
            history,
            stats: DbStats::new(),
            gate: ReconfigGate::new(),
            txn_ids: AtomicU64::new(1),
            version_ids: AtomicU64::new(1),
            reconfigurations: AtomicU64::new(0),
            metrics,
            proc_latency: RwLock::new(HashMap::new()),
        })
    }
}

impl Database {
    /// Shorthand builder entry point.
    pub fn builder(config: DbConfig) -> DatabaseBuilder {
        DatabaseBuilder::new(config)
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The procedure descriptions registered at build time.
    pub fn procedures(&self) -> &ProcedureSet {
        &self.procedures
    }

    /// The multiversion store (loaders write through it directly).
    pub fn store(&self) -> &Arc<MvStore> {
        &self.store
    }

    /// The currently active CC tree.
    pub fn current_tree(&self) -> Arc<CcTree> {
        Arc::clone(&self.tree.read())
    }

    /// The currently active MCC configuration.
    pub fn current_spec(&self) -> CcTreeSpec {
        self.tree.read().spec().clone()
    }

    /// The transaction directory (exposed for the profiler and tests).
    pub fn registry(&self) -> &Arc<TxnRegistry> {
        &self.registry
    }

    /// The timestamp oracle.
    pub fn oracle(&self) -> &Arc<TsOracle> {
        &self.oracle
    }

    /// The shard's hybrid logical clock (see [`crate::hlc`]). Commits are
    /// stamped from it, wire frames carry and merge it, and recovery
    /// re-bases it alongside the txn-id / commit-ts generators.
    pub fn hlc(&self) -> &Arc<Hlc> {
        &self.hlc
    }

    /// Advances the transaction-id allocator so the next id is greater
    /// than `floor`. Needed after recovery whenever this database keeps
    /// appending to a log that already holds records up to txn `floor`
    /// (a promoted replica inheriting its primary's shipped WAL): reusing
    /// a txn id that is live in the log would corrupt a later replay.
    pub fn advance_txn_ids_past(&self, floor: u64) {
        use std::sync::atomic::Ordering;
        let target = floor + 1;
        let mut cur = self.txn_ids.load(Ordering::Relaxed);
        while cur < target {
            match self
                .txn_ids
                .compare_exchange(cur, target, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The durability manager.
    pub fn durability(&self) -> &Arc<DurabilityManager> {
        &self.durability
    }

    /// The metrics registry: durability counters, shard-pipeline
    /// instruments and per-procedure latency histograms all live here.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The commit-latency histogram of procedure type `ty`
    /// (`proc.<name>.latency_ns`), cached per type.
    pub fn proc_latency_histogram(&self, ty: TxnTypeId) -> Arc<Histogram> {
        if let Some(h) = self.proc_latency.read().get(&ty) {
            return Arc::clone(h);
        }
        let mut map = self.proc_latency.write();
        Arc::clone(map.entry(ty).or_insert_with(|| {
            self.metrics
                .histogram(&format!("proc.{}.latency_ns", self.procedures.name(ty)))
        }))
    }

    /// Engine counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the engine counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Number of reconfigurations applied so far.
    pub fn reconfiguration_count(&self) -> u64 {
        self.reconfigurations.load(Ordering::Relaxed)
    }

    /// Loads a key with an initial value, bypassing concurrency control.
    /// Used by workload loaders before the benchmark starts.
    pub fn load(&self, key: tebaldi_storage::Key, value: tebaldi_storage::Value) {
        self.store.load(&key, value);
    }

    /// Executes one transaction attempt described by `call` with the body
    /// `body`. Returns the body's result on commit, or the abort reason.
    pub fn execute<R>(
        &self,
        call: &ProcedureCall,
        body: impl FnOnce(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<R> {
        self.execute_inner(call, false, body)
            .map(|(value, _)| value)
    }

    /// The pipelined variant of [`execute`](Database::execute): the commit
    /// records are appended (fixing their place in the log order) but the
    /// durability wait is returned as a group-commit funnel sequence
    /// instead of blocking the calling thread. The caller **must** pass it
    /// to [`wait_hardened`](Database::wait_hardened) before acknowledging
    /// the commit to anyone; versions are already visible and locks
    /// released, so deferring only delays the acknowledgement — a shard
    /// worker hands the sequence to its completion loop and immediately
    /// starts the next transaction's body. `None` means the commit is
    /// already as durable as the flushing policy requires.
    pub fn execute_deferred<R>(
        &self,
        call: &ProcedureCall,
        body: impl FnOnce(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, Option<u64>)> {
        self.execute_inner(call, true, body)
    }

    fn execute_inner<R>(
        &self,
        call: &ProcedureCall,
        defer_harden: bool,
        body: impl FnOnce(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, Option<u64>)> {
        let tree = self.current_tree();
        let gate_group = tree
            .group_for(call.ty, call.instance_seed)
            .ok_or_else(|| CcError::Internal(format!("no group for {:?}", call.ty)))?;

        // Admission: blocked while the group is being drained for a
        // reconfiguration.
        if !self.gate.enter(
            gate_group,
            self.config.wait_timeout().max(Duration::from_millis(500)),
        ) {
            return Err(CcError::Requested);
        }
        // Re-read the tree *after* admission: a reconfiguration may have
        // swapped it while this transaction waited at the gate, and running
        // on the stale tree's mechanism instances (with their own private
        // lock tables) would let updates race past the new tree's locks.
        // Once admitted, the drain protocol waits for us, so this read is
        // stable for the whole execution.
        let tree = self.current_tree();
        let timer = self.metrics.is_enabled().then(Instant::now);
        let result = match tree.group_for(call.ty, call.instance_seed) {
            Some(group) => self.execute_admitted(&tree, group, call, defer_harden, body),
            None => Err(CcError::Internal(format!("no group for {:?}", call.ty))),
        };
        self.gate.exit(gate_group);
        if let (Some(started), Ok(_)) = (timer, &result) {
            self.proc_latency_histogram(call.ty)
                .record_duration(started.elapsed());
        }
        result
    }

    fn execute_admitted<R>(
        &self,
        tree: &Arc<CcTree>,
        group: GroupId,
        call: &ProcedureCall,
        defer_harden: bool,
        body: impl FnOnce(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, Option<u64>)> {
        let txn_id = TxnId(self.txn_ids.fetch_add(1, Ordering::Relaxed));
        let gc_epoch = self.gc.transaction_started(txn_id);
        // Pin the reclamation epoch once for the whole transaction: every
        // store access inside is then a cheap nested pin (one refcount
        // bump) instead of an announcement store.
        let _epoch_pin = tebaldi_storage::ebr::pin();
        self.registry.register(txn_id, call.ty, group);
        if let Some(history) = &self.history {
            history.begin(txn_id, call.ty, group);
        }

        let mut txn = Txn::new(self, Arc::clone(tree), txn_id, call.ty, group);
        let outcome = txn.begin().and_then(|()| {
            if !call.promised_keys.is_empty() {
                txn.promise_writes(&call.promised_keys);
            }
            body(&mut txn)
        });

        match outcome {
            Ok(value) => {
                let committed = if defer_harden {
                    txn.commit_deferred()
                } else {
                    txn.commit().map(|commit_ts| (commit_ts, None))
                };
                match committed {
                    Ok((commit_ts, harden)) => {
                        self.gc.transaction_finished(gc_epoch, Some(commit_ts));
                        self.stats.record_commit(call.ty);
                        Ok((value, harden))
                    }
                    Err(err) => {
                        txn.abort();
                        self.gc.transaction_finished(gc_epoch, None);
                        self.stats.record_abort(err.mechanism());
                        Err(err)
                    }
                }
            }
            Err(err) => {
                txn.abort();
                self.gc.transaction_finished(gc_epoch, None);
                self.stats.record_abort(err.mechanism());
                Err(err)
            }
        }
    }

    /// Runs one transaction attempt up to the *prepared* state — the
    /// participant half of the cluster's cross-shard two-phase commit.
    ///
    /// The body executes, every mechanism validates, the dependency set is
    /// waited out, and the vote is classified:
    ///
    /// * **read-write part** — (when durability is on) a `Prepare` record
    ///   carrying `global` — the cluster-global transaction id — is group-
    ///   commit flushed to the WAL, and the transaction is parked in a
    ///   [`PreparedTxn`](crate::prepared::PreparedTxn), still holding its
    ///   locks, until the coordinator decides;
    /// * **read-only part** — the write set is empty, so there is nothing
    ///   the decision could roll back: the part commits and releases
    ///   immediately after phase one, writes no prepare record, and votes
    ///   [`ParticipantVote::ReadOnly`](crate::prepared::ParticipantVote)
    ///   so the coordinator excludes it from phase two.
    ///
    /// On error the transaction has already been aborted and its resources
    /// released.
    pub fn prepare<R>(
        self: &Arc<Self>,
        call: &ProcedureCall,
        global: u64,
        body: impl FnOnce(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, crate::prepared::ParticipantVote)> {
        self.prepare_inner(call, global, false, body)
            .map(|(value, vote, harden)| {
                debug_assert!(harden.is_none(), "undeferred prepare left a harden seq");
                (value, vote)
            })
    }

    /// The pipelined variant of [`prepare`](Database::prepare): identical up
    /// to the durability hardening, but instead of blocking until the
    /// `Prepare` WAL record is flushed, it appends the record into the
    /// group-commit funnel and returns the funnel sequence. The caller —
    /// a shard worker's completion loop — **must** call
    /// [`wait_hardened`](Database::wait_hardened) with that sequence
    /// before acknowledging the yes-vote to anyone: a vote on an unflushed
    /// prepare record could be silently lost by a crash. A `None` sequence
    /// means there is nothing to wait for (durability disabled, or legacy
    /// uncoalesced flushing, which hardened synchronously). A read-only
    /// vote may also carry a sequence: the read-acknowledgement barrier
    /// over deferred commits it may have read from.
    pub fn prepare_deferred<R>(
        self: &Arc<Self>,
        call: &ProcedureCall,
        global: u64,
        body: impl FnOnce(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, crate::prepared::ParticipantVote, Option<u64>)> {
        self.prepare_inner(call, global, true, body)
    }

    /// Blocks until the deferred record behind `seq` (returned by
    /// [`prepare_deferred`](Database::prepare_deferred) or
    /// [`execute_deferred`](Database::execute_deferred)) is durable.
    /// Waiting on the highest sequence of a batch hardens the whole batch
    /// with at most one device flush.
    pub fn wait_hardened(&self, seq: u64) {
        self.durability.wait_group_seq(seq);
    }

    fn prepare_inner<R>(
        self: &Arc<Self>,
        call: &ProcedureCall,
        global: u64,
        defer_harden: bool,
        body: impl FnOnce(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, crate::prepared::ParticipantVote, Option<u64>)> {
        let tree = self.current_tree();
        let gate_group = tree
            .group_for(call.ty, call.instance_seed)
            .ok_or_else(|| CcError::Internal(format!("no group for {:?}", call.ty)))?;
        if !self.gate.enter(
            gate_group,
            self.config.wait_timeout().max(Duration::from_millis(500)),
        ) {
            return Err(CcError::Requested);
        }
        // See `execute`: the tree may have been swapped while waiting at
        // the gate; re-read after admission so the prepared transaction
        // holds locks in the mechanisms every concurrent transaction sees.
        let tree = self.current_tree();
        let Some(group) = tree.group_for(call.ty, call.instance_seed) else {
            self.gate.exit(gate_group);
            return Err(CcError::Internal(format!("no group for {:?}", call.ty)));
        };

        let txn_id = TxnId(self.txn_ids.fetch_add(1, Ordering::Relaxed));
        let gc_epoch = self.gc.transaction_started(txn_id);
        // One reclamation pin for the whole phase-one execution (see
        // `execute_admitted`).
        let _epoch_pin = tebaldi_storage::ebr::pin();
        self.registry.register(txn_id, call.ty, group);
        if let Some(history) = &self.history {
            history.begin(txn_id, call.ty, group);
        }

        let mut txn = Txn::new(self, Arc::clone(&tree), txn_id, call.ty, group);
        let outcome = txn
            .begin()
            .and_then(|()| {
                if !call.promised_keys.is_empty() {
                    txn.promise_writes(&call.promised_keys);
                }
                body(&mut txn)
            })
            .and_then(|value| txn.validate_and_wait_deps().map(|()| value))
            // Stabilize the yes-vote: every mechanism must guarantee the
            // parked transaction can still commit when the decision arrives.
            .and_then(|value| txn.mark_prepared().map(|()| value));

        match outcome {
            Ok(value) => {
                let read_only = txn.ctx().write_keys.is_empty() && self.config.read_only_votes;
                let mut harden = None;
                if !read_only && self.durability.is_enabled() {
                    // Harden the yes-vote: the prepare record is group-
                    // commit flushed so a crash after this point leaves the
                    // transaction in doubt (resolvable), never silently
                    // lost. The deferred path appends the record now (log
                    // order is fixed) but leaves the flush wait to the
                    // caller's completion loop, freeing this thread for the
                    // next transaction's body.
                    let writes = crate::txn::collect_writes(self, txn.ctx());
                    if defer_harden {
                        harden = self.durability.prepare_deferred(txn_id, global, writes);
                    } else {
                        self.durability.prepare(txn_id, global, writes);
                    }
                }
                let (path, ctx) = txn.into_parts();
                let prepared = crate::prepared::PreparedTxn::new(
                    Arc::clone(self),
                    path,
                    ctx,
                    gate_group,
                    gc_epoch,
                    global,
                );
                if read_only {
                    // Read-only participant optimization: the decision
                    // cannot change anything this part did, so commit now,
                    // release the locks, and skip phase two entirely (no
                    // prepare record, nothing in doubt at recovery). On the
                    // deferred path the vote still carries the read
                    // barrier: the part's result may reflect a published
                    // deferred commit whose flush is pending.
                    prepared.commit();
                    let barrier = if defer_harden {
                        self.durability.read_barrier()
                    } else {
                        None
                    };
                    Ok((value, crate::prepared::ParticipantVote::ReadOnly, barrier))
                } else {
                    Ok((
                        value,
                        crate::prepared::ParticipantVote::ReadWrite(prepared),
                        harden,
                    ))
                }
            }
            Err(err) => {
                txn.abort();
                self.gc.transaction_finished(gc_epoch, None);
                self.stats.record_abort(err.mechanism());
                self.gate.exit(gate_group);
                Err(err)
            }
        }
    }

    /// Executes a transaction, retrying aborted attempts like the paper's
    /// closed-loop clients. Returns the result together with the number of
    /// aborted attempts.
    pub fn execute_with_retry<R>(
        &self,
        call: &ProcedureCall,
        max_attempts: usize,
        mut body: impl FnMut(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, usize)> {
        retry_attempts(max_attempts, || self.execute(call, &mut body))
    }

    /// [`execute_with_retry`](Database::execute_with_retry) over the
    /// pipelined [`execute_deferred`](Database::execute_deferred): aborted
    /// attempts retry as usual, and the final successful attempt's
    /// durability wait is returned to the caller as a funnel sequence
    /// (`None` = already durable enough) instead of blocking here.
    pub fn execute_with_retry_deferred<R>(
        &self,
        call: &ProcedureCall,
        max_attempts: usize,
        mut body: impl FnMut(&mut Txn<'_>) -> CcResult<R>,
    ) -> CcResult<(R, usize, Option<u64>)> {
        retry_attempts(max_attempts, || self.execute_deferred(call, &mut body))
            .map(|((value, harden), aborts)| (value, aborts, harden))
    }

    /// Runs one garbage-collection cycle: advances the GC epoch, collects
    /// prunable versions bounded by every mechanism's low watermark, and
    /// compacts the transaction directory.
    pub fn run_gc_cycle(&self) -> tebaldi_storage::gc::GcReport {
        self.gc.advance_epoch();
        let tree = self.current_tree();
        let tree_watermark = tree.low_watermark();
        struct TreeWatermark(Timestamp);
        impl tebaldi_storage::gc::GcParticipant for TreeWatermark {
            fn low_watermark(&self) -> Timestamp {
                self.0
            }
        }
        self.gc.clear_participants();
        self.gc
            .register_participant(Arc::new(TreeWatermark(tree_watermark)));
        let report = self.gc.collect(&self.store);
        self.registry.compact();
        report
    }

    /// Finishes history recording and returns the Adya history (only when
    /// `record_history` was enabled).
    pub fn take_history(&self) -> Option<tebaldi_cc::history::History> {
        self.history.as_ref().map(|h| h.finish())
    }

    /// Gracefully shuts down background machinery (durability flusher).
    pub fn shutdown(&self) {
        self.durability.shutdown();
    }

    pub(crate) fn next_version_id(&self) -> u64 {
        self.version_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a transaction type at runtime — used by tests; workloads
    /// normally register everything up front through the builder.
    pub fn type_name(&self, ty: TxnTypeId) -> String {
        self.procedures.name(ty)
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.durability.shutdown();
    }
}

/// The closed-loop retry policy shared by the blocking and pipelined
/// execute entry points: retry retryable aborts up to `max_attempts` with
/// a short backoff (as the paper does for SSI retries), and report how
/// many attempts aborted.
fn retry_attempts<R>(
    max_attempts: usize,
    mut attempt: impl FnMut() -> CcResult<R>,
) -> CcResult<(R, usize)> {
    let mut aborts = 0;
    loop {
        match attempt() {
            Ok(value) => return Ok((value, aborts)),
            Err(err) if err.is_retryable() && aborts + 1 < max_attempts => {
                aborts += 1;
                std::thread::sleep(Duration::from_micros(200 * aborts.min(10) as u64));
            }
            Err(err) => return Err(err),
        }
    }
}

/// True when `TEBALDI_DEBUG_READS` is set: the read path prints a line
/// whenever the chosen version differs from the newest version of the key
/// (useful when chasing staleness/visibility bugs). Checked once and cached.
pub(crate) fn debug_reads() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("TEBALDI_DEBUG_READS").is_some())
}
