//! The transaction handle and the engine-side execution protocol (§4.3.1).
//!
//! Every operation runs in two passes over the transaction's root→leaf
//! path:
//!
//! * **top-down** — each mechanism constrains the operation (acquires
//!   locks, checks timestamps, aborts on conflicts),
//! * **bottom-up** — for reads, the leaf proposes a candidate version and
//!   each ancestor may amend it based on writes from sibling groups; the
//!   writer of the finally-chosen version becomes a dependency when it has
//!   not committed yet.
//!
//! Commit runs validation top-down, then waits for the transaction's
//! dependency set (the adoption strategy that makes 2PL/RP respect their
//! children's ordering, §4.2.2), then installs the commit in storage,
//! notifies durability, and finally runs every mechanism's commit phase
//! leaf→root so resources are released only after the new versions are
//! visible.

use crate::db::Database;
use std::sync::Arc;
use tebaldi_cc::{CcError, CcResult, CcTree, PathEntry, TxnCtx, VersionPick};
use tebaldi_storage::{
    GroupId, Key, Timestamp, TxnId, TxnTypeId, Value, Version, VersionId, VersionState,
};

/// Outcome of a transaction (internal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnPhase {
    Running,
    Finished,
}

/// A handle through which the transaction body reads and writes.
pub struct Txn<'a> {
    db: &'a Database,
    #[allow(dead_code)]
    tree: Arc<CcTree>,
    path: Vec<PathEntry>,
    ctx: TxnCtx,
    phase: TxnPhase,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(
        db: &'a Database,
        tree: Arc<CcTree>,
        txn: TxnId,
        ty: TxnTypeId,
        group: GroupId,
    ) -> Self {
        let path = tree.path(group).map(|p| p.to_vec()).unwrap_or_default();
        Txn {
            db,
            tree,
            path,
            ctx: TxnCtx::new(txn, ty, group),
            phase: TxnPhase::Running,
        }
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.ctx.txn
    }

    /// The leaf group this instance was assigned to.
    pub fn group(&self) -> GroupId {
        self.ctx.group
    }

    /// The dependencies reported so far (diagnostics, tests).
    pub fn dependency_count(&self) -> usize {
        self.ctx.deps.len()
    }

    /// Start phase: top-down pass over the path.
    pub(crate) fn begin(&mut self) -> CcResult<()> {
        if self.path.is_empty() {
            return Err(CcError::Internal("empty CC path".to_string()));
        }
        for i in 0..self.path.len() {
            let entry = self.path[i].clone();
            entry.mechanism.begin(&mut self.ctx, entry.lane)?;
        }
        Ok(())
    }

    /// Registers promised write keys with the leaf mechanism.
    pub(crate) fn promise_writes(&mut self, keys: &[Key]) {
        if let Some(leaf) = self.path.last() {
            leaf.mechanism.promise_writes(&self.ctx, keys);
        }
    }

    /// Reads a key. Returns `None` when the key has never been written (or
    /// its visible version is a delete).
    pub fn get(&mut self, key: Key) -> CcResult<Option<Value>> {
        // Top-down pass: every mechanism may block or abort the read.
        for i in 0..self.path.len() {
            let entry = self.path[i].clone();
            entry
                .mechanism
                .before_read(&mut self.ctx, entry.lane, &key)?;
        }
        // Bottom-up pass inside the storage access: the leaf proposes, the
        // ancestors amend.
        let pick: Option<VersionPick> = self.db.store.with_chain(&key, |chain| {
            // Read-your-own-writes first.
            if let Some(own) = chain.uncommitted_by(self.ctx.txn) {
                return Some(VersionPick::from_version(own));
            }
            let mut candidate: Option<VersionPick> = None;
            for entry in self.path.iter().rev() {
                candidate = entry.mechanism.choose_version(
                    &mut self.ctx,
                    entry.lane,
                    &key,
                    candidate,
                    chain,
                );
            }
            if crate::db::debug_reads() {
                if let (Some(pick), Some(last)) = (&candidate, chain.last()) {
                    if pick.writer != last.writer && pick.writer != self.ctx.txn {
                        eprintln!(
                            "DEBUG stale-pick: reader={:?} key={:?} pick_writer={:?} pick_committed={} \
                             last_writer={:?} last_committed={} chain_len={}",
                            self.ctx.txn,
                            key,
                            pick.writer,
                            pick.committed,
                            last.writer,
                            last.is_committed(),
                            chain.len(),
                        );
                    }
                }
            }
            candidate
        });
        self.ctx.read_keys.push(key);

        let Some(pick) = pick else {
            if let Some(history) = &self.db.history {
                history.read(self.ctx.txn, key, TxnId::BOOTSTRAP);
            }
            return Ok(None);
        };
        // Reading an uncommitted version creates a read-from dependency: we
        // may only commit after the writer does (aborted-read prevention).
        if !pick.committed && pick.writer != self.ctx.txn {
            self.ctx.add_dep(pick.writer);
        }
        if let Some(history) = &self.db.history {
            history.read(self.ctx.txn, key, pick.writer);
        }
        if pick.value.is_null() {
            Ok(None)
        } else {
            Ok(Some(pick.value))
        }
    }

    /// Writes a key.
    pub fn put(&mut self, key: Key, value: Value) -> CcResult<()> {
        // Top-down pass: locks, timestamp checks.
        for i in 0..self.path.len() {
            let entry = self.path[i].clone();
            entry
                .mechanism
                .before_write(&mut self.ctx, entry.lane, &key)?;
        }
        // Validation against the live chain plus installation, under the
        // chain's own lock so no other writer can slip in between.
        let version_id = self.db.next_version_id();
        let install: CcResult<()> = self.db.store.with_chain_mut(&key, |chain| {
            for entry in self.path.iter() {
                entry
                    .mechanism
                    .validate_write(&mut self.ctx, entry.lane, &key, chain)?;
            }
            chain.install(Version {
                id: VersionId(version_id),
                writer: self.ctx.txn,
                value: value.clone(),
                state: VersionState::Uncommitted,
                commit_ts: None,
                order_ts: self.ctx.order_ts,
                hlc: 0,
            });
            Ok(())
        });
        install?;

        if !self.ctx.write_keys.contains(&key) {
            self.ctx.write_keys.push(key);
        }
        self.db.durability.log_operation(self.ctx.txn, key, &value);
        if let Some(history) = &self.db.history {
            history.write(self.ctx.txn, key);
        }
        for i in 0..self.path.len() {
            let entry = self.path[i].clone();
            entry.mechanism.after_write(&mut self.ctx, entry.lane, &key);
        }
        Ok(())
    }

    /// Deletes a key (writes a null version).
    pub fn delete(&mut self, key: Key) -> CcResult<()> {
        self.put(key, Value::Null)
    }

    /// Read-modify-write of a single field: applies `f` to the current value
    /// of field `idx` (0 when absent) and writes the updated row back.
    pub fn update_field(
        &mut self,
        key: Key,
        idx: usize,
        f: impl FnOnce(i64) -> i64,
    ) -> CcResult<i64> {
        let current = self.get(key)?;
        let old = current.as_ref().and_then(|v| v.field(idx)).unwrap_or(0);
        let new = f(old);
        let updated = match current {
            Some(v) => v.with_field(idx, new),
            None => Value::Int(new).with_field(idx, new),
        };
        self.put(key, updated)?;
        Ok(new)
    }

    /// Adds `delta` to field `idx` of `key` and returns the new value.
    pub fn increment(&mut self, key: Key, idx: usize, delta: i64) -> CcResult<i64> {
        self.update_field(key, idx, |v| v + delta)
    }

    /// Requests an abort from inside the transaction body.
    pub fn request_abort(&mut self) -> CcError {
        CcError::Requested
    }

    /// Validation + commit. Returns the commit timestamp.
    pub(crate) fn commit(&mut self) -> CcResult<Timestamp> {
        self.validate_and_wait_deps()?;
        let commit_ts = apply_commit(self.db, &self.path, &mut self.ctx);
        self.phase = TxnPhase::Finished;
        Ok(commit_ts)
    }

    /// [`commit`](Txn::commit) with the durability wait deferred: the
    /// commit records are appended (fixing their place in the log order)
    /// but the flush is left to the caller, who must wait on the returned
    /// funnel sequence before acknowledging the commit. `None` means the
    /// commit is already as durable as the policy requires.
    pub(crate) fn commit_deferred(&mut self) -> CcResult<(Timestamp, Option<u64>)> {
        self.validate_and_wait_deps()?;
        let (commit_ts, harden) = apply_commit_deferred(self.db, &self.path, &mut self.ctx);
        self.phase = TxnPhase::Finished;
        Ok((commit_ts, harden))
    }

    /// Validation phase plus dependency wait — everything that can still
    /// abort the transaction. After this returns `Ok` the transaction is
    /// *prepared*: it holds every resource needed to commit on demand, which
    /// is the participant-side guarantee of the cluster's cross-shard
    /// two-phase commit.
    pub(crate) fn validate_and_wait_deps(&mut self) -> CcResult<()> {
        if self.ctx.must_abort {
            return Err(CcError::Conflict {
                mechanism: "engine",
                reason: "marked for abort",
            });
        }
        // Validation phase, top-down.
        for i in 0..self.path.len() {
            let entry = self.path[i].clone();
            entry.mechanism.validate(&mut self.ctx, entry.lane)?;
        }
        // Dependency wait: every transaction we read from (or trail in a
        // pipeline) must commit first; if any aborted, we must abort too.
        let deps: Vec<TxnId> = self.ctx.deps.iter().copied().collect();
        for dep in deps {
            let status = self
                .db
                .registry
                .wait_finished(dep, self.db.config.wait_timeout())?;
            if status == tebaldi_cc::TxnStatus::Aborted {
                return Err(CcError::DependencyAborted);
            }
        }
        // Ordering-only dependencies (e.g. TSO's smaller-timestamp set) must
        // merely finish before we commit; their abort is harmless to us.
        let order_deps: Vec<TxnId> = self
            .ctx
            .order_deps
            .iter()
            .filter(|d| !self.ctx.deps.contains(d))
            .copied()
            .collect();
        for dep in order_deps {
            self.db
                .registry
                .wait_finished(dep, self.db.config.wait_timeout())?;
        }
        Ok(())
    }

    /// Abort: discard writes, mark aborted, release resources.
    pub(crate) fn abort(&mut self) {
        if self.phase == TxnPhase::Finished {
            return;
        }
        apply_abort(self.db, &self.path, &mut self.ctx);
        self.phase = TxnPhase::Finished;
    }

    /// Prepare stabilization: every mechanism confirms (top-down) that the
    /// transaction's yes-vote cannot be invalidated by concurrent
    /// transactions while it is parked awaiting the coordinator's decision.
    pub(crate) fn mark_prepared(&mut self) -> CcResult<()> {
        for i in 0..self.path.len() {
            let entry = self.path[i].clone();
            entry.mechanism.mark_prepared(&mut self.ctx, entry.lane)?;
        }
        Ok(())
    }

    /// Decomposes the handle into the pieces a
    /// [`PreparedTxn`](crate::prepared::PreparedTxn) carries across threads.
    pub(crate) fn into_parts(self) -> (Vec<PathEntry>, TxnCtx) {
        (self.path, self.ctx)
    }

    /// The per-transaction context (engine-internal).
    pub(crate) fn ctx(&self) -> &TxnCtx {
        &self.ctx
    }
}

/// Applies a decided commit: assigns the commit timestamp, hardens the
/// durability records, publishes the versions, and runs every mechanism's
/// commit phase leaf→root. Infallible by design — everything that can fail
/// must happen in [`Txn::validate_and_wait_deps`], which is what makes the
/// prepared state of the cross-shard two-phase commit safe to park.
pub(crate) fn apply_commit(db: &Database, path: &[PathEntry], ctx: &mut TxnCtx) -> Timestamp {
    apply_commit_inner(db, path, ctx, false, false, None).0
}

/// [`apply_commit`] with the durability wait deferred: the commit records
/// are appended into the group-commit funnel (fixing their place in the
/// log order) but the flush wait is returned to the caller as a funnel
/// sequence instead of blocking here. The versions are published and the
/// locks released immediately, so the flush no longer sits inside the
/// critical section; read-from consistency survives because the durable
/// log is always a prefix of the append order (a dependent transaction's
/// flush hardens these records first).
pub(crate) fn apply_commit_deferred(
    db: &Database,
    path: &[PathEntry],
    ctx: &mut TxnCtx,
) -> (Timestamp, Option<u64>) {
    apply_commit_inner(db, path, ctx, false, true, None)
}

/// [`apply_commit`] for a transaction whose writes were already hardened in
/// a synchronous `Prepare` record: only the commit notification is logged
/// (recovery replays the prepared writes when the decision says commit), so
/// the write payloads never hit the WAL twice. `stamp` is the coordinator's
/// HLC decision stamp: every participant of a cross-shard commit stamps its
/// versions with exactly this value, making the commit atomically visible
/// to cross-shard snapshot reads (`None` draws a fresh local stamp).
pub(crate) fn apply_commit_prepared(
    db: &Database,
    path: &[PathEntry],
    ctx: &mut TxnCtx,
    stamp: Option<u64>,
) -> Timestamp {
    apply_commit_inner(db, path, ctx, true, false, stamp).0
}

fn apply_commit_inner(
    db: &Database,
    path: &[PathEntry],
    ctx: &mut TxnCtx,
    prepared: bool,
    defer_harden: bool,
    stamp: Option<u64>,
) -> (Timestamp, Option<u64>) {
    // Register the commit as in flight so snapshot readers (SSI) do not
    // take a start timestamp above it until every key is marked
    // committed; deregistered below once the commit is fully applied.
    let commit_ts = db.oracle.begin_commit();

    // The cluster-wide HLC stamp of this commit. A 2PC participant is
    // handed the coordinator's decision stamp (drawn after observing every
    // participant's vote clock, so it exceeds every stamp already on these
    // chains); everyone else draws from the local clock, which `now()`
    // keeps strictly above every snapshot timestamp this shard has
    // observed — a snapshot reader at `h` can therefore never miss a
    // commit stamped `<= h` (see `crate::hlc`). Read-only commits skip the
    // tick: they stamp nothing, and an idle clock stays cheap.
    let hlc = if ctx.write_keys.is_empty() {
        0
    } else {
        match stamp {
            Some(d) => {
                db.hlc.observe(d);
                d
            }
            None => db.hlc.now(),
        }
    };

    // Durability: one precommit record per participating data server,
    // then the commit notification carrying the global epoch — appended as
    // one batch so the whole transaction hardens with a single (group-
    // commit coalesced) flush. A prepared transaction already hardened its
    // writes in the Prepare record, so only the commit notification is
    // logged.
    let mut harden = None;
    if db.durability.is_enabled() && !ctx.write_keys.is_empty() {
        if prepared {
            db.durability
                .commit_stamped(ctx.txn, db.durability.current_epoch(), commit_ts, hlc);
        } else {
            let by_shard: Vec<_> = collect_writes_by_shard(db, ctx).into_iter().collect();
            if defer_harden {
                harden = db
                    .durability
                    .commit_transaction_deferred_stamped(ctx.txn, by_shard, commit_ts, hlc);
            } else {
                db.durability
                    .commit_transaction_stamped(ctx.txn, by_shard, commit_ts, hlc);
            }
        }
    } else if defer_harden {
        // A read-only commit writes no records, but its result may derive
        // from a deferred commit whose versions are visible while its
        // flush is still pending: the acknowledgement must wait for that
        // flush (see `DurabilityManager::read_barrier`), or a crash could
        // lose data an acknowledged read already reflected.
        harden = db.durability.read_barrier();
    }

    // Make the new versions visible, then mark the transaction committed
    // (which wakes dependency waiters), then let mechanisms release
    // their resources leaf→root.
    db.store
        .commit_writes_stamped(ctx.txn, &ctx.write_keys, commit_ts, hlc);
    db.registry.mark_committed(ctx.txn, commit_ts);
    db.oracle.end_commit(commit_ts);
    if let Some(history) = &db.history {
        history.commit(ctx.txn, commit_ts);
    }
    for entry in path.iter().rev() {
        entry.mechanism.commit(ctx, entry.lane, commit_ts);
    }
    (commit_ts, harden)
}

/// Applies an abort: discards writes, marks the transaction aborted, and
/// releases every mechanism resource leaf→root.
pub(crate) fn apply_abort(db: &Database, path: &[PathEntry], ctx: &mut TxnCtx) {
    db.store.abort_writes(ctx.txn, &ctx.write_keys);
    db.registry.mark_aborted(ctx.txn);
    if let Some(history) = &db.history {
        history.abort(ctx.txn);
    }
    for entry in path.iter().rev() {
        entry.mechanism.abort(ctx, entry.lane);
    }
}

/// The transaction's writes with the values they will commit, in write
/// order — the payload of the cross-shard `Prepare` record.
pub(crate) fn collect_writes(db: &Database, ctx: &TxnCtx) -> Vec<(Key, Value)> {
    ctx.write_keys
        .iter()
        .map(|key| {
            let value = db
                .store
                .read(key, tebaldi_storage::ReadSpec::OwnOrCommitted(ctx.txn))
                .unwrap_or(Value::Null);
            (*key, value)
        })
        .collect()
}

/// Groups the transaction's writes by data-server shard with the values
/// they will commit, as logged in precommit records.
pub(crate) fn collect_writes_by_shard(
    db: &Database,
    ctx: &TxnCtx,
) -> std::collections::HashMap<u32, Vec<(Key, Value)>> {
    let mut by_shard: std::collections::HashMap<u32, Vec<(Key, Value)>> =
        std::collections::HashMap::new();
    for key in &ctx.write_keys {
        let shard = db.store.shard_index(key) as u32;
        let value = db
            .store
            .read(key, tebaldi_storage::ReadSpec::OwnOrCommitted(ctx.txn))
            .unwrap_or(Value::Null);
        by_shard.entry(shard).or_default().push((*key, value));
    }
    by_shard
}
