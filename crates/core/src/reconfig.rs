//! Online reconfiguration protocols (§5.5).
//!
//! Tebaldi keeps evolving its MCC configuration at runtime. Two protocols
//! switch the database from the current CC tree to a new one while ongoing
//! transactions stay isolated:
//!
//! * **Partial restart** (§5.5.1) — drain every group, rebuild the whole
//!   concurrency-control module (including reconstructing its internal
//!   state from storage, the expensive part a full restart would also pay),
//!   swap, resume. Cheap compared to a real restart because the storage
//!   module and its data survive untouched.
//! * **Online update** (§5.5.2) — when the change is contained in a proper
//!   subtree of the CC tree, only the groups below the lowest changed node
//!   need to drain; the rest of the database keeps executing while the new
//!   subtree is prepared. The final swap still uses a brief global barrier
//!   in this reproduction (so old and new mechanism instances never serve
//!   overlapping transactions), which is documented as a substitution in
//!   DESIGN.md; the measurable difference — a much smaller throughput dip
//!   because the expensive preparation happens outside the barrier and only
//!   the affected groups stop early — is preserved (Fig. 5.19).

use crate::db::Database;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tebaldi_cc::{CcNodeSpec, CcTree, CcTreeSpec, TreeServices};
use tebaldi_storage::{GroupId, TxnTypeId};

/// Which reconfiguration protocol to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigProtocol {
    /// Drain everything, rebuild everything.
    PartialRestart,
    /// Drain only the affected subtree's groups; falls back to a partial
    /// restart when the change reaches the root.
    OnlineUpdate,
}

/// Outcome of a reconfiguration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// Protocol actually executed (OnlineUpdate may fall back).
    pub protocol: ReconfigProtocol,
    /// Whether OnlineUpdate had to fall back to a partial restart.
    pub used_fallback: bool,
    /// Total wall-clock time of the switch.
    pub total_ms: f64,
    /// Time spent with (some) groups drained.
    pub drained_ms: f64,
    /// Number of groups that had to drain before the swap.
    pub drained_groups: usize,
    /// Keys scanned while rebuilding CC-internal state (partial restart
    /// only).
    pub scanned_keys: usize,
}

/// Result of comparing two configuration trees.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecDiff {
    /// Transaction types whose handling changes.
    pub affected_types: Vec<TxnTypeId>,
    /// True when the lowest node containing every change is the root.
    pub change_at_root: bool,
    /// True when the specs are identical.
    pub identical: bool,
}

/// Computes which transaction types are affected by switching from `old` to
/// `new`, and whether the change reaches the root of the tree.
pub fn diff_specs(old: &CcTreeSpec, new: &CcTreeSpec) -> SpecDiff {
    fn node_differs(a: &CcNodeSpec, b: &CcNodeSpec) -> bool {
        a.kind != b.kind
            || a.is_leaf() != b.is_leaf()
            || a.txn_types != b.txn_types
            || a.children.len() != b.children.len()
            || a.instance_partitions != b.instance_partitions
    }

    /// Returns the set of affected types of the lowest changed subtree pair,
    /// plus the depth (0 = root) at which the change was rooted. `None`
    /// means the subtrees are identical.
    fn walk(a: &CcNodeSpec, b: &CcNodeSpec, depth: usize) -> Option<(Vec<TxnTypeId>, usize)> {
        if node_differs(a, b) {
            let mut types = a.all_types();
            types.extend(b.all_types());
            types.sort_unstable();
            types.dedup();
            return Some((types, depth));
        }
        let changed: Vec<(Vec<TxnTypeId>, usize)> = a
            .children
            .iter()
            .zip(&b.children)
            .filter_map(|(ca, cb)| walk(ca, cb, depth + 1))
            .collect();
        match changed.len() {
            0 => None,
            1 => changed.into_iter().next(),
            _ => {
                // Multiple children changed: this node is the change root.
                let mut types = a.all_types();
                types.extend(b.all_types());
                types.sort_unstable();
                types.dedup();
                Some((types, depth))
            }
        }
    }

    match walk(&old.root, &new.root, 0) {
        None => SpecDiff {
            affected_types: Vec::new(),
            change_at_root: false,
            identical: true,
        },
        Some((types, depth)) => SpecDiff {
            affected_types: types,
            change_at_root: depth == 0,
            identical: false,
        },
    }
}

impl Database {
    /// Switches the database to `new_spec` using the requested protocol.
    pub fn reconfigure(
        &self,
        new_spec: CcTreeSpec,
        protocol: ReconfigProtocol,
    ) -> Result<ReconfigReport, String> {
        new_spec.validate()?;
        let started = Instant::now();
        let old_spec = self.current_spec();
        let diff = diff_specs(&old_spec, &new_spec);
        if diff.identical {
            return Ok(ReconfigReport {
                protocol,
                used_fallback: false,
                total_ms: 0.0,
                drained_ms: 0.0,
                drained_groups: 0,
                scanned_keys: 0,
            });
        }

        let drain_timeout = Duration::from_secs(10);
        match protocol {
            ReconfigProtocol::PartialRestart => {
                let drain_started = Instant::now();
                self.gate.drain_all(drain_timeout);
                let scanned = self.rebuild_cc_module(&new_spec)?;
                let drained_groups = self.current_tree().group_count();
                self.gate.resume();
                Ok(ReconfigReport {
                    protocol: ReconfigProtocol::PartialRestart,
                    used_fallback: false,
                    total_ms: ms(started.elapsed()),
                    drained_ms: ms(drain_started.elapsed()),
                    drained_groups,
                    scanned_keys: scanned,
                })
            }
            ReconfigProtocol::OnlineUpdate => {
                if diff.change_at_root {
                    // The paper's online update only applies below the root;
                    // otherwise fall back.
                    let mut report =
                        self.reconfigure(new_spec, ReconfigProtocol::PartialRestart)?;
                    report.protocol = ReconfigProtocol::OnlineUpdate;
                    report.used_fallback = true;
                    return Ok(report);
                }
                // Prepare the new tree while unaffected groups keep running.
                let new_tree = self.build_tree(&new_spec)?;
                // Drain only the groups below the change point.
                let old_tree = self.current_tree();
                let affected: HashSet<GroupId> = diff
                    .affected_types
                    .iter()
                    .flat_map(|ty| old_tree.groups_of_type(*ty).iter().copied())
                    .collect();
                let drain_started = Instant::now();
                self.gate
                    .drain_groups(affected.iter().copied(), drain_timeout);
                // Brief global barrier for the swap itself.
                self.gate.drain_all(drain_timeout);
                *self.tree.write() = Arc::new(new_tree);
                self.reconfigurations.fetch_add(1, Ordering::Relaxed);
                self.gate.resume();
                Ok(ReconfigReport {
                    protocol: ReconfigProtocol::OnlineUpdate,
                    used_fallback: false,
                    total_ms: ms(started.elapsed()),
                    drained_ms: ms(drain_started.elapsed()),
                    drained_groups: affected.len(),
                    scanned_keys: 0,
                })
            }
        }
    }

    fn build_tree(&self, spec: &CcTreeSpec) -> Result<CcTree, String> {
        let services = TreeServices {
            registry: Arc::clone(&self.registry),
            oracle: Arc::clone(&self.oracle),
            events: Arc::clone(&self.events),
            wait_timeout: self.config.wait_timeout(),
        };
        CcTree::build(spec.clone(), &self.procedures, &services)
    }

    /// Rebuilds the whole concurrency-control module: new mechanism
    /// instances for every node plus the state-reconstruction scan of the
    /// prepare phase (§5.5.1). Returns the number of keys scanned.
    fn rebuild_cc_module(&self, spec: &CcTreeSpec) -> Result<usize, String> {
        let tree = self.build_tree(spec)?;
        // Reconstruct CC-internal state (indices, version maps): logically a
        // recovery transaction that touches the latest committed version of
        // every object (§4.5.4 / §5.5.1). The scan cost is what makes the
        // partial restart visibly more expensive than the online update.
        let mut scanned = 0usize;
        self.store.for_each_key(|_, chain| {
            if chain.latest_committed().is_some() {
                scanned += 1;
            }
        });
        self.registry.compact();
        *self.tree.write() = Arc::new(tree);
        self.reconfigurations.fetch_add(1, Ordering::Relaxed);
        Ok(scanned)
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tebaldi_cc::CcKind;

    fn leaf(kind: CcKind, label: &str, tys: &[u32]) -> CcNodeSpec {
        CcNodeSpec::leaf(kind, label, tys.iter().map(|t| TxnTypeId(*t)).collect())
    }

    #[test]
    fn identical_specs_have_empty_diff() {
        let spec = CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "root",
            vec![leaf(CcKind::TwoPl, "a", &[0]), leaf(CcKind::Rp, "b", &[1])],
        ));
        let diff = diff_specs(&spec, &spec.clone());
        assert!(diff.identical);
        assert!(diff.affected_types.is_empty());
    }

    #[test]
    fn leaf_change_is_not_at_root() {
        let old = CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "root",
            vec![
                leaf(CcKind::NoCc, "readers", &[2]),
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "updates",
                    vec![
                        leaf(CcKind::TwoPl, "a", &[0]),
                        leaf(CcKind::TwoPl, "b", &[1]),
                    ],
                ),
            ],
        ));
        // Change only the mechanism of leaf "a".
        let new = CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "root",
            vec![
                leaf(CcKind::NoCc, "readers", &[2]),
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "updates",
                    vec![leaf(CcKind::Rp, "a", &[0]), leaf(CcKind::TwoPl, "b", &[1])],
                ),
            ],
        ));
        let diff = diff_specs(&old, &new);
        assert!(!diff.identical);
        assert!(!diff.change_at_root);
        assert_eq!(diff.affected_types, vec![TxnTypeId(0)]);
    }

    #[test]
    fn root_change_detected() {
        let old = CcTreeSpec::new(leaf(CcKind::TwoPl, "all", &[0, 1]));
        let new = CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "root",
            vec![
                leaf(CcKind::TwoPl, "a", &[0]),
                leaf(CcKind::TwoPl, "b", &[1]),
            ],
        ));
        let diff = diff_specs(&old, &new);
        assert!(diff.change_at_root);
        assert_eq!(diff.affected_types.len(), 2);
    }

    #[test]
    fn multiple_changed_children_root_the_change_at_parent() {
        let old = CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "root",
            vec![
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "u",
                    vec![
                        leaf(CcKind::TwoPl, "a", &[0]),
                        leaf(CcKind::TwoPl, "b", &[1]),
                    ],
                ),
                leaf(CcKind::NoCc, "r", &[2]),
            ],
        ));
        let new = CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "root",
            vec![
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "u",
                    vec![leaf(CcKind::Rp, "a", &[0]), leaf(CcKind::Tso, "b", &[1])],
                ),
                leaf(CcKind::NoCc, "r", &[2]),
            ],
        ));
        let diff = diff_specs(&old, &new);
        assert!(!diff.change_at_root);
        assert_eq!(diff.affected_types, vec![TxnTypeId(0), TxnTypeId(1)]);
    }
}
