//! The closed-loop benchmark driver.
//!
//! The paper runs its benchmarks with closed-loop test clients (§4.6): each
//! client issues one transaction, waits for it to finish (retrying aborted
//! attempts), then immediately issues the next. Increasing the number of
//! clients increases contention — that is the x-axis of Figures 4.7, 4.8
//! and 4.11.

use crate::metrics::{BenchResult, LatencyRecorder};
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tebaldi_core::Database;

/// Options of one benchmark run.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Number of closed-loop client threads.
    pub clients: usize,
    /// Measured duration (after warm-up).
    pub duration: Duration,
    /// Warm-up period excluded from the measurement.
    pub warmup: Duration,
    /// Base RNG seed (client `i` uses `seed + i`).
    pub seed: u64,
    /// Label recorded in the result.
    pub config_label: String,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            clients: 8,
            duration: Duration::from_millis(1500),
            warmup: Duration::from_millis(300),
            seed: 42,
            config_label: String::new(),
        }
    }
}

impl BenchOptions {
    /// Short runs used by tests and `--quick` experiment modes.
    pub fn quick(clients: usize) -> Self {
        BenchOptions {
            clients,
            duration: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
            ..BenchOptions::default()
        }
    }

    /// Sets the configuration label.
    pub fn labeled(mut self, label: &str) -> Self {
        self.config_label = label.to_string();
        self
    }
}

struct ClientOutcome {
    latencies: LatencyRecorder,
    committed: u64,
    aborted: u64,
    committed_by_type: HashMap<u32, u64>,
}

/// The shared closed-loop harness: spawns one thread per client running
/// `make_runner(client_seed)`'s closure until stopped, handles the
/// warmup/measure choreography, and merges the per-client outcomes. Both
/// the single-database and the cluster drivers delegate here so the
/// measurement semantics can never diverge.
fn run_closed_loop(
    workload_name: &str,
    options: &BenchOptions,
    make_runner: impl Fn(u64) -> Box<dyn FnMut(&mut StdRng) -> crate::workload::WorkUnit + Send>,
) -> BenchResult {
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::with_capacity(options.clients);
    for client in 0..options.clients {
        let stop = Arc::clone(&stop);
        let measuring = Arc::clone(&measuring);
        let seed = options.seed + client as u64;
        let mut run_once = make_runner(seed);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut outcome = ClientOutcome {
                latencies: LatencyRecorder::new(),
                committed: 0,
                aborted: 0,
                committed_by_type: HashMap::new(),
            };
            while !stop.load(Ordering::Relaxed) {
                let started = Instant::now();
                let unit = run_once(&mut rng);
                if !measuring.load(Ordering::Relaxed) {
                    continue;
                }
                outcome.aborted += unit.aborts as u64;
                if unit.committed {
                    outcome.committed += 1;
                    *outcome.committed_by_type.entry(unit.ty.0).or_insert(0) += 1;
                    outcome.latencies.record(unit.ty, started.elapsed());
                }
            }
            outcome
        }));
    }

    std::thread::sleep(options.warmup);
    measuring.store(true, Ordering::Relaxed);
    let measure_started = Instant::now();
    std::thread::sleep(options.duration);
    measuring.store(false, Ordering::Relaxed);
    let measured = measure_started.elapsed();
    stop.store(true, Ordering::Relaxed);

    let mut latencies = LatencyRecorder::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut committed_by_type: HashMap<u32, u64> = HashMap::new();
    for handle in handles {
        let outcome = handle.join().expect("benchmark client panicked");
        latencies.merge(outcome.latencies);
        committed += outcome.committed;
        aborted += outcome.aborted;
        for (ty, count) in outcome.committed_by_type {
            *committed_by_type.entry(ty).or_insert(0) += count;
        }
    }

    let duration_s = measured.as_secs_f64().max(1e-9);
    BenchResult {
        workload: workload_name.to_string(),
        config: options.config_label.clone(),
        clients: options.clients,
        duration_s,
        committed,
        aborted,
        throughput: committed as f64 / duration_s,
        latency_by_type: latencies
            .stats()
            .into_iter()
            .map(|(ty, s)| (ty.0, s))
            .collect(),
        latency_hist_by_type: latencies
            .snapshots()
            .into_iter()
            .map(|(ty, h)| (ty.0, h))
            .collect(),
        latency_overall: latencies.overall(),
        committed_by_type,
    }
}

/// Runs `workload` against `db` with closed-loop clients and returns the
/// merged result. The workload must already be loaded.
pub fn run_benchmark(
    db: &Arc<Database>,
    workload: &Arc<dyn Workload>,
    options: &BenchOptions,
) -> BenchResult {
    run_closed_loop(workload.name(), options, |_seed| {
        let db = Arc::clone(db);
        let workload = Arc::clone(workload);
        Box::new(move |rng| workload.run_once(&db, rng))
    })
}

/// Builds a fresh database for `workload` with the given CC configuration,
/// loads the data, and runs the benchmark. This is the all-in-one entry
/// point used by the experiment harness.
pub fn bench_config(
    workload: &Arc<dyn Workload>,
    spec: tebaldi_cc::CcTreeSpec,
    db_config: tebaldi_core::DbConfig,
    options: &BenchOptions,
) -> BenchResult {
    let db = Arc::new(
        Database::builder(db_config)
            .procedures(workload.procedures())
            .cc_spec(spec)
            .build()
            .expect("database build"),
    );
    workload.load(&db);
    let result = run_benchmark(&db, workload, options);
    db.shutdown();
    result
}

/// Runs `workload` against a sharded `cluster` with closed-loop clients and
/// returns the merged result. The workload must already be loaded. This is
/// the cluster-routing twin of [`run_benchmark`].
pub fn run_cluster_benchmark(
    cluster: &Arc<tebaldi_cluster::Cluster>,
    workload: &Arc<dyn crate::workload::ClusterWorkload>,
    options: &BenchOptions,
) -> BenchResult {
    run_closed_loop(workload.name(), options, |_seed| {
        let cluster = Arc::clone(cluster);
        let workload = Arc::clone(workload);
        Box::new(move |rng| workload.run_once(&cluster, rng))
    })
}

/// Builds a fresh cluster for `workload` with the given CC configuration,
/// loads every shard, runs the benchmark, and shuts the cluster down. The
/// all-in-one entry point for cluster experiments.
pub fn bench_cluster_config(
    workload: &Arc<dyn crate::workload::ClusterWorkload>,
    spec: tebaldi_cc::CcTreeSpec,
    cluster_config: tebaldi_cluster::ClusterConfig,
    options: &BenchOptions,
) -> BenchResult {
    let mut registry = tebaldi_core::ProcRegistry::new();
    workload.register_procedures(&mut registry);
    let cluster = Arc::new(
        tebaldi_cluster::Cluster::builder(cluster_config)
            .procedures(workload.procedures())
            .shard_procedures(registry)
            .cc_spec(spec)
            .build()
            .expect("cluster build"),
    );
    workload.load(&cluster);
    let result = run_cluster_benchmark(&cluster, workload, options);
    cluster.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkUnit, Workload};
    use tebaldi_cc::{AccessMode, CcKind, CcTreeSpec, ProcedureInfo, ProcedureSet};
    use tebaldi_core::{DbConfig, ProcedureCall};
    use tebaldi_storage::{Key, TableId, TxnTypeId};

    /// A tiny workload: each transaction increments one of a few counters.
    struct Counters;

    impl Workload for Counters {
        fn name(&self) -> &str {
            "counters"
        }

        fn procedures(&self) -> ProcedureSet {
            let mut set = ProcedureSet::new();
            set.insert(ProcedureInfo::new(
                TxnTypeId(0),
                "bump",
                vec![(TableId(0), AccessMode::Write)],
            ));
            set
        }

        fn load(&self, db: &Database) {
            for i in 0..8 {
                db.load(Key::simple(TableId(0), i), tebaldi_storage::Value::Int(0));
            }
        }

        fn run_once(&self, db: &Database, rng: &mut StdRng) -> WorkUnit {
            use rand::Rng;
            let key = Key::simple(TableId(0), rng.gen_range(0..8));
            let call = ProcedureCall::new(TxnTypeId(0));
            match db.execute_with_retry(&call, 20, |txn| txn.increment(key, 0, 1)) {
                Ok((_, aborts)) => WorkUnit::committed(TxnTypeId(0), aborts),
                Err(_) => WorkUnit::failed(TxnTypeId(0), 20),
            }
        }
    }

    #[test]
    fn closed_loop_driver_produces_throughput() {
        let workload: Arc<dyn Workload> = Arc::new(Counters);
        let result = bench_config(
            &workload,
            CcTreeSpec::monolithic(CcKind::TwoPl, vec![TxnTypeId(0)]),
            DbConfig::for_tests(),
            &BenchOptions::quick(4).labeled("2PL"),
        );
        assert!(result.committed > 0, "some transactions must commit");
        assert!(result.throughput > 0.0);
        assert_eq!(result.config, "2PL");
        assert_eq!(result.clients, 4);
        assert!(result.latency_overall.count > 0);
    }
}
