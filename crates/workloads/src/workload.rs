//! The workload abstraction consumed by the benchmark driver.

use rand::rngs::StdRng;
use tebaldi_cc::ProcedureSet;
use tebaldi_core::Database;
use tebaldi_storage::TxnTypeId;

/// Outcome of one closed-loop iteration.
#[derive(Clone, Copy, Debug)]
pub struct WorkUnit {
    /// The transaction type that was executed.
    pub ty: TxnTypeId,
    /// True when the transaction eventually committed.
    pub committed: bool,
    /// Number of aborted attempts before the final outcome.
    pub aborts: usize,
}

impl WorkUnit {
    /// A committed unit with the given number of retries.
    pub fn committed(ty: TxnTypeId, aborts: usize) -> Self {
        WorkUnit {
            ty,
            committed: true,
            aborts,
        }
    }

    /// A unit that gave up after the given number of aborted attempts.
    pub fn failed(ty: TxnTypeId, aborts: usize) -> Self {
        WorkUnit {
            ty,
            committed: false,
            aborts,
        }
    }
}

/// A benchmark workload: data population plus a transaction mix.
pub trait Workload: Send + Sync {
    /// Workload name used in reports.
    fn name(&self) -> &str;

    /// Static procedure descriptions (table access sequences) for every
    /// transaction type, used by the CC tree builder and by RP's analysis.
    fn procedures(&self) -> ProcedureSet;

    /// Populates the initial database state.
    fn load(&self, db: &Database);

    /// Picks one transaction according to the workload mix, executes it with
    /// retries, and reports the outcome.
    fn run_once(&self, db: &Database, rng: &mut StdRng) -> WorkUnit;
}

/// A workload that can run against a sharded [`Cluster`]: data placement by
/// partition key plus a transaction mix that classifies each invocation as
/// single-shard (fast path) or multi-shard (two-phase commit).
///
/// [`Cluster`]: tebaldi_cluster::Cluster
pub trait ClusterWorkload: Send + Sync {
    /// Workload name used in reports.
    fn name(&self) -> &str;

    /// Static procedure descriptions, installed on every shard.
    fn procedures(&self) -> ProcedureSet;

    /// Registers the workload's per-shard transaction bodies (the
    /// [`ShardProcedure`](tebaldi_core::ShardProcedure)s its invocations
    /// name by [`ProcId`](tebaldi_core::ProcId)). Called once at cluster
    /// setup; the bodies are installed on every shard, so invocations only
    /// ship ids and encoded arguments — never closures.
    fn register_procedures(&self, registry: &mut tebaldi_core::ProcRegistry);

    /// Populates every shard with its partition of the initial state.
    fn load(&self, cluster: &tebaldi_cluster::Cluster);

    /// Picks one transaction, routes it, executes it with retries, and
    /// reports the outcome.
    fn run_once(&self, cluster: &tebaldi_cluster::Cluster, rng: &mut StdRng) -> WorkUnit;
}
