//! Benchmark metrics.
//!
//! The paper reports throughput (committed transactions per second),
//! per-transaction-type latency, and abort behaviour, all measured at the
//! closed-loop clients (§4.6). [`LatencyRecorder`] collects latencies per
//! type with a fixed memory footprint; [`BenchResult`] is the merged,
//! printable outcome of one benchmark run.

use serde::Serialize;
use std::collections::HashMap;
use std::time::Duration;
use tebaldi_storage::TxnTypeId;

/// Per-type latency statistics.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LatencyStats {
    /// Number of committed transactions measured.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// 50th percentile latency in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Maximum observed latency in milliseconds.
    pub max_ms: f64,
}

/// Collects latency samples for one client thread.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: HashMap<TxnTypeId, Vec<f64>>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one committed transaction's latency.
    pub fn record(&mut self, ty: TxnTypeId, latency: Duration) {
        self.samples
            .entry(ty)
            .or_default()
            .push(latency.as_secs_f64() * 1_000.0);
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: LatencyRecorder) {
        for (ty, mut samples) in other.samples {
            self.samples.entry(ty).or_default().append(&mut samples);
        }
    }

    /// Computes per-type statistics.
    pub fn stats(&self) -> HashMap<TxnTypeId, LatencyStats> {
        self.samples
            .iter()
            .map(|(ty, samples)| (*ty, summarize(samples)))
            .collect()
    }

    /// Statistics over all types combined.
    pub fn overall(&self) -> LatencyStats {
        let all: Vec<f64> = self.samples.values().flatten().copied().collect();
        summarize(&all)
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.samples.values().map(|v| v.len()).sum()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn summarize(samples: &[f64]) -> LatencyStats {
    if samples.is_empty() {
        return LatencyStats::default();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let count = sorted.len();
    let mean = sorted.iter().sum::<f64>() / count as f64;
    let pct = |p: f64| sorted[((count as f64 - 1.0) * p).round() as usize];
    LatencyStats {
        count: count as u64,
        mean_ms: mean,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        max_ms: *sorted.last().unwrap(),
    }
}

/// The merged result of one benchmark run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct BenchResult {
    /// Workload name.
    pub workload: String,
    /// Configuration label (e.g. "Tebaldi 3-layer").
    pub config: String,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Measured wall-clock duration in seconds.
    pub duration_s: f64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted attempts (before the retry succeeded or gave up).
    pub aborted: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Per-type latency statistics.
    pub latency_by_type: HashMap<u32, LatencyStats>,
    /// Latency over every committed transaction.
    pub latency_overall: LatencyStats,
    /// Commit counts per type.
    pub committed_by_type: HashMap<u32, u64>,
}

impl BenchResult {
    /// Abort rate over attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<24} {:<18} clients={:<5} {:>10.0} txn/s  aborts={:.1}%  p50={:.2}ms p99={:.2}ms",
            self.workload,
            self.config,
            self.clients,
            self.throughput,
            self.abort_rate() * 100.0,
            self.latency_overall.p50_ms,
            self.latency_overall.p99_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_statistics() {
        let mut rec = LatencyRecorder::new();
        for i in 1..=100u64 {
            rec.record(TxnTypeId(0), Duration::from_millis(i));
        }
        let stats = rec.stats();
        let s = &stats[&TxnTypeId(0)];
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 0.5);
        assert!(s.p50_ms >= 49.0 && s.p50_ms <= 52.0);
        assert!(s.p99_ms >= 98.0);
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(TxnTypeId(0), Duration::from_millis(1));
        let mut b = LatencyRecorder::new();
        b.record(TxnTypeId(0), Duration::from_millis(3));
        b.record(TxnTypeId(1), Duration::from_millis(5));
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.overall().count, 3);
    }

    #[test]
    fn bench_result_summary_and_abort_rate() {
        let r = BenchResult {
            workload: "tpcc".into(),
            config: "2PL".into(),
            clients: 8,
            committed: 75,
            aborted: 25,
            throughput: 1234.0,
            ..Default::default()
        };
        assert!((r.abort_rate() - 0.25).abs() < 1e-9);
        assert!(r.summary().contains("2PL"));
        assert_eq!(BenchResult::default().abort_rate(), 0.0);
    }
}
