//! Benchmark metrics.
//!
//! The paper reports throughput (committed transactions per second),
//! per-transaction-type latency, and abort behaviour, all measured at the
//! closed-loop clients (§4.6). [`LatencyRecorder`] collects latencies per
//! type into the shared log-bucketed histogram from `tebaldi-obs` — the
//! same instrument the engine uses internally — so memory stays fixed
//! regardless of run length and percentiles match the engine's own
//! exposition (~1.6% relative bucket error; count, mean, and max are
//! exact). [`BenchResult`] is the merged, printable outcome of one
//! benchmark run.

use serde::Serialize;
use std::collections::HashMap;
use std::time::Duration;
use tebaldi_obs::{Histogram, HistogramSnapshot};
use tebaldi_storage::TxnTypeId;

const NS_PER_MS: f64 = 1e6;

/// Per-type latency statistics.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LatencyStats {
    /// Number of committed transactions measured.
    pub count: u64,
    /// Mean latency in milliseconds (exact).
    pub mean_ms: f64,
    /// 50th percentile latency in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Maximum observed latency in milliseconds (exact).
    pub max_ms: f64,
}

impl LatencyStats {
    /// Statistics from a histogram of nanosecond samples.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        LatencyStats {
            count: snap.count,
            mean_ms: snap.mean() / NS_PER_MS,
            p50_ms: snap.p50() as f64 / NS_PER_MS,
            p95_ms: snap.p95() as f64 / NS_PER_MS,
            p99_ms: snap.p99() as f64 / NS_PER_MS,
            max_ms: snap.max as f64 / NS_PER_MS,
        }
    }
}

/// Collects latency samples for one client thread.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    histograms: HashMap<TxnTypeId, Histogram>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one committed transaction's latency.
    pub fn record(&mut self, ty: TxnTypeId, latency: Duration) {
        self.histograms
            .entry(ty)
            .or_default()
            .record_duration(latency);
    }

    /// Merges another recorder into this one (exact: bucket counts, sums,
    /// and maxima carry over unchanged).
    pub fn merge(&mut self, other: LatencyRecorder) {
        for (ty, histogram) in other.histograms {
            self.histograms
                .entry(ty)
                .or_default()
                .merge_snapshot(&histogram.snapshot());
        }
    }

    /// Computes per-type statistics.
    pub fn stats(&self) -> HashMap<TxnTypeId, LatencyStats> {
        self.histograms
            .iter()
            .map(|(ty, h)| (*ty, LatencyStats::from_snapshot(&h.snapshot())))
            .collect()
    }

    /// The raw per-type histograms (nanosecond samples), for consumers
    /// that analyse distributions rather than summary statistics.
    pub fn snapshots(&self) -> HashMap<TxnTypeId, HistogramSnapshot> {
        self.histograms
            .iter()
            .map(|(ty, h)| (*ty, h.snapshot()))
            .collect()
    }

    /// Statistics over all types combined.
    pub fn overall(&self) -> LatencyStats {
        LatencyStats::from_snapshot(&self.overall_snapshot())
    }

    /// The merged histogram over all types, for callers that want raw
    /// nanosecond quantiles rather than millisecond statistics.
    pub fn overall_snapshot(&self) -> HistogramSnapshot {
        let mut all = HistogramSnapshot::default();
        for histogram in self.histograms.values() {
            all.merge(&histogram.snapshot());
        }
        all
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.histograms
            .values()
            .map(|h| h.snapshot().count as usize)
            .sum()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The merged result of one benchmark run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct BenchResult {
    /// Workload name.
    pub workload: String,
    /// Configuration label (e.g. "Tebaldi 3-layer").
    pub config: String,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Measured wall-clock duration in seconds.
    pub duration_s: f64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted attempts (before the retry succeeded or gave up).
    pub aborted: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Per-type latency statistics.
    pub latency_by_type: HashMap<u32, LatencyStats>,
    /// Per-type latency histograms (nanosecond samples) — the raw
    /// distributions behind [`BenchResult::latency_by_type`], in the shared
    /// `tebaldi-obs` format.
    pub latency_hist_by_type: HashMap<u32, HistogramSnapshot>,
    /// Latency over every committed transaction.
    pub latency_overall: LatencyStats,
    /// Commit counts per type.
    pub committed_by_type: HashMap<u32, u64>,
}

impl BenchResult {
    /// Abort rate over attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<24} {:<18} clients={:<5} {:>10.0} txn/s  aborts={:.1}%  p50={:.2}ms p99={:.2}ms",
            self.workload,
            self.config,
            self.clients,
            self.throughput,
            self.abort_rate() * 100.0,
            self.latency_overall.p50_ms,
            self.latency_overall.p99_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_statistics() {
        let mut rec = LatencyRecorder::new();
        for i in 1..=100u64 {
            rec.record(TxnTypeId(0), Duration::from_millis(i));
        }
        let stats = rec.stats();
        let s = &stats[&TxnTypeId(0)];
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 0.5);
        assert!(s.p50_ms >= 49.0 && s.p50_ms <= 52.0);
        assert!(s.p95_ms >= 93.0 && s.p95_ms <= 97.0);
        assert!(s.p99_ms >= 98.0);
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(TxnTypeId(0), Duration::from_millis(1));
        let mut b = LatencyRecorder::new();
        b.record(TxnTypeId(0), Duration::from_millis(3));
        b.record(TxnTypeId(1), Duration::from_millis(5));
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.overall().count, 3);
    }

    #[test]
    fn bench_result_summary_and_abort_rate() {
        let r = BenchResult {
            workload: "tpcc".into(),
            config: "2PL".into(),
            clients: 8,
            committed: 75,
            aborted: 25,
            throughput: 1234.0,
            ..Default::default()
        };
        assert!((r.abort_rate() - 0.25).abs() < 1e-9);
        assert!(r.summary().contains("2PL"));
        assert_eq!(BenchResult::default().abort_rate(), 0.0);
    }
}
