//! # tebaldi-workloads
//!
//! The benchmark workloads of the Tebaldi evaluation and the closed-loop
//! driver that runs them:
//!
//! * [`tpcc`] — TPC-C adapted to the key-value interface (§4.6.1), with
//!   every CC-tree configuration of Fig. 4.6 and the hot_item extension of
//!   §4.6.3,
//! * [`seats`] — the SEATS airline-reservation benchmark (§4.6.2) with its
//!   monolithic, two-layer and per-flight three-layer configurations, plus
//!   the flight-partitioned cluster variant ([`seats::cluster`]),
//! * [`micro`] — the microbenchmarks of §4.6.4 (cross-group mechanisms and
//!   hierarchies) and §4.6.5 (layer overhead),
//! * [`driver`] / [`metrics`] — closed-loop clients, latency recording and
//!   merged benchmark results.

pub mod driver;
pub mod metrics;
pub mod micro;
pub mod seats;
pub mod tpcc;
pub mod workload;

pub use driver::{
    bench_cluster_config, bench_config, run_benchmark, run_cluster_benchmark, BenchOptions,
};
pub use metrics::{BenchResult, LatencyRecorder, LatencyStats};
pub use workload::{ClusterWorkload, WorkUnit, Workload};
