//! The TPC-C workload (§4.6.1, §5.6.1) and its CC-tree configurations.
//!
//! The standard mix follows TPC-C (45% new_order, 43% payment, 4% each of
//! delivery, order_status and stock_level); when the hot_item extension of
//! §4.6.3 is enabled the mix becomes 41.8 / 41.8 / 4.1 / 4.1 / 4.1 / 4.1 as
//! in the paper.
//!
//! [`configs`] builds every configuration evaluated in the paper:
//! monolithic 2PL and SSI, the two Callas groupings of Fig. 4.6a/b, and the
//! Tebaldi two- and three-layer hierarchies of Fig. 4.6c/d (plus the
//! three-/four-layer hot_item variants of §4.6.3 and the manual/automatic
//! configurations referenced in Chapter 5).

pub mod cluster;
pub mod schema;
pub mod transactions;

use crate::workload::{WorkUnit, Workload};
use rand::rngs::StdRng;
use rand::Rng;
use schema::{types, TpccKeys, TpccParams, TpccTables};
use std::sync::atomic::{AtomicU32, Ordering};
use tebaldi_cc::{CcKind, CcNodeSpec, CcTreeSpec, ProcedureSet};
use tebaldi_core::{Database, ProcedureCall};
use tebaldi_storage::TxnTypeId;

/// The TPC-C workload generator.
pub struct Tpcc {
    /// Scale parameters.
    pub params: TpccParams,
    /// Key constructors.
    pub keys: TpccKeys,
    history_seq: AtomicU32,
    /// Maximum retry attempts per transaction.
    pub max_attempts: usize,
    /// Optional custom transaction mix: `(type, weight)` pairs replacing the
    /// standard mix (used by the grouping study of Table 3.1 and the
    /// profiling case study of §5.3.1).
    pub custom_mix: Option<Vec<(TxnTypeId, f64)>>,
    /// Table 3.1's "deadlock" column: make new_order access the stock table
    /// before the district table, inverting the lock order against
    /// stock_level at a 2PL cross-group node.
    pub new_order_stock_first: bool,
    /// Table 3.1's "no conflict" column: new_order/payment use the lower
    /// half of the warehouses while the read-only transactions use the upper
    /// half, eliminating cross-group read-write conflicts.
    pub disjoint_warehouses: bool,
}

impl Tpcc {
    /// Creates the workload with the given parameters.
    pub fn new(params: TpccParams) -> Self {
        Tpcc {
            params,
            keys: TpccKeys {
                tables: TpccTables::default(),
            },
            history_seq: AtomicU32::new(1),
            max_attempts: 50,
            custom_mix: None,
            new_order_stock_first: false,
            disjoint_warehouses: false,
        }
    }

    /// Creates the workload with default parameters.
    pub fn standard() -> Self {
        Tpcc::new(TpccParams::default())
    }

    /// Replaces the standard transaction mix.
    pub fn with_mix(mut self, mix: Vec<(TxnTypeId, f64)>) -> Self {
        self.custom_mix = Some(mix);
        self
    }

    fn pick_warehouse(&self, ty: TxnTypeId, rng: &mut StdRng) -> u32 {
        if self.disjoint_warehouses && self.params.warehouses > 1 {
            let half = self.params.warehouses / 2;
            let read_only = ty == types::ORDER_STATUS || ty == types::STOCK_LEVEL;
            if read_only {
                half + rng.gen_range(0..(self.params.warehouses - half))
            } else {
                rng.gen_range(0..half)
            }
        } else {
            rng.gen_range(0..self.params.warehouses)
        }
    }

    fn pick_type(&self, rng: &mut StdRng) -> TxnTypeId {
        if let Some(mix) = &self.custom_mix {
            let total: f64 = mix.iter().map(|(_, w)| w).sum();
            let mut roll: f64 = rng.gen::<f64>() * total;
            for (ty, weight) in mix {
                if roll < *weight {
                    return *ty;
                }
                roll -= weight;
            }
            return mix.last().map(|(ty, _)| *ty).unwrap_or(types::PAYMENT);
        }
        let roll: f64 = rng.gen();
        if self.params.with_hot_item {
            // 41.8 / 41.8 / 4.1 / 4.1 / 4.1 / 4.1 (§4.6.3)
            match roll {
                r if r < 0.418 => types::NEW_ORDER,
                r if r < 0.836 => types::PAYMENT,
                r if r < 0.877 => types::DELIVERY,
                r if r < 0.918 => types::ORDER_STATUS,
                r if r < 0.959 => types::STOCK_LEVEL,
                _ => types::HOT_ITEM,
            }
        } else {
            match roll {
                r if r < 0.45 => types::NEW_ORDER,
                r if r < 0.88 => types::PAYMENT,
                r if r < 0.92 => types::DELIVERY,
                r if r < 0.96 => types::ORDER_STATUS,
                _ => types::STOCK_LEVEL,
            }
        }
    }

    fn execute_type(&self, db: &Database, ty: TxnTypeId, rng: &mut StdRng) -> WorkUnit {
        let w = self.pick_warehouse(ty, rng);
        let d = rng.gen_range(0..self.params.districts_per_warehouse);
        let c = rng.gen_range(0..self.params.customers_per_district);
        let keys = &self.keys;
        let call = ProcedureCall::new(ty);
        let result = match ty {
            t if t == types::PAYMENT => {
                let input = transactions::PaymentInput {
                    w,
                    d,
                    c,
                    amount: rng.gen_range(100..5_000),
                    history_seq: self.history_seq.fetch_add(1, Ordering::Relaxed),
                };
                db.execute_with_retry(&call, self.max_attempts, |txn| {
                    transactions::payment(txn, keys, &input)
                })
                .map(|(_, aborts)| aborts)
            }
            t if t == types::NEW_ORDER => {
                let line_count = rng.gen_range(5..=15);
                let lines: Vec<(u32, u32, i64)> = (0..line_count)
                    .map(|_| {
                        let item = rng.gen_range(0..self.params.items);
                        // 1% remote warehouse accesses as in TPC-C.
                        let supply_w = if self.params.warehouses > 1 && rng.gen_bool(0.01) {
                            (w + 1) % self.params.warehouses
                        } else {
                            w
                        };
                        (item, supply_w, rng.gen_range(1..10))
                    })
                    .collect();
                let input = transactions::NewOrderInput { w, d, c, lines };
                let stock_first = self.new_order_stock_first;
                db.execute_with_retry(&call, self.max_attempts, |txn| {
                    if stock_first {
                        transactions::new_order_stock_first(txn, keys, &input)
                    } else {
                        transactions::new_order(txn, keys, &input)
                    }
                })
                .map(|(_, aborts)| aborts)
            }
            t if t == types::DELIVERY => {
                let input = transactions::DeliveryInput {
                    w,
                    carrier: rng.gen_range(1..10),
                    districts: self.params.districts_per_warehouse,
                };
                db.execute_with_retry(&call, self.max_attempts, |txn| {
                    transactions::delivery(txn, keys, &input)
                })
                .map(|(_, aborts)| aborts)
            }
            t if t == types::ORDER_STATUS => {
                let input = transactions::OrderStatusInput { w, d, c };
                db.execute_with_retry(&call, self.max_attempts, |txn| {
                    transactions::order_status(txn, keys, &input)
                })
                .map(|(_, aborts)| aborts)
            }
            t if t == types::HOT_ITEM => {
                let input = transactions::HotItemInput {
                    w,
                    d,
                    recent_orders: 10,
                };
                db.execute_with_retry(&call, self.max_attempts, |txn| {
                    transactions::hot_item(txn, keys, &input)
                })
                .map(|(_, aborts)| aborts)
            }
            _ => {
                let input = transactions::StockLevelInput {
                    w,
                    d,
                    threshold: 50,
                    recent_orders: 20,
                };
                db.execute_with_retry(&call, self.max_attempts, |txn| {
                    transactions::stock_level(txn, keys, &input)
                })
                .map(|(_, aborts)| aborts)
            }
        };
        match result {
            Ok(aborts) => WorkUnit::committed(ty, aborts),
            Err(_) => WorkUnit::failed(ty, self.max_attempts),
        }
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &str {
        "tpcc"
    }

    fn procedures(&self) -> ProcedureSet {
        schema::procedures(&self.keys.tables, self.params.with_hot_item)
    }

    fn load(&self, db: &Database) {
        transactions::load(db, &self.keys, &self.params);
    }

    fn run_once(&self, db: &Database, rng: &mut StdRng) -> WorkUnit {
        let ty = self.pick_type(rng);
        self.execute_type(db, ty, rng)
    }
}

/// The CC-tree configurations evaluated on TPC-C.
pub mod configs {
    use super::*;

    /// Monolithic two-phase locking.
    pub fn monolithic_2pl() -> CcTreeSpec {
        CcTreeSpec::monolithic(CcKind::TwoPl, schema::standard_types())
    }

    /// Monolithic serializable snapshot isolation.
    pub fn monolithic_ssi() -> CcTreeSpec {
        CcTreeSpec::monolithic(CcKind::Ssi, schema::standard_types())
    }

    /// Callas-1 (Fig. 4.6a): 2PL cross-group over RP{PAY,NO}, RP{DEL} and
    /// the read-only group.
    pub fn callas_1() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::TwoPl,
            "callas-1",
            vec![
                CcNodeSpec::leaf(CcKind::Rp, "pay+no", vec![types::PAYMENT, types::NEW_ORDER]),
                CcNodeSpec::leaf(CcKind::Rp, "del", vec![types::DELIVERY]),
                CcNodeSpec::leaf(
                    CcKind::NoCc,
                    "read-only",
                    vec![types::ORDER_STATUS, types::STOCK_LEVEL],
                ),
            ],
        ))
    }

    /// Callas-2 (Fig. 4.6b): stock_level moved into the RP group with
    /// payment and new_order.
    pub fn callas_2() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::TwoPl,
            "callas-2",
            vec![
                CcNodeSpec::leaf(
                    CcKind::Rp,
                    "pay+no+sl",
                    vec![types::PAYMENT, types::NEW_ORDER, types::STOCK_LEVEL],
                ),
                CcNodeSpec::leaf(CcKind::Rp, "del", vec![types::DELIVERY]),
                CcNodeSpec::leaf(CcKind::NoCc, "read-only", vec![types::ORDER_STATUS]),
            ],
        ))
    }

    /// Tebaldi two-layer (Fig. 4.6c): SSI cross-group over the read-only
    /// group and one RP update group.
    pub fn tebaldi_two_layer() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "tebaldi-2layer",
            vec![
                CcNodeSpec::leaf(
                    CcKind::NoCc,
                    "read-only",
                    vec![types::ORDER_STATUS, types::STOCK_LEVEL],
                ),
                CcNodeSpec::leaf(
                    CcKind::Rp,
                    "updates",
                    vec![types::PAYMENT, types::NEW_ORDER, types::DELIVERY],
                ),
            ],
        ))
    }

    /// Tebaldi three-layer (Fig. 4.6d): SSI at the root, 2PL between the
    /// update groups, RP inside each.
    pub fn tebaldi_three_layer() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "tebaldi-3layer",
            vec![
                CcNodeSpec::leaf(
                    CcKind::NoCc,
                    "read-only",
                    vec![types::ORDER_STATUS, types::STOCK_LEVEL],
                ),
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "updates",
                    vec![
                        CcNodeSpec::leaf(
                            CcKind::Rp,
                            "pay+no",
                            vec![types::PAYMENT, types::NEW_ORDER],
                        ),
                        CcNodeSpec::leaf(CcKind::Rp, "del", vec![types::DELIVERY]),
                    ],
                ),
            ],
        ))
    }

    /// §4.6.3: hot_item placed inside the payment/new_order RP group (the
    /// three-layer option).
    pub fn hot_item_three_layer() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "hot-item-3layer",
            vec![
                CcNodeSpec::leaf(
                    CcKind::NoCc,
                    "read-only",
                    vec![types::ORDER_STATUS, types::STOCK_LEVEL],
                ),
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "updates",
                    vec![
                        CcNodeSpec::leaf(
                            CcKind::Rp,
                            "pay+no+hi",
                            vec![types::PAYMENT, types::NEW_ORDER, types::HOT_ITEM],
                        ),
                        CcNodeSpec::leaf(CcKind::Rp, "del", vec![types::DELIVERY]),
                    ],
                ),
            ],
        ))
    }

    /// §4.6.3: hot_item in its own group with RP as the cross-group
    /// mechanism towards payment/new_order (the four-layer option).
    pub fn hot_item_four_layer() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "hot-item-4layer",
            vec![
                CcNodeSpec::leaf(
                    CcKind::NoCc,
                    "read-only",
                    vec![types::ORDER_STATUS, types::STOCK_LEVEL],
                ),
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "updates",
                    vec![
                        CcNodeSpec::inner(
                            CcKind::Rp,
                            "pay+no|hi",
                            vec![
                                CcNodeSpec::leaf(
                                    CcKind::Rp,
                                    "pay+no",
                                    vec![types::PAYMENT, types::NEW_ORDER],
                                ),
                                CcNodeSpec::leaf(CcKind::TwoPl, "hi", vec![types::HOT_ITEM]),
                            ],
                        ),
                        CcNodeSpec::leaf(CcKind::Rp, "del", vec![types::DELIVERY]),
                    ],
                ),
            ],
        ))
    }

    /// The initial configuration of the automatic configurator (Fig. 5.2):
    /// SSI separating read-only transactions from a single 2PL update group.
    pub fn autoconf_initial() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "initial",
            vec![
                CcNodeSpec::leaf(
                    CcKind::NoCc,
                    "read-only",
                    vec![types::ORDER_STATUS, types::STOCK_LEVEL],
                ),
                CcNodeSpec::leaf(
                    CcKind::TwoPl,
                    "updates",
                    vec![types::PAYMENT, types::NEW_ORDER, types::DELIVERY],
                ),
            ],
        ))
    }

    /// The manual configuration referenced by the Chapter 5 experiments
    /// (Fig. 5.12) — the same shape as the Tebaldi three-layer tree.
    pub fn manual_chapter5() -> CcTreeSpec {
        tebaldi_three_layer()
    }

    /// Every named configuration of Fig. 4.7, in presentation order.
    pub fn figure_4_7() -> Vec<(&'static str, CcTreeSpec)> {
        vec![
            ("2PL", monolithic_2pl()),
            ("SSI", monolithic_ssi()),
            ("Callas-1", callas_1()),
            ("Callas-2", callas_2()),
            ("Tebaldi 2-layer", tebaldi_two_layer()),
            ("Tebaldi 3-layer", tebaldi_three_layer()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{bench_config, BenchOptions};
    use std::sync::Arc;
    use tebaldi_core::DbConfig;

    #[test]
    fn configs_are_valid() {
        for (name, spec) in configs::figure_4_7() {
            assert!(spec.validate().is_ok(), "config {name} invalid");
        }
        assert!(configs::hot_item_three_layer().validate().is_ok());
        assert!(configs::hot_item_four_layer().validate().is_ok());
        assert!(configs::autoconf_initial().validate().is_ok());
    }

    /// Runs a quick smoke bench, retrying a couple of times: the 400 ms
    /// measurement window can record zero commits when the whole workspace
    /// test suite saturates the machine and the closed-loop clients get
    /// descheduled mid-run.
    fn smoke_bench(spec: CcTreeSpec, clients: usize, label: &str) -> u64 {
        let workload: Arc<dyn Workload> = Arc::new(Tpcc::new(TpccParams::tiny()));
        let mut committed = 0;
        for _ in 0..3 {
            committed = bench_config(
                &workload,
                spec.clone(),
                DbConfig::for_tests(),
                &BenchOptions::quick(clients).labeled(label),
            )
            .committed;
            if committed > 0 {
                break;
            }
        }
        committed
    }

    #[test]
    fn tpcc_runs_under_three_layer_config() {
        assert!(smoke_bench(configs::tebaldi_three_layer(), 4, "3layer") > 0);
    }

    #[test]
    fn tpcc_runs_under_monolithic_2pl() {
        assert!(smoke_bench(configs::monolithic_2pl(), 2, "2PL") > 0);
    }
}
