//! TPC-C partitioned by warehouse across a [`Cluster`].
//!
//! Each shard owns the warehouses the router maps to it (plus a replica of
//! the read-mostly item catalog). Transactions route by their home
//! warehouse:
//!
//! * `delivery`, `stock_level`, `hot_item` — always single-shard (they
//!   touch one warehouse),
//! * `new_order` — single-shard unless an order line's supplying warehouse
//!   lives on another shard (TPC-C's ~1% remote lines, configurable),
//! * `payment` — single-shard unless the paying customer belongs to a
//!   remote warehouse (TPC-C's 15% remote customers, configurable),
//! * `order_status` — single-shard unless the status check targets a
//!   remote warehouse's customer; the cross-shard variant is *fully
//!   read-only*, so every participant votes `ReadOnly` and the 2PC commits
//!   with zero prepare and zero decision records.
//!
//! Every invocation crosses the shard boundary as data: the transaction
//! bodies are registered once per cluster (see [`register_procedures`])
//! under the ids in [`procs`], and each call ships a
//! [`ProcId`](tebaldi_core::ProcId) plus an encoded argument buffer — so
//! the same workload runs unchanged over the in-process transport and over
//! TCP. Multi-shard invocations decompose into a home part plus per-shard
//! remote parts and run under the coordinator's two-phase commit.

use super::schema::types;
use super::{transactions, Tpcc};
use crate::workload::{ClusterWorkload, WorkUnit};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use tebaldi_cc::{CcError, CcResult, ProcedureSet};
use tebaldi_cluster::{Cluster, ReadConsistency, ReadPart, ShardPart};
use tebaldi_core::{ProcRegistry, ProcedureCall};
use tebaldi_storage::codec::{ByteReader, ByteWriter, CodecError};
use tebaldi_storage::{TxnTypeId, Value};

/// One new_order line: (item, supplying warehouse, quantity).
type OrderLine = (u32, u32, i64);

/// The cluster-TPC-C shard-procedure ids (the workload owns the 100..120
/// range).
pub mod procs {
    use tebaldi_core::ProcId;

    /// Full single-shard new_order.
    pub const NEW_ORDER: ProcId = ProcId(100);
    /// Home part of a cross-shard new_order: everything except the stock
    /// updates of remote supplying warehouses.
    pub const NEW_ORDER_HOME: ProcId = ProcId(101);
    /// Remote part of a cross-shard new_order: the stock updates owned by
    /// one remote shard.
    pub const NEW_ORDER_REMOTE_STOCK: ProcId = ProcId(102);
    /// Full single-shard payment.
    pub const PAYMENT: ProcId = ProcId(103);
    /// Home part of a cross-shard payment (warehouse/district totals +
    /// history row).
    pub const PAYMENT_HOME: ProcId = ProcId(104);
    /// Customer part of a cross-shard payment (balance update on the
    /// customer's shard).
    pub const PAYMENT_CUSTOMER: ProcId = ProcId(105);
    /// Full order_status (read-only).
    pub const ORDER_STATUS: ProcId = ProcId(106);
    /// Home-desk part of a cross-shard order_status: reads the local
    /// warehouse/district reference rows (read-only vote).
    pub const ORDER_STATUS_DESK: ProcId = ProcId(107);
    /// Single-shard delivery.
    pub const DELIVERY: ProcId = ProcId(108);
    /// Single-shard stock_level (read-only).
    pub const STOCK_LEVEL: ProcId = ProcId(109);
    /// Single-shard hot_item.
    pub const HOT_ITEM: ProcId = ProcId(110);
}

fn bad_args(err: CodecError) -> CcError {
    CcError::Internal(format!("malformed tpcc args: {err}"))
}

fn put_lines(w: &mut ByteWriter, lines: &[OrderLine]) {
    w.put_u32(lines.len() as u32);
    for &(item, supply_w, qty) in lines {
        w.put_u32(item);
        w.put_u32(supply_w);
        w.put_i64(qty);
    }
}

fn get_lines(r: &mut ByteReader<'_>) -> Result<Vec<OrderLine>, CodecError> {
    let n = r.len_prefix()?;
    let mut lines = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        lines.push((r.u32()?, r.u32()?, r.i64()?));
    }
    Ok(lines)
}

fn new_order_args(input: &transactions::NewOrderInput) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(input.w);
    w.put_u32(input.d);
    w.put_u32(input.c);
    put_lines(&mut w, &input.lines);
    w.into_bytes()
}

fn get_new_order_input(r: &mut ByteReader<'_>) -> Result<transactions::NewOrderInput, CodecError> {
    Ok(transactions::NewOrderInput {
        w: r.u32()?,
        d: r.u32()?,
        c: r.u32()?,
        lines: get_lines(r)?,
    })
}

/// Home-part args: the full input plus the set of supplying warehouses
/// whose stock rows live on the home shard. The set is computed router-side
/// by the caller, so the shard body needs no routing knowledge at all.
fn new_order_home_args(input: &transactions::NewOrderInput, local_ws: &[u32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(input.w);
    w.put_u32(input.d);
    w.put_u32(input.c);
    put_lines(&mut w, &input.lines);
    w.put_u32(local_ws.len() as u32);
    for &lw in local_ws {
        w.put_u32(lw);
    }
    w.into_bytes()
}

fn remote_stock_args(lines: &[OrderLine]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_lines(&mut w, lines);
    w.into_bytes()
}

fn payment_args(input: &transactions::PaymentInput, c_w: u32, c_d: u32) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(input.w);
    w.put_u32(input.d);
    w.put_u32(input.c);
    w.put_i64(input.amount);
    w.put_u32(input.history_seq);
    w.put_u32(c_w);
    w.put_u32(c_d);
    w.into_bytes()
}

fn get_payment_input(
    r: &mut ByteReader<'_>,
) -> Result<(transactions::PaymentInput, u32, u32), CodecError> {
    let input = transactions::PaymentInput {
        w: r.u32()?,
        d: r.u32()?,
        c: r.u32()?,
        amount: r.i64()?,
        history_seq: r.u32()?,
    };
    let c_w = r.u32()?;
    let c_d = r.u32()?;
    Ok((input, c_w, c_d))
}

/// Registers the cluster-TPC-C transaction bodies under the ids in
/// [`procs`]. `keys` is the workload's key-builder set; the bodies capture
/// it by value.
pub fn register_procedures(registry: &mut ProcRegistry, keys: super::schema::TpccKeys) {
    registry.register_fn(procs::NEW_ORDER, move |txn, args| {
        let mut r = ByteReader::new(args);
        let input = get_new_order_input(&mut r).map_err(bad_args)?;
        transactions::new_order(txn, &keys, &input).map(|o_id| Value::Int(o_id as i64))
    });
    registry.register_fn(procs::NEW_ORDER_HOME, move |txn, args| {
        let mut r = ByteReader::new(args);
        let input = get_new_order_input(&mut r).map_err(bad_args)?;
        let n = r.len_prefix().map_err(bad_args)?;
        let mut local_ws = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            local_ws.push(r.u32().map_err(bad_args)?);
        }
        transactions::new_order_filtered(txn, &keys, &input, |supply_w| {
            local_ws.contains(&supply_w)
        })
        .map(|o_id| Value::Int(o_id as i64))
    });
    registry.register_fn(procs::NEW_ORDER_REMOTE_STOCK, move |txn, args| {
        let mut r = ByteReader::new(args);
        let lines = get_lines(&mut r).map_err(bad_args)?;
        transactions::new_order_remote_stock(txn, &keys, &lines).map(|()| Value::Null)
    });
    registry.register_fn(procs::PAYMENT, move |txn, args| {
        let mut r = ByteReader::new(args);
        let (input, c_w, c_d) = get_payment_input(&mut r).map_err(bad_args)?;
        transactions::payment_local(txn, &keys, &input, c_w, c_d).map(|()| Value::Null)
    });
    registry.register_fn(procs::PAYMENT_HOME, move |txn, args| {
        let mut r = ByteReader::new(args);
        let (input, _, _) = get_payment_input(&mut r).map_err(bad_args)?;
        transactions::payment_home(txn, &keys, &input).map(|()| Value::Null)
    });
    registry.register_fn(procs::PAYMENT_CUSTOMER, move |txn, args| {
        let mut r = ByteReader::new(args);
        let (input, c_w, c_d) = get_payment_input(&mut r).map_err(bad_args)?;
        transactions::payment_customer(txn, &keys, c_w, c_d, input.c, input.amount)
            .map(|()| Value::Null)
    });
    registry.register_fn(procs::ORDER_STATUS, move |txn, args| {
        let mut r = ByteReader::new(args);
        let input = transactions::OrderStatusInput {
            w: r.u32().map_err(bad_args)?,
            d: r.u32().map_err(bad_args)?,
            c: r.u32().map_err(bad_args)?,
        };
        transactions::order_status(txn, &keys, &input).map(Value::Int)
    });
    registry.register_fn(procs::ORDER_STATUS_DESK, move |txn, args| {
        let mut r = ByteReader::new(args);
        let w = r.u32().map_err(bad_args)?;
        let d = r.u32().map_err(bad_args)?;
        let _ = txn.get(keys.warehouse(w))?;
        let _ = txn.get(keys.district(w, d))?;
        Ok(Value::Null)
    });
    registry.register_fn(procs::DELIVERY, move |txn, args| {
        let mut r = ByteReader::new(args);
        let input = transactions::DeliveryInput {
            w: r.u32().map_err(bad_args)?,
            carrier: r.i64().map_err(bad_args)?,
            districts: r.u32().map_err(bad_args)?,
        };
        transactions::delivery(txn, &keys, &input).map(|n| Value::Int(n as i64))
    });
    registry.register_fn(procs::STOCK_LEVEL, move |txn, args| {
        let mut r = ByteReader::new(args);
        let input = transactions::StockLevelInput {
            w: r.u32().map_err(bad_args)?,
            d: r.u32().map_err(bad_args)?,
            threshold: r.i64().map_err(bad_args)?,
            recent_orders: r.u32().map_err(bad_args)?,
        };
        transactions::stock_level(txn, &keys, &input).map(|n| Value::Int(n as i64))
    });
    registry.register_fn(procs::HOT_ITEM, move |txn, args| {
        let mut r = ByteReader::new(args);
        let input = transactions::HotItemInput {
            w: r.u32().map_err(bad_args)?,
            d: r.u32().map_err(bad_args)?,
            recent_orders: r.u32().map_err(bad_args)?,
        };
        transactions::hot_item(txn, &keys, &input).map(|n| Value::Int(n as i64))
    });
}

/// TPC-C over a warehouse-sharded cluster.
pub struct ClusterTpcc {
    /// The underlying single-node workload (parameters, key builders, mix).
    pub inner: Tpcc,
    /// Probability that a new_order line is supplied by a remote warehouse
    /// (TPC-C: 0.01).
    pub remote_line_pct: f64,
    /// Probability that a payment is made by a customer of a remote
    /// warehouse (TPC-C: 0.15).
    pub remote_payment_pct: f64,
}

impl ClusterTpcc {
    /// Wraps a TPC-C instance with the standard remote-access rates.
    pub fn new(inner: Tpcc) -> Self {
        ClusterTpcc {
            inner,
            remote_line_pct: 0.01,
            remote_payment_pct: 0.15,
        }
    }

    /// Overrides the remote-access rates (the cluster bench sweeps these to
    /// control the single-shard fraction).
    pub fn with_remote_rates(mut self, line_pct: f64, payment_pct: f64) -> Self {
        self.remote_line_pct = line_pct;
        self.remote_payment_pct = payment_pct;
        self
    }

    /// Picks a warehouse different from `home` (requires ≥ 2 warehouses).
    fn pick_other_warehouse(&self, home: u32, rng: &mut StdRng) -> u32 {
        let n = self.inner.params.warehouses;
        let other = rng.gen_range(0..n - 1);
        if other >= home {
            other + 1
        } else {
            other
        }
    }

    fn run_new_order(&self, cluster: &Cluster, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let c = rng.gen_range(0..params.customers_per_district);
        let line_count = rng.gen_range(5..=15);
        let lines: Vec<OrderLine> = (0..line_count)
            .map(|_| {
                let item = rng.gen_range(0..params.items);
                let supply_w = if params.warehouses > 1 && rng.gen_bool(self.remote_line_pct) {
                    self.pick_other_warehouse(w, rng)
                } else {
                    w
                };
                (item, supply_w, rng.gen_range(1..10))
            })
            .collect();

        let home = cluster.shard_of(w as u64);
        // Group the remote-shard stock updates.
        let mut remote: HashMap<usize, Vec<OrderLine>> = HashMap::new();
        for line in &lines {
            let shard = cluster.shard_of(line.1 as u64);
            if shard != home {
                remote.entry(shard).or_default().push(*line);
            }
        }

        let call = ProcedureCall::new(types::NEW_ORDER);
        let input = transactions::NewOrderInput { w, d, c, lines };
        if remote.is_empty() {
            let result = cluster.execute_single(
                home,
                procs::NEW_ORDER,
                &call,
                new_order_args(&input),
                self.inner.max_attempts,
            );
            return unit(
                types::NEW_ORDER,
                result.map(|(_, a)| a),
                self.inner.max_attempts,
            );
        }

        // Supplying warehouses whose stock stays on the home shard — the
        // router decides here, once, and the shard bodies stay
        // routing-agnostic.
        let mut local_ws: Vec<u32> = input
            .lines
            .iter()
            .map(|line| line.1)
            .filter(|&sw| cluster.shard_of(sw as u64) == home)
            .collect();
        local_ws.sort_unstable();
        local_ws.dedup();

        let result = cluster.execute_multi_with_retry(self.inner.max_attempts, || {
            let mut parts = Vec::with_capacity(1 + remote.len());
            parts.push(ShardPart::new(
                home,
                call.clone(),
                procs::NEW_ORDER_HOME,
                new_order_home_args(&input, &local_ws),
            ));
            for (&shard, shard_lines) in remote.iter() {
                parts.push(ShardPart::new(
                    shard,
                    call.clone(),
                    procs::NEW_ORDER_REMOTE_STOCK,
                    remote_stock_args(shard_lines),
                ));
            }
            parts
        });
        unit(
            types::NEW_ORDER,
            result.map(|(_, aborts)| aborts),
            self.inner.max_attempts,
        )
    }

    fn run_payment(&self, cluster: &Cluster, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let c = rng.gen_range(0..params.customers_per_district);
        let input = transactions::PaymentInput {
            w,
            d,
            c,
            amount: rng.gen_range(100..5_000),
            history_seq: self.inner.history_seq.fetch_add(1, Ordering::Relaxed),
        };
        // Remote customer: the payer belongs to another warehouse.
        let (c_w, c_d) = if params.warehouses > 1 && rng.gen_bool(self.remote_payment_pct) {
            (
                self.pick_other_warehouse(w, rng),
                rng.gen_range(0..params.districts_per_warehouse),
            )
        } else {
            (w, d)
        };

        let call = ProcedureCall::new(types::PAYMENT);
        let home = cluster.shard_of(w as u64);
        let customer_shard = cluster.shard_of(c_w as u64);
        if home == customer_shard {
            let result = cluster.execute_single(
                home,
                procs::PAYMENT,
                &call,
                payment_args(&input, c_w, c_d),
                self.inner.max_attempts,
            );
            return unit(
                types::PAYMENT,
                result.map(|(_, a)| a),
                self.inner.max_attempts,
            );
        }

        let result = cluster.execute_multi_with_retry(self.inner.max_attempts, || {
            vec![
                ShardPart::new(
                    home,
                    call.clone(),
                    procs::PAYMENT_HOME,
                    payment_args(&input, c_w, c_d),
                ),
                ShardPart::new(
                    customer_shard,
                    call.clone(),
                    procs::PAYMENT_CUSTOMER,
                    payment_args(&input, c_w, c_d),
                ),
            ]
        });
        unit(
            types::PAYMENT,
            result.map(|(_, aborts)| aborts),
            self.inner.max_attempts,
        )
    }

    /// order_status, routed. With probability `remote_payment_pct` the
    /// status check is for a customer of a *remote* warehouse (the same
    /// remote-customer model payment uses): the home desk reads its
    /// warehouse/district reference rows while the customer's shard runs
    /// the actual status query. Every part is read-only, so under the
    /// read-only participant optimization the whole cross-shard
    /// transaction commits with zero prepare records and zero decision
    /// records.
    fn run_order_status(&self, cluster: &Cluster, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let c = rng.gen_range(0..params.customers_per_district);
        let (c_w, c_d) = if params.warehouses > 1 && rng.gen_bool(self.remote_payment_pct) {
            (
                self.pick_other_warehouse(w, rng),
                rng.gen_range(0..params.districts_per_warehouse),
            )
        } else {
            (w, d)
        };
        let call = ProcedureCall::new(types::ORDER_STATUS);
        let home = cluster.shard_of(w as u64);
        let customer_shard = cluster.shard_of(c_w as u64);
        // Under a snapshot (or bounded-staleness) default consistency the
        // pure read skips the procedure machinery entirely: a pinned
        // snapshot traversal with zero 2PC, zero locks, and zero WAL
        // records. BoundedStaleness routes here too — the multi-hop
        // traversal needs one pinned cut, which per-replica bounded reads
        // cannot provide.
        if !matches!(cluster.default_read_consistency(), ReadConsistency::Strong) {
            let desk = (home != customer_shard).then_some((w, d));
            let result = self.snapshot_order_status(cluster, desk, c_w, c_d, c);
            return unit(
                types::ORDER_STATUS,
                result.map(|_| 0),
                self.inner.max_attempts,
            );
        }
        let status_args = || {
            let mut buf = ByteWriter::new();
            buf.put_u32(c_w);
            buf.put_u32(c_d);
            buf.put_u32(c);
            buf.into_bytes()
        };
        if home == customer_shard {
            let result = cluster.execute_single(
                home,
                procs::ORDER_STATUS,
                &call,
                status_args(),
                self.inner.max_attempts,
            );
            return unit(
                types::ORDER_STATUS,
                result.map(|(_, a)| a),
                self.inner.max_attempts,
            );
        }
        let result = cluster.execute_multi_with_retry(self.inner.max_attempts, || {
            let desk_args = {
                let mut buf = ByteWriter::new();
                buf.put_u32(w);
                buf.put_u32(d);
                buf.into_bytes()
            };
            vec![
                ShardPart::new(home, call.clone(), procs::ORDER_STATUS_DESK, desk_args),
                ShardPart::new(
                    customer_shard,
                    call.clone(),
                    procs::ORDER_STATUS,
                    status_args(),
                ),
            ]
        });
        unit(
            types::ORDER_STATUS,
            result.map(|(_, aborts)| aborts),
            self.inner.max_attempts,
        )
    }

    /// order_status served by the zero-2PC snapshot-read path: a pinned
    /// [`tebaldi_cluster::SnapshotHandle`] keeps the multi-hop traversal
    /// (customer → latest order → its lines) on one atomic cut without
    /// prepare records, locks, or a decision-log entry. The cross-shard
    /// variant reads the home desk's reference rows in the same cut,
    /// mirroring the 2PC decomposition's access pattern.
    fn snapshot_order_status(
        &self,
        cluster: &Cluster,
        home_desk: Option<(u32, u32)>,
        c_w: u32,
        c_d: u32,
        c: u32,
    ) -> CcResult<i64> {
        let keys = &self.inner.keys;
        let shard = cluster.shard_of(c_w as u64);
        let snap = cluster.snapshot();
        let mut parts = vec![ReadPart::new(
            shard,
            vec![
                keys.customer(c_w, c_d, c),
                keys.customer_order_index(c_w, c_d, c),
            ],
        )];
        if let Some((w, d)) = home_desk {
            parts.push(ReadPart::new(
                cluster.shard_of(w as u64),
                vec![keys.warehouse(w), keys.district(w, d)],
            ));
        }
        let first = snap.read(parts)?;
        let balance = first[0].as_ref().and_then(|v| v.field(0)).unwrap_or(0);
        if let Some(o_id) = first[1].as_ref().and_then(|v| v.as_int()) {
            let order = snap.read(vec![ReadPart::new(
                shard,
                vec![keys.order(c_w, c_d, o_id as u32)],
            )])?;
            let ol_cnt = order[0].as_ref().and_then(|v| v.field(0)).unwrap_or(0);
            if ol_cnt > 0 {
                let line_keys = (0..ol_cnt as u32)
                    .map(|line| keys.order_line(c_w, c_d, o_id as u32, line))
                    .collect();
                let _ = snap.read(vec![ReadPart::new(shard, line_keys)])?;
            }
        }
        Ok(balance)
    }

    /// stock_level on the snapshot path: the district cursor, the recent
    /// orders, their lines, and the referenced stock rows all read from
    /// one pinned cut — four batched hops instead of one locked
    /// procedure execution.
    fn snapshot_stock_level(
        &self,
        cluster: &Cluster,
        w: u32,
        d: u32,
        threshold: i64,
        recent_orders: u32,
    ) -> CcResult<u64> {
        use super::transactions::district_fields;
        let keys = &self.inner.keys;
        let shard = cluster.shard_of(w as u64);
        let snap = cluster.snapshot();
        let district = snap.read(vec![ReadPart::new(shard, vec![keys.district(w, d)])])?;
        let next_o_id = district[0]
            .as_ref()
            .and_then(|v| v.field(district_fields::NEXT_O_ID))
            .unwrap_or(1);
        let low = (next_o_id - recent_orders as i64).max(1);
        let order_ids: Vec<u32> = (low..next_o_id).map(|o| o as u32).collect();
        if order_ids.is_empty() {
            return Ok(0);
        }
        let orders = snap.read(vec![ReadPart::new(
            shard,
            order_ids.iter().map(|&o| keys.order(w, d, o)).collect(),
        )])?;
        let mut line_keys = Vec::new();
        for (&o_id, order) in order_ids.iter().zip(orders.iter()) {
            let ol_cnt = order.as_ref().and_then(|v| v.field(0)).unwrap_or(0);
            for line in 0..ol_cnt.max(0) as u32 {
                line_keys.push(keys.order_line(w, d, o_id, line));
            }
        }
        if line_keys.is_empty() {
            return Ok(0);
        }
        let lines = snap.read(vec![ReadPart::new(shard, line_keys)])?;
        let stock_keys = lines
            .iter()
            .map(|line| {
                let item = line.as_ref().and_then(|v| v.field(0)).unwrap_or(0);
                keys.stock(w, item as u32)
            })
            .collect();
        let stocks = snap.read(vec![ReadPart::new(shard, stock_keys)])?;
        Ok(stocks
            .iter()
            .filter(|stock| stock.as_ref().and_then(|v| v.field(0)).unwrap_or(0) < threshold)
            .count() as u64)
    }

    fn run_local(&self, cluster: &Cluster, ty: TxnTypeId, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let shard = cluster.shard_of(w as u64);
        let call = ProcedureCall::new(ty);
        let result: CcResult<(Value, usize)> = match ty {
            t if t == types::DELIVERY => {
                let mut buf = ByteWriter::new();
                buf.put_u32(w);
                buf.put_i64(rng.gen_range(1..10));
                buf.put_u32(params.districts_per_warehouse);
                cluster.execute_single(
                    shard,
                    procs::DELIVERY,
                    &call,
                    buf.into_bytes(),
                    self.inner.max_attempts,
                )
            }
            t if t == types::HOT_ITEM => {
                let mut buf = ByteWriter::new();
                buf.put_u32(w);
                buf.put_u32(d);
                buf.put_u32(10);
                cluster.execute_single(
                    shard,
                    procs::HOT_ITEM,
                    &call,
                    buf.into_bytes(),
                    self.inner.max_attempts,
                )
            }
            _ => {
                // stock_level is a pure read: under a non-Strong default
                // consistency it rides the zero-2PC snapshot path.
                if !matches!(cluster.default_read_consistency(), ReadConsistency::Strong) {
                    let result = self.snapshot_stock_level(cluster, w, d, 50, 20);
                    return unit(
                        types::STOCK_LEVEL,
                        result.map(|_| 0),
                        self.inner.max_attempts,
                    );
                }
                let mut buf = ByteWriter::new();
                buf.put_u32(w);
                buf.put_u32(d);
                buf.put_i64(50);
                buf.put_u32(20);
                cluster.execute_single(
                    shard,
                    procs::STOCK_LEVEL,
                    &call,
                    buf.into_bytes(),
                    self.inner.max_attempts,
                )
            }
        };
        unit(ty, result.map(|(_, a)| a), self.inner.max_attempts)
    }
}

fn unit(
    ty: TxnTypeId,
    result: Result<usize, tebaldi_cc::CcError>,
    max_attempts: usize,
) -> WorkUnit {
    match result {
        Ok(aborts) => WorkUnit::committed(ty, aborts),
        Err(_) => WorkUnit::failed(ty, max_attempts),
    }
}

/// The TPC-C procedure set with the cluster-variant access list:
/// `order_status` additionally *reads* the home desk's warehouse and
/// district rows (the cross-shard decomposition's home part) — the
/// single-node transaction never touches them, so the shared
/// `schema::procedures` list stays untouched, mirroring how SEATS keeps a
/// separate `cluster_procedures`.
pub fn cluster_procedures(tables: &super::schema::TpccTables, with_hot_item: bool) -> ProcedureSet {
    use tebaldi_cc::{AccessMode::Read, ProcedureInfo};
    let mut set = super::schema::procedures(tables, with_hot_item);
    set.insert(ProcedureInfo::new(
        types::ORDER_STATUS,
        "order_status",
        vec![
            (tables.warehouse, Read),
            (tables.district, Read),
            (tables.customer, Read),
            (tables.customer_order_index, Read),
            (tables.order, Read),
            (tables.order_line, Read),
        ],
    ));
    set
}

impl ClusterWorkload for ClusterTpcc {
    fn name(&self) -> &str {
        "tpcc-cluster"
    }

    fn procedures(&self) -> ProcedureSet {
        cluster_procedures(&self.inner.keys.tables, self.inner.params.with_hot_item)
    }

    fn register_procedures(&self, registry: &mut ProcRegistry) {
        register_procedures(registry, self.inner.keys);
    }

    fn load(&self, cluster: &Cluster) {
        for shard in 0..cluster.shard_count() {
            let db = cluster.shard(shard);
            transactions::load_partition(&db, &self.inner.keys, &self.inner.params, |w| {
                cluster.shard_of(w as u64) == shard
            });
        }
    }

    fn run_once(&self, cluster: &Cluster, rng: &mut StdRng) -> WorkUnit {
        let ty = self.inner.pick_type(rng);
        let w = self.inner.pick_warehouse(ty, rng);
        match ty {
            t if t == types::NEW_ORDER => self.run_new_order(cluster, w, rng),
            t if t == types::PAYMENT => self.run_payment(cluster, w, rng),
            t if t == types::ORDER_STATUS => self.run_order_status(cluster, w, rng),
            _ => self.run_local(cluster, ty, w, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{configs, schema::TpccParams};
    use super::*;
    use crate::driver::{bench_cluster_config, BenchOptions};
    use std::sync::Arc;
    use tebaldi_cluster::ClusterConfig;

    #[test]
    fn cluster_tpcc_commits_on_four_shards() {
        let workload: Arc<dyn ClusterWorkload> =
            Arc::new(ClusterTpcc::new(Tpcc::new(TpccParams::tiny())).with_remote_rates(0.05, 0.2));
        // Retry: the quick measurement window can miss every commit when
        // the workspace test suite saturates the machine.
        let mut committed = 0;
        for _ in 0..3 {
            committed = bench_cluster_config(
                &workload,
                configs::monolithic_2pl(),
                ClusterConfig::for_tests(2),
                &BenchOptions::quick(4).labeled("cluster-2PL"),
            )
            .committed;
            if committed > 0 {
                break;
            }
        }
        assert!(committed > 0, "cluster TPC-C must make progress");
    }

    #[test]
    fn shards_own_disjoint_warehouses() {
        let workload = ClusterTpcc::new(Tpcc::new(TpccParams::tiny()));
        let mut registry = ProcRegistry::new();
        ClusterWorkload::register_procedures(&workload, &mut registry);
        let cluster = tebaldi_cluster::Cluster::builder(ClusterConfig::for_tests(2))
            .procedures(ClusterWorkload::procedures(&workload))
            .shard_procedures(registry)
            .cc_spec(configs::monolithic_2pl())
            .build()
            .unwrap();
        ClusterWorkload::load(&workload, &cluster);
        // Warehouse 0 lives on shard 0, warehouse 1 on shard 1 (modulo).
        let keys = &workload.inner.keys;
        let (db0, db1) = (cluster.shard(0), cluster.shard(1));
        let (shard0, shard1) = (db0.store(), db1.store());
        use tebaldi_storage::ReadSpec::LatestCommitted;
        assert!(shard0.read(&keys.warehouse(0), LatestCommitted).is_some());
        assert!(shard0.read(&keys.warehouse(1), LatestCommitted).is_none());
        assert!(shard1.read(&keys.warehouse(1), LatestCommitted).is_some());
        assert!(shard1.read(&keys.warehouse(0), LatestCommitted).is_none());
        // The item catalog is replicated.
        assert!(shard0.read(&keys.item(0), LatestCommitted).is_some());
        assert!(shard1.read(&keys.item(0), LatestCommitted).is_some());
        cluster.shutdown();
    }
}
