//! TPC-C partitioned by warehouse across a [`Cluster`].
//!
//! Each shard owns the warehouses the router maps to it (plus a replica of
//! the read-mostly item catalog). Transactions route by their home
//! warehouse:
//!
//! * `delivery`, `stock_level`, `hot_item` — always single-shard (they
//!   touch one warehouse),
//! * `new_order` — single-shard unless an order line's supplying warehouse
//!   lives on another shard (TPC-C's ~1% remote lines, configurable),
//! * `payment` — single-shard unless the paying customer belongs to a
//!   remote warehouse (TPC-C's 15% remote customers, configurable),
//! * `order_status` — single-shard unless the status check targets a
//!   remote warehouse's customer; the cross-shard variant is *fully
//!   read-only*, so every participant votes `ReadOnly` and the 2PC commits
//!   with zero prepare and zero decision records.
//!
//! Multi-shard invocations decompose into a home part plus per-shard remote
//! parts and run under the coordinator's two-phase commit.

use super::schema::types;
use super::{transactions, Tpcc};
use crate::workload::{ClusterWorkload, WorkUnit};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tebaldi_cc::ProcedureSet;
use tebaldi_cluster::{Cluster, ShardPart};
use tebaldi_core::ProcedureCall;
use tebaldi_storage::{TxnTypeId, Value};

/// One new_order line: (item, supplying warehouse, quantity).
type OrderLine = (u32, u32, i64);

/// TPC-C over a warehouse-sharded cluster.
pub struct ClusterTpcc {
    /// The underlying single-node workload (parameters, key builders, mix).
    pub inner: Tpcc,
    /// Probability that a new_order line is supplied by a remote warehouse
    /// (TPC-C: 0.01).
    pub remote_line_pct: f64,
    /// Probability that a payment is made by a customer of a remote
    /// warehouse (TPC-C: 0.15).
    pub remote_payment_pct: f64,
}

impl ClusterTpcc {
    /// Wraps a TPC-C instance with the standard remote-access rates.
    pub fn new(inner: Tpcc) -> Self {
        ClusterTpcc {
            inner,
            remote_line_pct: 0.01,
            remote_payment_pct: 0.15,
        }
    }

    /// Overrides the remote-access rates (the cluster bench sweeps these to
    /// control the single-shard fraction).
    pub fn with_remote_rates(mut self, line_pct: f64, payment_pct: f64) -> Self {
        self.remote_line_pct = line_pct;
        self.remote_payment_pct = payment_pct;
        self
    }

    /// Picks a warehouse different from `home` (requires ≥ 2 warehouses).
    fn pick_other_warehouse(&self, home: u32, rng: &mut StdRng) -> u32 {
        let n = self.inner.params.warehouses;
        let other = rng.gen_range(0..n - 1);
        if other >= home {
            other + 1
        } else {
            other
        }
    }

    fn run_new_order(&self, cluster: &Cluster, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let c = rng.gen_range(0..params.customers_per_district);
        let line_count = rng.gen_range(5..=15);
        let lines: Vec<OrderLine> = (0..line_count)
            .map(|_| {
                let item = rng.gen_range(0..params.items);
                let supply_w = if params.warehouses > 1 && rng.gen_bool(self.remote_line_pct) {
                    self.pick_other_warehouse(w, rng)
                } else {
                    w
                };
                (item, supply_w, rng.gen_range(1..10))
            })
            .collect();

        let home = cluster.shard_of(w as u64);
        // Group the remote-shard stock updates.
        let mut remote: HashMap<usize, Vec<OrderLine>> = HashMap::new();
        for line in &lines {
            let shard = cluster.shard_of(line.1 as u64);
            if shard != home {
                remote.entry(shard).or_default().push(*line);
            }
        }

        let keys = self.inner.keys;
        let call = ProcedureCall::new(types::NEW_ORDER);
        if remote.is_empty() {
            let input = transactions::NewOrderInput { w, d, c, lines };
            let result = cluster.execute_single(home, &call, self.inner.max_attempts, |txn| {
                transactions::new_order(txn, &keys, &input)
            });
            return unit(
                types::NEW_ORDER,
                result.map(|(_, a)| a),
                self.inner.max_attempts,
            );
        }

        let remote = Arc::new(remote);
        let input = Arc::new(transactions::NewOrderInput { w, d, c, lines });
        let result = cluster.execute_multi_with_retry(self.inner.max_attempts, || {
            let mut parts = Vec::with_capacity(1 + remote.len());
            let home_keys = keys;
            let home_input = Arc::clone(&input);
            let home_cluster_router = cluster.router().clone();
            let home_shard = home;
            parts.push(ShardPart::new(
                home,
                call.clone(),
                Box::new(move |txn| {
                    transactions::new_order_filtered(txn, &home_keys, &home_input, |supply_w| {
                        home_cluster_router.shard_of(supply_w as u64) == home_shard
                    })
                    .map(|o_id| Value::Int(o_id as i64))
                }),
            ));
            for (&shard, shard_lines) in remote.iter() {
                let part_keys = keys;
                let part_lines = shard_lines.clone();
                parts.push(ShardPart::new(
                    shard,
                    call.clone(),
                    Box::new(move |txn| {
                        transactions::new_order_remote_stock(txn, &part_keys, &part_lines)
                            .map(|()| Value::Null)
                    }),
                ));
            }
            parts
        });
        unit(
            types::NEW_ORDER,
            result.map(|(_, aborts)| aborts),
            self.inner.max_attempts,
        )
    }

    fn run_payment(&self, cluster: &Cluster, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let c = rng.gen_range(0..params.customers_per_district);
        let input = transactions::PaymentInput {
            w,
            d,
            c,
            amount: rng.gen_range(100..5_000),
            history_seq: self.inner.history_seq.fetch_add(1, Ordering::Relaxed),
        };
        // Remote customer: the payer belongs to another warehouse.
        let (c_w, c_d) = if params.warehouses > 1 && rng.gen_bool(self.remote_payment_pct) {
            (
                self.pick_other_warehouse(w, rng),
                rng.gen_range(0..params.districts_per_warehouse),
            )
        } else {
            (w, d)
        };

        let keys = self.inner.keys;
        let call = ProcedureCall::new(types::PAYMENT);
        let home = cluster.shard_of(w as u64);
        let customer_shard = cluster.shard_of(c_w as u64);
        if home == customer_shard {
            let result = cluster.execute_single(home, &call, self.inner.max_attempts, |txn| {
                transactions::payment_local(txn, &keys, &input, c_w, c_d)
            });
            return unit(
                types::PAYMENT,
                result.map(|(_, a)| a),
                self.inner.max_attempts,
            );
        }

        let result = cluster.execute_multi_with_retry(self.inner.max_attempts, || {
            let home_keys = keys;
            let customer_keys = keys;
            vec![
                ShardPart::new(
                    home,
                    call.clone(),
                    Box::new(move |txn| {
                        transactions::payment_home(txn, &home_keys, &input).map(|()| Value::Null)
                    }),
                ),
                ShardPart::new(
                    customer_shard,
                    call.clone(),
                    Box::new(move |txn| {
                        transactions::payment_customer(
                            txn,
                            &customer_keys,
                            c_w,
                            c_d,
                            c,
                            input.amount,
                        )
                        .map(|()| Value::Null)
                    }),
                ),
            ]
        });
        unit(
            types::PAYMENT,
            result.map(|(_, aborts)| aborts),
            self.inner.max_attempts,
        )
    }

    /// order_status, routed. With probability `remote_payment_pct` the
    /// status check is for a customer of a *remote* warehouse (the same
    /// remote-customer model payment uses): the home desk reads its
    /// warehouse/district reference rows while the customer's shard runs
    /// the actual status query. Every part is read-only, so under the
    /// read-only participant optimization the whole cross-shard
    /// transaction commits with zero prepare records and zero decision
    /// records.
    fn run_order_status(&self, cluster: &Cluster, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let c = rng.gen_range(0..params.customers_per_district);
        let (c_w, c_d) = if params.warehouses > 1 && rng.gen_bool(self.remote_payment_pct) {
            (
                self.pick_other_warehouse(w, rng),
                rng.gen_range(0..params.districts_per_warehouse),
            )
        } else {
            (w, d)
        };
        let keys = self.inner.keys;
        let call = ProcedureCall::new(types::ORDER_STATUS);
        let home = cluster.shard_of(w as u64);
        let customer_shard = cluster.shard_of(c_w as u64);
        let input = transactions::OrderStatusInput { w: c_w, d: c_d, c };
        if home == customer_shard {
            let result = cluster.execute_single(home, &call, self.inner.max_attempts, |txn| {
                transactions::order_status(txn, &keys, &input).map(|_| ())
            });
            return unit(
                types::ORDER_STATUS,
                result.map(|(_, a)| a),
                self.inner.max_attempts,
            );
        }
        let result = cluster.execute_multi_with_retry(self.inner.max_attempts, || {
            let home_keys = keys;
            let remote_keys = keys;
            vec![
                ShardPart::new(
                    home,
                    call.clone(),
                    Box::new(move |txn| {
                        let _ = txn.get(home_keys.warehouse(w))?;
                        let _ = txn.get(home_keys.district(w, d))?;
                        Ok(Value::Null)
                    }),
                ),
                ShardPart::new(
                    customer_shard,
                    call.clone(),
                    Box::new(move |txn| {
                        transactions::order_status(txn, &remote_keys, &input).map(Value::Int)
                    }),
                ),
            ]
        });
        unit(
            types::ORDER_STATUS,
            result.map(|(_, aborts)| aborts),
            self.inner.max_attempts,
        )
    }

    fn run_local(&self, cluster: &Cluster, ty: TxnTypeId, w: u32, rng: &mut StdRng) -> WorkUnit {
        let params = &self.inner.params;
        let d = rng.gen_range(0..params.districts_per_warehouse);
        let keys = &self.inner.keys;
        let shard = cluster.shard_of(w as u64);
        let call = ProcedureCall::new(ty);
        let result = match ty {
            t if t == types::DELIVERY => {
                let input = transactions::DeliveryInput {
                    w,
                    carrier: rng.gen_range(1..10),
                    districts: params.districts_per_warehouse,
                };
                cluster.execute_single(shard, &call, self.inner.max_attempts, |txn| {
                    transactions::delivery(txn, keys, &input).map(|_| ())
                })
            }
            t if t == types::HOT_ITEM => {
                let input = transactions::HotItemInput {
                    w,
                    d,
                    recent_orders: 10,
                };
                cluster.execute_single(shard, &call, self.inner.max_attempts, |txn| {
                    transactions::hot_item(txn, keys, &input).map(|_| ())
                })
            }
            _ => {
                let input = transactions::StockLevelInput {
                    w,
                    d,
                    threshold: 50,
                    recent_orders: 20,
                };
                cluster.execute_single(shard, &call, self.inner.max_attempts, |txn| {
                    transactions::stock_level(txn, keys, &input).map(|_| ())
                })
            }
        };
        unit(ty, result.map(|(_, a)| a), self.inner.max_attempts)
    }
}

fn unit(
    ty: TxnTypeId,
    result: Result<usize, tebaldi_cc::CcError>,
    max_attempts: usize,
) -> WorkUnit {
    match result {
        Ok(aborts) => WorkUnit::committed(ty, aborts),
        Err(_) => WorkUnit::failed(ty, max_attempts),
    }
}

/// The TPC-C procedure set with the cluster-variant access list:
/// `order_status` additionally *reads* the home desk's warehouse and
/// district rows (the cross-shard decomposition's home part) — the
/// single-node transaction never touches them, so the shared
/// `schema::procedures` list stays untouched, mirroring how SEATS keeps a
/// separate `cluster_procedures`.
pub fn cluster_procedures(tables: &super::schema::TpccTables, with_hot_item: bool) -> ProcedureSet {
    use tebaldi_cc::{AccessMode::Read, ProcedureInfo};
    let mut set = super::schema::procedures(tables, with_hot_item);
    set.insert(ProcedureInfo::new(
        types::ORDER_STATUS,
        "order_status",
        vec![
            (tables.warehouse, Read),
            (tables.district, Read),
            (tables.customer, Read),
            (tables.customer_order_index, Read),
            (tables.order, Read),
            (tables.order_line, Read),
        ],
    ));
    set
}

impl ClusterWorkload for ClusterTpcc {
    fn name(&self) -> &str {
        "tpcc-cluster"
    }

    fn procedures(&self) -> ProcedureSet {
        cluster_procedures(&self.inner.keys.tables, self.inner.params.with_hot_item)
    }

    fn load(&self, cluster: &Cluster) {
        for shard in 0..cluster.shard_count() {
            let db = cluster.shard(shard);
            transactions::load_partition(db, &self.inner.keys, &self.inner.params, |w| {
                cluster.shard_of(w as u64) == shard
            });
        }
    }

    fn run_once(&self, cluster: &Cluster, rng: &mut StdRng) -> WorkUnit {
        let ty = self.inner.pick_type(rng);
        let w = self.inner.pick_warehouse(ty, rng);
        match ty {
            t if t == types::NEW_ORDER => self.run_new_order(cluster, w, rng),
            t if t == types::PAYMENT => self.run_payment(cluster, w, rng),
            t if t == types::ORDER_STATUS => self.run_order_status(cluster, w, rng),
            _ => self.run_local(cluster, ty, w, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{configs, schema::TpccParams};
    use super::*;
    use crate::driver::{bench_cluster_config, BenchOptions};
    use tebaldi_cluster::ClusterConfig;

    #[test]
    fn cluster_tpcc_commits_on_four_shards() {
        let workload: Arc<dyn ClusterWorkload> =
            Arc::new(ClusterTpcc::new(Tpcc::new(TpccParams::tiny())).with_remote_rates(0.05, 0.2));
        // Retry: the quick measurement window can miss every commit when
        // the workspace test suite saturates the machine.
        let mut committed = 0;
        for _ in 0..3 {
            committed = bench_cluster_config(
                &workload,
                configs::monolithic_2pl(),
                ClusterConfig::for_tests(2),
                &BenchOptions::quick(4).labeled("cluster-2PL"),
            )
            .committed;
            if committed > 0 {
                break;
            }
        }
        assert!(committed > 0, "cluster TPC-C must make progress");
    }

    #[test]
    fn shards_own_disjoint_warehouses() {
        let workload = ClusterTpcc::new(Tpcc::new(TpccParams::tiny()));
        let cluster = tebaldi_cluster::Cluster::builder(ClusterConfig::for_tests(2))
            .procedures(ClusterWorkload::procedures(&workload))
            .cc_spec(configs::monolithic_2pl())
            .build()
            .unwrap();
        ClusterWorkload::load(&workload, &cluster);
        // Warehouse 0 lives on shard 0, warehouse 1 on shard 1 (modulo).
        let keys = &workload.inner.keys;
        let shard0 = cluster.shard(0).store();
        let shard1 = cluster.shard(1).store();
        use tebaldi_storage::ReadSpec::LatestCommitted;
        assert!(shard0.read(&keys.warehouse(0), LatestCommitted).is_some());
        assert!(shard0.read(&keys.warehouse(1), LatestCommitted).is_none());
        assert!(shard1.read(&keys.warehouse(1), LatestCommitted).is_some());
        assert!(shard1.read(&keys.warehouse(0), LatestCommitted).is_none());
        // The item catalog is replicated.
        assert!(shard0.read(&keys.item(0), LatestCommitted).is_some());
        assert!(shard1.read(&keys.item(0), LatestCommitted).is_some());
        cluster.shutdown();
    }
}
