//! TPC-C transaction bodies.
//!
//! The bodies follow the access order declared in the procedure
//! descriptions (see [`super::schema`]) so runtime pipelining's step
//! assignment and the actual execution agree. Scans are removed as in the
//! paper's adaptation; the customer's latest order is located through the
//! explicit secondary-index table, and delivery finds pending orders through
//! the district's `next_delivery_o_id` cursor instead of scanning the
//! new_order table.

use super::schema::{TpccKeys, TpccParams};
use tebaldi_cc::CcResult;
use tebaldi_core::Txn;
use tebaldi_storage::Value;

/// District row fields.
pub mod district_fields {
    /// Next order id to assign.
    pub const NEXT_O_ID: usize = 0;
    /// Year-to-date payment total.
    pub const YTD: usize = 1;
    /// Next order id to deliver.
    pub const NEXT_DELIVERY_O_ID: usize = 2;
}

/// Inputs of one `payment` invocation.
#[derive(Clone, Copy, Debug)]
pub struct PaymentInput {
    /// Warehouse.
    pub w: u32,
    /// District.
    pub d: u32,
    /// Customer.
    pub c: u32,
    /// Amount in cents.
    pub amount: i64,
    /// Unique-ish id used for the history row.
    pub history_seq: u32,
}

/// The payment transaction: update warehouse and district year-to-date
/// totals, update the customer's balance, insert a history record.
pub fn payment(txn: &mut Txn<'_>, keys: &TpccKeys, input: &PaymentInput) -> CcResult<()> {
    payment_local(txn, keys, input, input.w, input.d)
}

/// Payment with the paying customer resolved on the same shard (possibly a
/// different warehouse than the home one). Preserves the declared table
/// order (warehouse → district → customer → history) that runtime
/// pipelining's static analysis relies on.
pub fn payment_local(
    txn: &mut Txn<'_>,
    keys: &TpccKeys,
    input: &PaymentInput,
    c_w: u32,
    c_d: u32,
) -> CcResult<()> {
    txn.increment(keys.warehouse(input.w), 0, input.amount)?;
    txn.increment(
        keys.district(input.w, input.d),
        district_fields::YTD,
        input.amount,
    )?;
    payment_customer(txn, keys, c_w, c_d, input.c, input.amount)?;
    txn.put(
        keys.history(input.w, input.d, input.history_seq),
        Value::row(&[input.amount]),
    )?;
    Ok(())
}

/// The home-warehouse part of payment (warehouse + district totals and the
/// history record). In the cluster a remote-customer payment runs this part
/// on the home shard and [`payment_customer`] on the customer's shard.
pub fn payment_home(txn: &mut Txn<'_>, keys: &TpccKeys, input: &PaymentInput) -> CcResult<()> {
    txn.increment(keys.warehouse(input.w), 0, input.amount)?;
    txn.increment(
        keys.district(input.w, input.d),
        district_fields::YTD,
        input.amount,
    )?;
    txn.put(
        keys.history(input.w, input.d, input.history_seq),
        Value::row(&[input.amount]),
    )?;
    Ok(())
}

/// The customer part of payment: balance debit and payment count, on the
/// customer's warehouse.
pub fn payment_customer(
    txn: &mut Txn<'_>,
    keys: &TpccKeys,
    c_w: u32,
    c_d: u32,
    c: u32,
    amount: i64,
) -> CcResult<()> {
    txn.increment(keys.customer(c_w, c_d, c), 0, -amount)?;
    txn.increment(keys.customer(c_w, c_d, c), 1, 1)?;
    Ok(())
}

/// Inputs of one `new_order` invocation.
#[derive(Clone, Debug)]
pub struct NewOrderInput {
    /// Warehouse.
    pub w: u32,
    /// District.
    pub d: u32,
    /// Customer.
    pub c: u32,
    /// Ordered items: (item id, supplying warehouse, quantity).
    pub lines: Vec<(u32, u32, i64)>,
}

/// The new_order transaction.
pub fn new_order(txn: &mut Txn<'_>, keys: &TpccKeys, input: &NewOrderInput) -> CcResult<u32> {
    new_order_filtered(txn, keys, input, |_| true)
}

/// The home-shard part of new_order in the cluster: identical to
/// [`new_order`] except stock rows are only updated for supplying
/// warehouses accepted by `stock_local` — the remaining stock updates run
/// on their owning shards through [`new_order_remote_stock`] under the
/// cross-shard two-phase commit.
pub fn new_order_filtered(
    txn: &mut Txn<'_>,
    keys: &TpccKeys,
    input: &NewOrderInput,
    stock_local: impl Fn(u32) -> bool,
) -> CcResult<u32> {
    // Warehouse tax rate (read only).
    let _ = txn.get(keys.warehouse(input.w))?;
    // Allocate the order id from the district.
    let o_id = txn.increment(
        keys.district(input.w, input.d),
        district_fields::NEXT_O_ID,
        1,
    )? as u32;
    // Customer discount / credit (read only).
    let _ = txn.get(keys.customer(input.w, input.d, input.c))?;
    // Insert the order and its new_order marker.
    txn.put(
        keys.order(input.w, input.d, o_id),
        Value::row(&[input.lines.len() as i64, input.c as i64, 0]),
    )?;
    txn.put(keys.new_order(input.w, input.d, o_id), Value::Int(1))?;
    // Order lines and (local) stock updates.
    for (line_no, (item, supply_w, qty)) in input.lines.iter().enumerate() {
        let price = txn
            .get(keys.item(*item))?
            .and_then(|v| v.field(0))
            .unwrap_or(100);
        if stock_local(*supply_w) {
            let stock_key = keys.stock(*supply_w, *item);
            let remaining = txn.update_field(stock_key, 0, |q| {
                if q - qty >= 10 {
                    q - qty
                } else {
                    q - qty + 91
                }
            })?;
            debug_assert!(remaining > -1_000_000);
            txn.increment(stock_key, 1, *qty)?;
            txn.increment(stock_key, 2, 1)?;
        }
        txn.put(
            keys.order_line(input.w, input.d, o_id, line_no as u32),
            Value::row(&[*item as i64, *qty, 0, price]),
        )?;
    }
    // Secondary index: the customer's latest order.
    txn.put(
        keys.customer_order_index(input.w, input.d, input.c),
        Value::Int(o_id as i64),
    )?;
    Ok(o_id)
}

/// The remote-shard part of a cross-shard new_order: the stock updates for
/// the order lines supplied by warehouses living on that shard.
pub fn new_order_remote_stock(
    txn: &mut Txn<'_>,
    keys: &TpccKeys,
    lines: &[(u32, u32, i64)],
) -> CcResult<()> {
    for (item, supply_w, qty) in lines {
        let stock_key = keys.stock(*supply_w, *item);
        txn.update_field(stock_key, 0, |q| {
            if q - qty >= 10 {
                q - qty
            } else {
                q - qty + 91
            }
        })?;
        txn.increment(stock_key, 1, *qty)?;
        txn.increment(stock_key, 2, 1)?;
    }
    Ok(())
}

/// A variant of [`new_order`] that updates the stock rows *before* touching
/// the district table. Under a 2PL cross-group node this inverts the lock
/// acquisition order against `stock_level` (district first, stock last),
/// producing the deadlocks of Table 3.1's second column.
pub fn new_order_stock_first(
    txn: &mut Txn<'_>,
    keys: &TpccKeys,
    input: &NewOrderInput,
) -> CcResult<u32> {
    let _ = txn.get(keys.warehouse(input.w))?;
    // Stock updates first (the deadlock-prone order).
    for (item, supply_w, qty) in &input.lines {
        let stock_key = keys.stock(*supply_w, *item);
        txn.update_field(stock_key, 0, |q| {
            if q - qty >= 10 {
                q - qty
            } else {
                q - qty + 91
            }
        })?;
        txn.increment(stock_key, 1, *qty)?;
        txn.increment(stock_key, 2, 1)?;
    }
    let o_id = txn.increment(
        keys.district(input.w, input.d),
        district_fields::NEXT_O_ID,
        1,
    )? as u32;
    let _ = txn.get(keys.customer(input.w, input.d, input.c))?;
    txn.put(
        keys.order(input.w, input.d, o_id),
        Value::row(&[input.lines.len() as i64, input.c as i64, 0]),
    )?;
    txn.put(keys.new_order(input.w, input.d, o_id), Value::Int(1))?;
    for (line_no, (item, _supply_w, qty)) in input.lines.iter().enumerate() {
        let price = txn
            .get(keys.item(*item))?
            .and_then(|v| v.field(0))
            .unwrap_or(100);
        txn.put(
            keys.order_line(input.w, input.d, o_id, line_no as u32),
            Value::row(&[*item as i64, *qty, 0, price]),
        )?;
    }
    txn.put(
        keys.customer_order_index(input.w, input.d, input.c),
        Value::Int(o_id as i64),
    )?;
    Ok(o_id)
}

/// Inputs of one `delivery` invocation.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryInput {
    /// Warehouse.
    pub w: u32,
    /// Carrier id recorded on delivered orders.
    pub carrier: i64,
    /// Number of districts in the warehouse.
    pub districts: u32,
}

/// The delivery transaction: delivers the oldest undelivered order of every
/// district of a warehouse.
pub fn delivery(txn: &mut Txn<'_>, keys: &TpccKeys, input: &DeliveryInput) -> CcResult<u32> {
    let mut delivered = 0;
    for d in 0..input.districts {
        let district_key = keys.district(input.w, d);
        let district = txn.get(district_key)?;
        let next_o_id = district
            .as_ref()
            .and_then(|v| v.field(district_fields::NEXT_O_ID))
            .unwrap_or(1);
        let next_delivery = district
            .as_ref()
            .and_then(|v| v.field(district_fields::NEXT_DELIVERY_O_ID))
            .unwrap_or(1);
        if next_delivery >= next_o_id {
            continue; // nothing pending in this district
        }
        let o_id = next_delivery as u32;
        txn.update_field(district_key, district_fields::NEXT_DELIVERY_O_ID, |v| v + 1)?;
        // Remove the new_order marker.
        txn.delete(keys.new_order(input.w, d, o_id))?;
        // Stamp the carrier on the order.
        let order = txn.get(keys.order(input.w, d, o_id))?;
        let (ol_cnt, c_id) = match &order {
            Some(v) => (v.field(0).unwrap_or(0), v.field(1).unwrap_or(0)),
            None => (0, 0),
        };
        if let Some(order_row) = order {
            txn.put(
                keys.order(input.w, d, o_id),
                order_row.with_field(2, input.carrier),
            )?;
        }
        // Stamp delivery on each order line and sum the amounts.
        let mut amount = 0i64;
        for line in 0..ol_cnt.max(0) as u32 {
            let key = keys.order_line(input.w, d, o_id, line);
            if let Some(row) = txn.get(key)? {
                amount += row.field(3).unwrap_or(0);
                txn.put(key, row.with_field(2, 1))?;
            }
        }
        // Credit the customer.
        if c_id > 0 {
            let customer_key = keys.customer(input.w, d, c_id as u32);
            txn.increment(customer_key, 0, amount)?;
            txn.increment(customer_key, 2, 1)?;
        }
        delivered += 1;
    }
    Ok(delivered)
}

/// Inputs of one `order_status` invocation.
#[derive(Clone, Copy, Debug)]
pub struct OrderStatusInput {
    /// Warehouse.
    pub w: u32,
    /// District.
    pub d: u32,
    /// Customer.
    pub c: u32,
}

/// The order_status read-only transaction.
pub fn order_status(txn: &mut Txn<'_>, keys: &TpccKeys, input: &OrderStatusInput) -> CcResult<i64> {
    let balance = txn
        .get(keys.customer(input.w, input.d, input.c))?
        .and_then(|v| v.field(0))
        .unwrap_or(0);
    let latest = txn
        .get(keys.customer_order_index(input.w, input.d, input.c))?
        .and_then(|v| v.as_int());
    if let Some(o_id) = latest {
        let order = txn.get(keys.order(input.w, input.d, o_id as u32))?;
        let ol_cnt = order.and_then(|v| v.field(0)).unwrap_or(0);
        for line in 0..ol_cnt.max(0) as u32 {
            let _ = txn.get(keys.order_line(input.w, input.d, o_id as u32, line))?;
        }
    }
    Ok(balance)
}

/// Inputs of one `stock_level` invocation.
#[derive(Clone, Copy, Debug)]
pub struct StockLevelInput {
    /// Warehouse.
    pub w: u32,
    /// District.
    pub d: u32,
    /// Quantity threshold.
    pub threshold: i64,
    /// How many recent orders to examine (TPC-C uses 20).
    pub recent_orders: u32,
}

/// The stock_level read-only transaction: counts recently sold items whose
/// stock is below the threshold.
pub fn stock_level(txn: &mut Txn<'_>, keys: &TpccKeys, input: &StockLevelInput) -> CcResult<u64> {
    let next_o_id = txn
        .get(keys.district(input.w, input.d))?
        .and_then(|v| v.field(district_fields::NEXT_O_ID))
        .unwrap_or(1);
    let low = (next_o_id - input.recent_orders as i64).max(1);
    let mut below = 0u64;
    for o_id in low..next_o_id {
        let order = txn.get(keys.order(input.w, input.d, o_id as u32))?;
        let ol_cnt = order.and_then(|v| v.field(0)).unwrap_or(0);
        for line in 0..ol_cnt.max(0) as u32 {
            let item = txn
                .get(keys.order_line(input.w, input.d, o_id as u32, line))?
                .and_then(|v| v.field(0))
                .unwrap_or(0);
            let quantity = txn
                .get(keys.stock(input.w, item as u32))?
                .and_then(|v| v.field(0))
                .unwrap_or(0);
            if quantity < input.threshold {
                below += 1;
            }
        }
    }
    Ok(below)
}

/// Inputs of one `hot_item` invocation (§4.6.3).
#[derive(Clone, Copy, Debug)]
pub struct HotItemInput {
    /// Warehouse to sample.
    pub w: u32,
    /// District to sample.
    pub d: u32,
    /// How many recent orders to sample.
    pub recent_orders: u32,
}

/// The hot_item extension transaction: samples recent orders and aggregates
/// per-item sale counts into the item_stats table.
pub fn hot_item(txn: &mut Txn<'_>, keys: &TpccKeys, input: &HotItemInput) -> CcResult<u64> {
    let next_o_id = txn
        .get(keys.district(input.w, input.d))?
        .and_then(|v| v.field(district_fields::NEXT_O_ID))
        .unwrap_or(1);
    let low = (next_o_id - input.recent_orders as i64).max(1);
    let mut updated = 0u64;
    for o_id in low..next_o_id {
        let order = txn.get(keys.order(input.w, input.d, o_id as u32))?;
        let ol_cnt = order.and_then(|v| v.field(0)).unwrap_or(0);
        for line in 0..ol_cnt.max(0) as u32 {
            let item = txn
                .get(keys.order_line(input.w, input.d, o_id as u32, line))?
                .and_then(|v| v.field(0))
                .unwrap_or(0);
            txn.increment(keys.item_stats(item as u32), 0, 1)?;
            updated += 1;
        }
    }
    Ok(updated)
}

/// Loads the initial TPC-C population directly into the store.
pub fn load(db: &tebaldi_core::Database, keys: &TpccKeys, params: &TpccParams) {
    load_partition(db, keys, params, |_| true)
}

/// Loads only the warehouses accepted by `owns` (cluster shards own
/// disjoint warehouse sets); the read-mostly item catalog is replicated on
/// every shard.
pub fn load_partition(
    db: &tebaldi_core::Database,
    keys: &TpccKeys,
    params: &TpccParams,
    owns: impl Fn(u32) -> bool,
) {
    for w in (0..params.warehouses).filter(|w| owns(*w)) {
        db.load(keys.warehouse(w), Value::row(&[0]));
        for d in 0..params.districts_per_warehouse {
            // next_o_id starts at 1, ytd 0, next_delivery 1.
            db.load(keys.district(w, d), Value::row(&[1, 0, 1]));
            for c in 0..params.customers_per_district {
                db.load(keys.customer(w, d, c), Value::row(&[0, 0, 0]));
            }
        }
        for item in 0..params.items {
            db.load(keys.stock(w, item), Value::row(&[100, 0, 0]));
        }
    }
    for item in 0..params.items {
        db.load(keys.item(item), Value::row(&[(item as i64 % 90) + 10]));
        if params.with_hot_item {
            db.load(keys.item_stats(item), Value::Int(0));
        }
    }
}
