//! TPC-C schema, adapted to Tebaldi's key-value interface as in §4.6.
//!
//! The paper removes the last-name scans from `payment` / `order_status`
//! and adds a separate table acting as a secondary index on the order table
//! to locate a customer's latest order. This module defines the tables,
//! the packed key layouts and the per-transaction-type
//! [`ProcedureInfo`] descriptions (whose table access *order* drives
//! runtime pipelining's static analysis; the declared orders follow the
//! reordering RP's preprocessing would produce, with `new_order` and
//! `payment` sharing the warehouse → district → customer prefix and
//! `stock_level` preferring order_line before stock, which is what creates
//! the famous cycle when it is grouped with `new_order`, Fig. 3.1).

use serde::{Deserialize, Serialize};
use tebaldi_cc::{AccessMode, ProcedureInfo, ProcedureSet};
use tebaldi_storage::{Key, TableId, TxnTypeId};

/// TPC-C tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TpccTables {
    /// warehouse(w) → [ytd]
    pub warehouse: TableId,
    /// district(w, d) → [next_o_id, ytd, next_delivery_o_id]
    pub district: TableId,
    /// customer(w, d, c) → [balance, payment_cnt, delivery_cnt]
    pub customer: TableId,
    /// history(w, d, seq) → [amount]
    pub history: TableId,
    /// order(w, d, o) → [ol_cnt, c_id, carrier]
    pub order: TableId,
    /// new_order(w, d, o) → [1]
    pub new_order: TableId,
    /// order_line(w, d, o, line) → [item_id, qty, delivered]
    pub order_line: TableId,
    /// stock(w, item) → [quantity, ytd, order_cnt]
    pub stock: TableId,
    /// item(item) → [price]
    pub item: TableId,
    /// customer_order_index(w, d, c) → [latest_o_id]  (secondary index)
    pub customer_order_index: TableId,
    /// item_stats(item) → [sale_count]  (hot_item extension, §4.6.3)
    pub item_stats: TableId,
}

impl Default for TpccTables {
    fn default() -> Self {
        TpccTables {
            warehouse: TableId(0),
            district: TableId(1),
            customer: TableId(2),
            history: TableId(3),
            order: TableId(4),
            new_order: TableId(5),
            order_line: TableId(6),
            stock: TableId(7),
            item: TableId(8),
            customer_order_index: TableId(9),
            item_stats: TableId(10),
        }
    }
}

/// TPC-C transaction types.
pub mod types {
    use tebaldi_storage::TxnTypeId;

    /// payment (PAY)
    pub const PAYMENT: TxnTypeId = TxnTypeId(0);
    /// new_order (NO)
    pub const NEW_ORDER: TxnTypeId = TxnTypeId(1);
    /// delivery (DEL)
    pub const DELIVERY: TxnTypeId = TxnTypeId(2);
    /// order_status (OS) — read-only
    pub const ORDER_STATUS: TxnTypeId = TxnTypeId(3);
    /// stock_level (SL) — read-only
    pub const STOCK_LEVEL: TxnTypeId = TxnTypeId(4);
    /// hot_item (HI) — the extensibility extension of §4.6.3
    pub const HOT_ITEM: TxnTypeId = TxnTypeId(5);
}

/// Scale parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TpccParams {
    /// Number of warehouses (the paper populates ten).
    pub warehouses: u32,
    /// Districts per warehouse (TPC-C fixes this at ten).
    pub districts_per_warehouse: u32,
    /// Customers per district (scaled down from 3 000 to keep load times
    /// laptop-friendly; contention lives on warehouses/districts/stock).
    pub customers_per_district: u32,
    /// Number of items (scaled down from 100 000).
    pub items: u32,
    /// Whether the hot_item extension transaction is part of the mix.
    pub with_hot_item: bool,
}

impl Default for TpccParams {
    fn default() -> Self {
        TpccParams {
            warehouses: 4,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 10_000,
            with_hot_item: false,
        }
    }
}

impl TpccParams {
    /// A very small instance for unit tests.
    pub fn tiny() -> Self {
        TpccParams {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            items: 200,
            with_hot_item: false,
        }
    }
}

/// Key constructors.
#[derive(Clone, Copy, Debug, Default)]
pub struct TpccKeys {
    /// Table ids in use.
    pub tables: TpccTables,
}

impl TpccKeys {
    /// warehouse(w)
    pub fn warehouse(&self, w: u32) -> Key {
        Key::simple(self.tables.warehouse, w as u64)
    }
    /// district(w, d)
    pub fn district(&self, w: u32, d: u32) -> Key {
        Key::composite(self.tables.district, &[w, d])
    }
    /// customer(w, d, c)
    pub fn customer(&self, w: u32, d: u32, c: u32) -> Key {
        Key::composite(self.tables.customer, &[w, d, c])
    }
    /// history(w, d, seq)
    pub fn history(&self, w: u32, d: u32, seq: u32) -> Key {
        Key::composite(self.tables.history, &[w, d, seq])
    }
    /// order(w, d, o)
    pub fn order(&self, w: u32, d: u32, o: u32) -> Key {
        Key::composite(self.tables.order, &[w, d, o])
    }
    /// new_order(w, d, o)
    pub fn new_order(&self, w: u32, d: u32, o: u32) -> Key {
        Key::composite(self.tables.new_order, &[w, d, o])
    }
    /// order_line(w, d, o, line)
    pub fn order_line(&self, w: u32, d: u32, o: u32, line: u32) -> Key {
        Key::composite(self.tables.order_line, &[w, d, o, line])
    }
    /// stock(w, item)
    pub fn stock(&self, w: u32, item: u32) -> Key {
        Key::composite(self.tables.stock, &[w, item])
    }
    /// item(i)
    pub fn item(&self, i: u32) -> Key {
        Key::simple(self.tables.item, i as u64)
    }
    /// customer_order_index(w, d, c)
    pub fn customer_order_index(&self, w: u32, d: u32, c: u32) -> Key {
        Key::composite(self.tables.customer_order_index, &[w, d, c])
    }
    /// item_stats(i)
    pub fn item_stats(&self, i: u32) -> Key {
        Key::simple(self.tables.item_stats, i as u64)
    }
}

/// Builds the [`ProcedureSet`] describing every TPC-C transaction type.
pub fn procedures(tables: &TpccTables, with_hot_item: bool) -> ProcedureSet {
    use AccessMode::{Read, Write};
    let mut set = ProcedureSet::new();
    set.insert(ProcedureInfo::new(
        types::PAYMENT,
        "payment",
        vec![
            (tables.warehouse, Write),
            (tables.district, Write),
            (tables.customer, Write),
            (tables.history, Write),
        ],
    ));
    set.insert(ProcedureInfo::new(
        types::NEW_ORDER,
        "new_order",
        vec![
            (tables.warehouse, Read),
            (tables.district, Write),
            (tables.customer, Read),
            (tables.order, Write),
            (tables.new_order, Write),
            (tables.item, Read),
            (tables.stock, Write),
            (tables.order_line, Write),
            (tables.customer_order_index, Write),
        ],
    ));
    set.insert(ProcedureInfo::new(
        types::DELIVERY,
        "delivery",
        vec![
            (tables.district, Write),
            (tables.new_order, Write),
            (tables.order, Write),
            (tables.order_line, Write),
            (tables.customer, Write),
        ],
    ));
    set.insert(ProcedureInfo::new(
        types::ORDER_STATUS,
        "order_status",
        vec![
            (tables.customer, Read),
            (tables.customer_order_index, Read),
            (tables.order, Read),
            (tables.order_line, Read),
        ],
    ));
    set.insert(ProcedureInfo::new(
        types::STOCK_LEVEL,
        "stock_level",
        vec![
            (tables.district, Read),
            (tables.order, Read),
            (tables.order_line, Read),
            (tables.stock, Read),
        ],
    ));
    if with_hot_item {
        set.insert(ProcedureInfo::new(
            types::HOT_ITEM,
            "hot_item",
            vec![
                (tables.district, Read),
                (tables.order, Read),
                (tables.order_line, Read),
                (tables.item_stats, Write),
            ],
        ));
    }
    set
}

/// All transaction types in the standard mix.
pub fn standard_types() -> Vec<TxnTypeId> {
    vec![
        types::PAYMENT,
        types::NEW_ORDER,
        types::DELIVERY,
        types::ORDER_STATUS,
        types::STOCK_LEVEL,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procedure_set_covers_types() {
        let set = procedures(&TpccTables::default(), true);
        assert_eq!(set.len(), 6);
        assert!(set.get(types::ORDER_STATUS).unwrap().read_only);
        assert!(set.get(types::STOCK_LEVEL).unwrap().read_only);
        assert!(!set.get(types::NEW_ORDER).unwrap().read_only);
        assert!(!set.get(types::HOT_ITEM).unwrap().read_only);
        assert_eq!(standard_types().len(), 5);
    }

    #[test]
    fn keys_distinguish_rows() {
        let keys = TpccKeys::default();
        assert_ne!(keys.district(1, 2), keys.district(2, 1));
        assert_ne!(keys.order_line(1, 1, 1, 1), keys.order_line(1, 1, 1, 2));
        assert_ne!(keys.stock(1, 5), keys.item(5));
    }
}
