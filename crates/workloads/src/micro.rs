//! Microbenchmarks of §3.4.1, §4.6.4 and §4.6.5.
//!
//! Three generators live here:
//!
//! * [`CrossGroupMicro`] — the two-group workload of Fig. 4.10 used to
//!   compare cross-group mechanisms under controlled read-write or
//!   write-write conflict ratios,
//! * [`HierarchyMicro`] — the three-transaction workload of Fig. 4.11 used
//!   to show when a three-layer hierarchy beats every two-layer grouping,
//! * [`OverheadMicro`] — the conflict-free workload of Table 4.1 used to
//!   measure the latency and CPU cost of adding hierarchy layers.

use crate::workload::{WorkUnit, Workload};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use tebaldi_cc::{AccessMode, CcKind, CcNodeSpec, CcTreeSpec, ProcedureInfo, ProcedureSet};
use tebaldi_core::{Database, Database as Db, ProcedureCall};
use tebaldi_storage::{Key, TableId, TxnTypeId, Value};

const MAX_ATTEMPTS: usize = 50;

fn run<R>(
    db: &Db,
    call: &ProcedureCall,
    ty: TxnTypeId,
    body: impl FnMut(&mut tebaldi_core::Txn<'_>) -> tebaldi_cc::CcResult<R>,
) -> WorkUnit {
    match db.execute_with_retry(call, MAX_ATTEMPTS, body) {
        Ok((_, aborts)) => WorkUnit::committed(ty, aborts),
        Err(_) => WorkUnit::failed(ty, MAX_ATTEMPTS),
    }
}

// ---------------------------------------------------------------------------
// Fig. 4.10: cross-group mechanisms under controlled conflict ratios.
// ---------------------------------------------------------------------------

/// Transaction types of [`CrossGroupMicro`].
pub mod crossgroup_types {
    use tebaldi_storage::TxnTypeId;

    /// The first group's update transaction.
    pub const GROUP_A: TxnTypeId = TxnTypeId(30);
    /// The second group's transaction (update or read-only).
    pub const GROUP_B: TxnTypeId = TxnTypeId(31);
}

/// The Fig. 4.10 microbenchmark.
pub struct CrossGroupMicro {
    /// Rows in the shared table; the cross-group conflict rate is `1/n`.
    pub shared_rows: u32,
    /// Rows in each group-local table (the paper uses ten).
    pub group_local_rows: u32,
    /// Rows in the low-contention tables (the paper uses 10 000).
    pub low_contention_rows: u32,
    /// When true the second group is read-only (the `rw-*` workloads);
    /// otherwise both groups write (the `ww-*` workloads).
    pub second_group_read_only: bool,
}

impl CrossGroupMicro {
    /// A workload with roughly `conflict_percent` cross-group conflicts.
    pub fn with_conflict_percent(conflict_percent: f64, second_group_read_only: bool) -> Self {
        let shared_rows = (100.0 / conflict_percent.max(0.01)).round().max(1.0) as u32;
        CrossGroupMicro {
            shared_rows,
            group_local_rows: 10,
            low_contention_rows: 10_000,
            second_group_read_only,
        }
    }

    fn shared(&self) -> TableId {
        TableId(30)
    }
    fn local(&self, group: u32) -> TableId {
        TableId(31 + group)
    }
    fn wide(&self, group: u32) -> TableId {
        TableId(33 + group)
    }

    /// The two-layer configuration with the given cross-group mechanism.
    pub fn config(&self, cross_group: CcKind) -> CcTreeSpec {
        let second = if self.second_group_read_only {
            CcNodeSpec::leaf(CcKind::NoCc, "readers", vec![crossgroup_types::GROUP_B])
        } else {
            CcNodeSpec::leaf(CcKind::Rp, "writers-b", vec![crossgroup_types::GROUP_B])
        };
        CcTreeSpec::new(CcNodeSpec::inner(
            cross_group,
            "cross-group",
            vec![
                CcNodeSpec::leaf(CcKind::Rp, "writers-a", vec![crossgroup_types::GROUP_A]),
                second,
            ],
        ))
    }
}

impl Workload for CrossGroupMicro {
    fn name(&self) -> &str {
        "crossgroup-micro"
    }

    fn procedures(&self) -> ProcedureSet {
        use AccessMode::{Read, Write};
        let mut set = ProcedureSet::new();
        set.insert(ProcedureInfo::new(
            crossgroup_types::GROUP_A,
            "group_a_update",
            vec![
                (self.shared(), Write),
                (self.local(0), Write),
                (self.wide(0), Write),
            ],
        ));
        let b_mode = if self.second_group_read_only {
            Read
        } else {
            Write
        };
        set.insert(ProcedureInfo::new(
            crossgroup_types::GROUP_B,
            "group_b",
            vec![
                (self.shared(), b_mode),
                (self.local(1), b_mode),
                (self.wide(1), b_mode),
            ],
        ));
        set
    }

    fn load(&self, db: &Database) {
        for row in 0..self.shared_rows {
            db.load(Key::simple(self.shared(), row as u64), Value::Int(0));
        }
        for group in 0..2 {
            for row in 0..self.group_local_rows {
                db.load(Key::simple(self.local(group), row as u64), Value::Int(0));
            }
            for row in 0..self.low_contention_rows {
                db.load(Key::simple(self.wide(group), row as u64), Value::Int(0));
            }
        }
    }

    fn run_once(&self, db: &Database, rng: &mut StdRng) -> WorkUnit {
        let group = if rng.gen_bool(0.5) { 0u32 } else { 1u32 };
        let ty = if group == 0 {
            crossgroup_types::GROUP_A
        } else {
            crossgroup_types::GROUP_B
        };
        let shared_key = Key::simple(self.shared(), rng.gen_range(0..self.shared_rows) as u64);
        let local_key = Key::simple(
            self.local(group),
            rng.gen_range(0..self.group_local_rows) as u64,
        );
        let wide_keys: Vec<Key> = (0..5)
            .map(|_| {
                Key::simple(
                    self.wide(group),
                    rng.gen_range(0..self.low_contention_rows) as u64,
                )
            })
            .collect();
        let call = ProcedureCall::new(ty);
        let read_only = group == 1 && self.second_group_read_only;
        run(db, &call, ty, |txn| {
            if read_only {
                let _ = txn.get(shared_key)?;
                let _ = txn.get(local_key)?;
                for key in &wide_keys {
                    let _ = txn.get(*key)?;
                }
            } else {
                txn.increment(shared_key, 0, 1)?;
                txn.increment(local_key, 0, 1)?;
                for key in &wide_keys {
                    txn.increment(*key, 0, 1)?;
                }
            }
            Ok(())
        })
    }
}

// ---------------------------------------------------------------------------
// Fig. 4.11: two-layer vs. three-layer hierarchies.
// ---------------------------------------------------------------------------

/// Transaction types of [`HierarchyMicro`].
pub mod hierarchy_types {
    use tebaldi_storage::TxnTypeId;

    /// The read-only transaction T1.
    pub const T1: TxnTypeId = TxnTypeId(40);
    /// The hot update transaction T2.
    pub const T2: TxnTypeId = TxnTypeId(41);
    /// The mostly-disjoint update transaction T3.
    pub const T3: TxnTypeId = TxnTypeId(42);
}

/// The Fig. 4.11 microbenchmark: table A is tiny and hot, tables B–E are
/// large and rarely contended.
pub struct HierarchyMicro {
    /// Rows in table A.
    pub hot_rows: u32,
    /// Rows in tables B–E.
    pub wide_rows: u32,
}

impl Default for HierarchyMicro {
    fn default() -> Self {
        HierarchyMicro {
            hot_rows: 10,
            wide_rows: 10_000,
        }
    }
}

impl HierarchyMicro {
    fn table_a(&self) -> TableId {
        TableId(40)
    }
    fn table(&self, i: u32) -> TableId {
        TableId(41 + i) // B..E for i in 0..4
    }

    /// The three-layer configuration: SSI(root) → [NoCC{T1}, 2PL → [RP{T2},
    /// 2PL{T3}]].
    pub fn three_layer() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "three-layer",
            vec![
                CcNodeSpec::leaf(CcKind::NoCc, "t1", vec![hierarchy_types::T1]),
                CcNodeSpec::inner(
                    CcKind::TwoPl,
                    "updates",
                    vec![
                        CcNodeSpec::leaf(CcKind::Rp, "t2", vec![hierarchy_types::T2]),
                        CcNodeSpec::leaf(CcKind::TwoPl, "t3", vec![hierarchy_types::T3]),
                    ],
                ),
            ],
        ))
    }

    /// Two-layer 1: SSI cross-group, T2 and T3 in separate groups.
    pub fn two_layer_1() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "two-layer-1",
            vec![
                CcNodeSpec::leaf(CcKind::NoCc, "t1", vec![hierarchy_types::T1]),
                CcNodeSpec::leaf(CcKind::Rp, "t2", vec![hierarchy_types::T2]),
                CcNodeSpec::leaf(CcKind::TwoPl, "t3", vec![hierarchy_types::T3]),
            ],
        ))
    }

    /// Two-layer 2: SSI cross-group, T2 and T3 in the same RP group.
    pub fn two_layer_2() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::Ssi,
            "two-layer-2",
            vec![
                CcNodeSpec::leaf(CcKind::NoCc, "t1", vec![hierarchy_types::T1]),
                CcNodeSpec::leaf(
                    CcKind::Rp,
                    "t2+t3",
                    vec![hierarchy_types::T2, hierarchy_types::T3],
                ),
            ],
        ))
    }

    /// Two-layer 3: 2PL cross-group with T1 and T2 pipelined together.
    pub fn two_layer_3() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::TwoPl,
            "two-layer-3",
            vec![
                CcNodeSpec::leaf(
                    CcKind::Rp,
                    "t1+t2",
                    vec![hierarchy_types::T1, hierarchy_types::T2],
                ),
                CcNodeSpec::leaf(CcKind::TwoPl, "t3", vec![hierarchy_types::T3]),
            ],
        ))
    }

    /// Two-layer 4: 2PL cross-group, every transaction in its own group.
    pub fn two_layer_4() -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            CcKind::TwoPl,
            "two-layer-4",
            vec![
                CcNodeSpec::leaf(CcKind::NoCc, "t1", vec![hierarchy_types::T1]),
                CcNodeSpec::leaf(CcKind::Rp, "t2", vec![hierarchy_types::T2]),
                CcNodeSpec::leaf(CcKind::TwoPl, "t3", vec![hierarchy_types::T3]),
            ],
        ))
    }

    /// All configurations of Fig. 4.11 in presentation order.
    pub fn configs() -> Vec<(&'static str, CcTreeSpec)> {
        vec![
            ("Three-layer", Self::three_layer()),
            ("Two-layer 1", Self::two_layer_1()),
            ("Two-layer 2", Self::two_layer_2()),
            ("Two-layer 3", Self::two_layer_3()),
            ("Two-layer 4", Self::two_layer_4()),
        ]
    }
}

impl Workload for HierarchyMicro {
    fn name(&self) -> &str {
        "hierarchy-micro"
    }

    fn procedures(&self) -> ProcedureSet {
        use AccessMode::{Read, Write};
        let mut set = ProcedureSet::new();
        set.insert(ProcedureInfo::new(
            hierarchy_types::T1,
            "t1_read",
            vec![
                (self.table_a(), Read),
                (self.table(0), Read),
                (self.table(1), Read),
                (self.table(2), Read),
                (self.table(3), Read),
            ],
        ));
        set.insert(ProcedureInfo::new(
            hierarchy_types::T2,
            "t2_update",
            vec![
                (self.table_a(), Write),
                (self.table(0), Write),
                (self.table(1), Write),
                (self.table(2), Write),
                (self.table(3), Write),
            ],
        ));
        set.insert(ProcedureInfo::new(
            hierarchy_types::T3,
            "t3_update",
            vec![
                (self.table(0), Write),
                (self.table(1), Read),
                (self.table(2), Read),
                (self.table(3), Read),
            ],
        ));
        set
    }

    fn load(&self, db: &Database) {
        for row in 0..self.hot_rows {
            db.load(Key::simple(self.table_a(), row as u64), Value::Int(0));
        }
        for t in 0..4 {
            for row in 0..self.wide_rows {
                db.load(Key::simple(self.table(t), row as u64), Value::Int(0));
            }
        }
    }

    fn run_once(&self, db: &Database, rng: &mut StdRng) -> WorkUnit {
        let roll: f64 = rng.gen();
        // Equal thirds, as in the paper's microbenchmark.
        let ty = if roll < 0.34 {
            hierarchy_types::T1
        } else if roll < 0.67 {
            hierarchy_types::T2
        } else {
            hierarchy_types::T3
        };
        let hot_key = Key::simple(self.table_a(), rng.gen_range(0..self.hot_rows) as u64);
        let wide_keys: Vec<Key> = (0..4)
            .map(|t| Key::simple(self.table(t), rng.gen_range(0..self.wide_rows) as u64))
            .collect();
        let call = ProcedureCall::new(ty);
        match ty {
            t if t == hierarchy_types::T1 => run(db, &call, ty, |txn| {
                let _ = txn.get(hot_key)?;
                for key in &wide_keys {
                    // Ten reads from the remaining tables.
                    for offset in 0..2u64 {
                        let probe = Key::new(key.table, key.row + offset as u128);
                        let _ = txn.get(probe)?;
                    }
                }
                Ok(())
            }),
            t if t == hierarchy_types::T2 => run(db, &call, ty, |txn| {
                txn.increment(hot_key, 0, 1)?;
                for key in &wide_keys {
                    txn.increment(*key, 0, 1)?;
                }
                Ok(())
            }),
            _ => run(db, &call, ty, |txn| {
                for key in wide_keys.iter().skip(1) {
                    let _ = txn.get(*key)?;
                }
                txn.increment(wide_keys[0], 0, 1)?;
                Ok(())
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Table 4.1: overhead of additional layers (conflict-free workload).
// ---------------------------------------------------------------------------

/// Transaction type of [`OverheadMicro`].
pub const OVERHEAD_TYPE: TxnTypeId = TxnTypeId(50);

/// The Table 4.1 microbenchmark: a single transaction type performing seven
/// writes that never conflict (every invocation writes a fresh key range).
pub struct OverheadMicro {
    next_base: AtomicU64,
}

impl Default for OverheadMicro {
    fn default() -> Self {
        OverheadMicro {
            next_base: AtomicU64::new(0),
        }
    }
}

impl OverheadMicro {
    /// Creates the workload.
    pub fn new() -> Self {
        OverheadMicro::default()
    }

    fn table(&self, i: u32) -> TableId {
        TableId(60 + i)
    }

    /// Stand-alone runtime pipelining (the baseline row of Table 4.1).
    pub fn standalone_rp() -> CcTreeSpec {
        CcTreeSpec::monolithic(CcKind::Rp, vec![OVERHEAD_TYPE])
    }

    /// One extra cross-group layer of the given kind above the RP group.
    pub fn layered(cross_group: CcKind) -> CcTreeSpec {
        CcTreeSpec::new(CcNodeSpec::inner(
            cross_group,
            "overhead",
            vec![CcNodeSpec::leaf(CcKind::Rp, "rp", vec![OVERHEAD_TYPE])],
        ))
    }

    /// All Table 4.1 configurations in presentation order.
    pub fn configs() -> Vec<(&'static str, CcTreeSpec)> {
        vec![
            ("stand-alone RP", Self::standalone_rp()),
            ("2PL - RP", Self::layered(CcKind::TwoPl)),
            ("SSI - RP", Self::layered(CcKind::Ssi)),
            ("RP - RP", Self::layered(CcKind::Rp)),
        ]
    }
}

impl Workload for OverheadMicro {
    fn name(&self) -> &str {
        "overhead-micro"
    }

    fn procedures(&self) -> ProcedureSet {
        let seq: Vec<(TableId, AccessMode)> =
            (0..7).map(|i| (self.table(i), AccessMode::Write)).collect();
        let mut set = ProcedureSet::new();
        set.insert(ProcedureInfo::new(OVERHEAD_TYPE, "seven_writes", seq));
        set
    }

    fn load(&self, _db: &Database) {
        // Nothing to preload: every transaction writes fresh keys.
    }

    fn run_once(&self, db: &Database, _rng: &mut StdRng) -> WorkUnit {
        let base = self.next_base.fetch_add(1, Ordering::Relaxed);
        let keys: Vec<Key> = (0..7).map(|i| Key::simple(self.table(i), base)).collect();
        let call = ProcedureCall::new(OVERHEAD_TYPE);
        run(db, &call, OVERHEAD_TYPE, |txn| {
            for key in &keys {
                txn.put(*key, Value::Int(base as i64))?;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{bench_config, BenchOptions};
    use std::sync::Arc;
    use tebaldi_core::DbConfig;

    #[test]
    fn crossgroup_conflict_sizing() {
        let w = CrossGroupMicro::with_conflict_percent(1.0, true);
        assert_eq!(w.shared_rows, 100);
        let w = CrossGroupMicro::with_conflict_percent(10.0, false);
        assert_eq!(w.shared_rows, 10);
        assert!(w.config(CcKind::Ssi).validate().is_ok());
        assert!(w.config(CcKind::TwoPl).validate().is_ok());
    }

    #[test]
    fn hierarchy_configs_validate() {
        for (name, spec) in HierarchyMicro::configs() {
            assert!(spec.validate().is_ok(), "{name} invalid");
        }
    }

    #[test]
    fn overhead_micro_commits_without_conflicts() {
        let workload: Arc<dyn Workload> = Arc::new(OverheadMicro::new());
        let result = bench_config(
            &workload,
            OverheadMicro::layered(CcKind::Ssi),
            DbConfig::for_tests(),
            &BenchOptions::quick(2).labeled("SSI-RP"),
        );
        assert!(result.committed > 0);
        assert_eq!(result.aborted, 0, "conflict-free workload must not abort");
    }

    #[test]
    fn crossgroup_micro_runs_with_ssi_cross_group() {
        let mut w = CrossGroupMicro::with_conflict_percent(5.0, true);
        w.low_contention_rows = 200;
        let spec = w.config(CcKind::Ssi);
        let workload: Arc<dyn Workload> = Arc::new(w);
        let result = bench_config(
            &workload,
            spec,
            DbConfig::for_tests(),
            &BenchOptions::quick(4).labeled("SSI"),
        );
        assert!(result.committed > 0);
    }

    #[test]
    fn hierarchy_micro_runs_three_layer() {
        let w = HierarchyMicro {
            hot_rows: 5,
            wide_rows: 100,
        };
        let workload: Arc<dyn Workload> = Arc::new(w);
        let result = bench_config(
            &workload,
            HierarchyMicro::three_layer(),
            DbConfig::for_tests(),
            &BenchOptions::quick(4).labeled("3layer"),
        );
        assert!(result.committed > 0);
    }
}
